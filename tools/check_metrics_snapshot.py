"""CI observability smoke: validate a dumped metrics snapshot.

Run after ``repro-experiments service-workers --metrics-out`` to assert
the serving layer's observability contract:

* every line of the JSON-lines dump parses and carries the exporter
  schema (``name`` / ``type`` / ``labels``);
* the core serving metrics are present — query and flush counters and
  latency histograms, kernel-phase flush timings, cache / coalescer
  mirrors, the epoch gauge and at least one worker-pool counter;
* the latency histograms actually observed the replayed traffic
  (non-zero counts with consistent bucket totals);
* when the experiment payload is given as the second argument, its
  ``commute/worker-pool`` entry embeds a stitched span tree containing
  worker-process sub-spans.

Usage::

    python tools/check_metrics_snapshot.py METRICS_JSONL [PAYLOAD_JSON]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# One instrument of each family the service promises to export.
REQUIRED_METRICS = [
    "dhl_queries_total",
    "dhl_query_batches_total",
    "dhl_query_seconds",
    "dhl_flushes_total",
    "dhl_flush_seconds",
    "dhl_maintenance_phase_seconds",
    "dhl_cache_hits",
    "dhl_coalescer_submitted",
    "dhl_epoch",
]
REQUIRED_HISTOGRAMS = ["dhl_query_seconds", "dhl_flush_seconds"]


def check_snapshot(lines: list[str]) -> list[str]:
    failures: list[str] = []
    records: list[dict] = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            failures.append(f"line {lineno}: not valid JSON ({exc})")
            continue
        for field in ("name", "type", "labels"):
            if field not in record:
                failures.append(f"line {lineno}: missing {field!r} field")
        records.append(record)
    if not records:
        failures.append("snapshot is empty — was observability enabled?")
        return failures

    names = {record.get("name") for record in records}
    for name in REQUIRED_METRICS:
        if name not in names:
            failures.append(f"core metric missing from snapshot: {name}")
    if not any(str(name).startswith("dhl_worker_") for name in names):
        failures.append(
            "no dhl_worker_* metrics — the worker-pool gauges were not "
            "synced into the registry"
        )

    by_name: dict[str, list[dict]] = {}
    for record in records:
        by_name.setdefault(str(record.get("name")), []).append(record)
    for name in REQUIRED_HISTOGRAMS:
        for record in by_name.get(name, []):
            if record.get("type") != "histogram":
                failures.append(f"{name}: expected a histogram")
                continue
            count = record.get("count", 0)
            if count <= 0:
                failures.append(f"{name}: histogram never observed a value")
            buckets = record.get("buckets", {})
            if buckets.get("+Inf") != count:
                failures.append(
                    f"{name}: +Inf bucket {buckets.get('+Inf')} != "
                    f"count {count} — cumulative buckets are inconsistent"
                )
    return failures


def check_payload(doc: dict) -> list[str]:
    failures: list[str] = []
    for dataset, entries in doc.get("raw", {}).items():
        entry = entries.get("commute/worker-pool")
        if entry is None:
            continue
        trace_text = entry.get("trace_text", "")
        if "worker[" not in trace_text or "shard_compute" not in trace_text:
            failures.append(
                f"{dataset}: commute/worker-pool entry has no stitched "
                "worker spans in its trace"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("snapshot", type=Path, help="metrics JSON-lines dump")
    parser.add_argument(
        "payload",
        type=Path,
        nargs="?",
        default=None,
        help="service-workers experiment payload (checks the stitched trace)",
    )
    args = parser.parse_args(argv)

    failures = check_snapshot(args.snapshot.read_text().splitlines())
    if args.payload is not None:
        failures.extend(check_payload(json.loads(args.payload.read_text())))
    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    print(f"OK — {args.snapshot} holds the serving metrics contract")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
