"""A dispatch service absorbing rush-hour traffic with live stats.

A fleet dispatcher keeps asking for driver→rider distances while the
road network congests and clears underneath it. The
:class:`~repro.service.DistanceService` answers every batch from the
vectorised flat-store kernel, caches results behind the maintenance
epoch, and folds the congestion ramps into single coalesced maintenance
passes. The same day of traffic is then replayed on the region-sharded
backend through *both* execution runtimes — the in-process engine and a
pool of shared-memory shard worker processes — which must agree to the
last bit.

Run with::

    PYTHONPATH=src python examples/dispatch_service.py
"""

from __future__ import annotations

from repro import DHLConfig, DHLIndex, delaunay_network
from repro.core.sharded import ShardedDHLIndex
from repro.service import (
    DistanceService,
    QueryBatch,
    ShardWorkerRuntime,
    replay,
    rush_hour_traffic,
    zipf_hotspot_traffic,
)


def main() -> None:
    # 1. The city: a 3,000-intersection road network, and a DHL index.
    graph = delaunay_network(3_000, seed=13)
    print(f"network: {graph.num_vertices} vertices, {graph.num_edges} edges")
    index = DHLIndex.build(graph, DHLConfig(seed=0))

    # 2. The serving layer: batched queries, a 64k-entry result cache
    #    with fine-grained eviction, and an update coalescer.
    service = DistanceService(
        index,
        cache_capacity=65_536,
        fine_grained_eviction=True,
        flush_threshold=512,
    )

    # 3. Three rush-hour cycles: congestion ramps (1.5x -> 2x -> 3x on an
    #    arterial edge set), a peak query storm, clearing, off-peak lull.
    events = rush_hour_traffic(
        index.graph,
        cycles=3,
        arterial_edges=64,
        peak_batches=8,
        peak_batch_size=500,
        offpeak_batches=4,
        offpeak_batch_size=150,
        seed=7,
    )
    print(f"replaying {len(events)} traffic events...\n")

    # 4. Live stats: report after every few query batches.
    chunks = [events[i : i + 5] for i in range(0, len(events), 5)]
    for tick, chunk in enumerate(chunks, start=1):
        replay(service, chunk)
        stats = service.stats()
        queries = sum(len(e.pairs) for e in chunk if isinstance(e, QueryBatch))
        print(
            f"tick {tick:2d}: epoch {stats.epoch:2d}  "
            f"+{queries:4d} queries  "
            f"hit rate {stats.cache.hit_rate:6.1%}  "
            f"p99 {stats.query_latency.p99_seconds * 1e3:6.3f} ms  "
            f"pending {service.pending_updates}"
        )

    # 5. Evening: traffic settles into hotspots (downtown, the airport) —
    #    the regime where the epoch-guarded cache pays for itself.
    evening = zipf_hotspot_traffic(
        index.graph,
        query_batches=20,
        batch_size=500,
        alpha=1.6,
        update_every=10,
        update_size=8,
        seed=23,
    )
    hits_before = service.stats().cache.hits
    report = replay(service, evening)
    hit_rate = (report.service.cache.hits - hits_before) / report.queries
    print(
        f"\nevening hotspot traffic: {report.queries} queries at "
        f"{report.queries_per_second:,.0f} q/s, cache hit rate {hit_rate:.1%}"
    )

    # 6. The day in review.
    print("\n" + service.stats().summary())
    coalesced = service.stats().coalescer
    print(
        f"\ncoalescing folded {coalesced.submitted} submitted changes into "
        f"{coalesced.flushes} maintenance passes "
        f"({coalesced.merged_duplicates} duplicates, "
        f"{coalesced.noops_dropped} no-ops never touched the index)"
    )

    # 7. Scaling out: the same city as four region shards, served first
    #    by the in-process runtime, then by a pool of worker processes
    #    that attach the shard label buffers over shared memory. Both
    #    runtimes replay the same evening and must agree exactly;
    #    the worker pool escapes the single-interpreter GIL.
    print("\n--- serving runtimes over the sharded backend ---")
    sharded = ShardedDHLIndex.build(graph.copy(), k=4, config=DHLConfig(seed=0))
    checksums = {}
    for label, make_service in (
        ("in-process ", lambda: DistanceService(sharded)),
        ("worker-pool", lambda: DistanceService(ShardWorkerRuntime(sharded))),
    ):
        with make_service() as shard_service:
            report = replay(shard_service, list(evening))
            checksums[label] = round(report.distance_checksum, 6)
            print(
                f"{label}: {report.queries_per_second:8,.0f} q/s  "
                f"backend {shard_service.stats().backend}"
            )
            if label == "worker-pool":
                sched = shard_service.runtime.stats
                print(
                    f"scheduler  : {sched.sub_batches} sub-batches over "
                    f"{sched.batches} calls, {sched.epoch_broadcasts} epoch "
                    f"broadcasts ({sched.delta_bytes} delta bytes, "
                    f"{sched.republishes} republishes)"
                )
    assert len(set(checksums.values())) == 1, checksums
    print("runtimes agree on every distance.")


if __name__ == "__main__":
    main()
