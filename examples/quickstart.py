"""Quickstart: build a DHL index, query it, update it, persist it.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro import DHLConfig, DHLIndex, delaunay_network
from repro.baselines.dijkstra import dijkstra_distance


def main() -> None:
    # 1. A synthetic road network: 2,000 intersections, integer travel
    #    times (use repro.datasets.load_dataset("NY") for the paper suite,
    #    or repro.datasets.load_dimacs_pair(...) for real DIMACS files).
    graph = delaunay_network(2_000, seed=7)
    print(f"network: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # 2. Build the index. The graph is owned by the index afterwards:
    #    weight changes must go through the index API.
    start = time.perf_counter()
    index = DHLIndex.build(graph, DHLConfig(beta=0.2, seed=0))
    print(f"built in {time.perf_counter() - start:.2f}s")
    print(index.stats().summary())

    # 3. Distance queries — exact, microseconds each.
    s, t = 17, 1_904
    d = index.distance(s, t)
    assert d == dijkstra_distance(index.graph, s, t)
    print(f"\nd({s}, {t}) = {d:.0f}  (verified against Dijkstra)")

    hub_distance, hub = index.distance_with_hub(s, t)
    print(f"shortest route passes the hierarchy hub {hub}")

    # 4. Traffic: double a few roads' travel times, then restore them.
    edges = list(index.graph.edges())[:25]
    stats = index.increase([(u, v, 2 * w) for u, v, w in edges])
    print(
        f"\ncongestion on {len(edges)} roads: "
        f"{stats.shortcuts_changed} shortcuts, "
        f"{stats.labels_changed} label entries updated"
    )
    print(f"d({s}, {t}) now = {index.distance(s, t):.0f}")

    stats = index.decrease([(u, v, w) for u, v, w in edges])
    print(f"traffic cleared: {stats.labels_changed} label entries restored")
    assert index.distance(s, t) == d

    # 5. Persist and reload.
    with tempfile.TemporaryDirectory() as tmp:
        index.save(Path(tmp) / "index")
        reloaded = DHLIndex.load(Path(tmp) / "index")
        assert reloaded.distance(s, t) == d
        print("\nsave/load round-trip OK")


if __name__ == "__main__":
    main()
