"""Traffic monitoring: a rush-hour congestion wave over a live index.

The paper's motivating scenario (Section 1): traffic conditions change
"multiple times per minute" while navigation services answer thousands of
distance queries per second. This example simulates a morning rush hour:

* a congestion front sweeps across the city (roads near the moving front
  slow down 2-4x, roads it has passed recover);
* every tick applies the weight changes through DHL+ / DHL-;
* a pool of commuter queries is answered before and after each tick, and
  a sample is verified against Dijkstra.

Run with::

    python examples/traffic_simulation.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import DHLConfig, DHLIndex, delaunay_network
from repro.baselines.dijkstra import dijkstra_distance
from repro.utils.rng import make_rng, sample_pairs

TICKS = 8
NETWORK_SIZE = 2_500
QUERIES_PER_TICK = 2_000


def congestion_factor(midpoint: np.ndarray, front_x: float) -> float:
    """Slowdown for a road at *midpoint* given the front position."""
    distance_to_front = abs(float(midpoint[0]) - front_x)
    if distance_to_front > 0.25:
        return 1.0
    return 1.0 + 3.0 * (1.0 - distance_to_front / 0.25)  # up to 4x


def main() -> None:
    rng = make_rng(11)
    graph = delaunay_network(NETWORK_SIZE, seed=11, style="city")
    base_weights = {(u, v): w for u, v, w in graph.edges()}
    index = DHLIndex.build(graph, DHLConfig(seed=0))
    coords = index.graph.coords
    print(
        f"city: {graph.num_vertices} intersections, "
        f"{len(base_weights)} roads; index "
        f"{index.stats().label_bytes / 1e6:.1f} MB"
    )

    commuters = sample_pairs(NETWORK_SIZE, QUERIES_PER_TICK, rng)
    header = f"{'tick':>4} {'front':>6} {'roads':>6} {'update':>10} {'query':>10} {'mean d':>10}"
    print(header)
    print("-" * len(header))

    for tick in range(TICKS):
        front_x = tick / (TICKS - 1)
        # Reassign every road's weight from the wave profile; the index
        # API splits the batch into increases and decreases itself.
        changes = []
        for (u, v), w in base_weights.items():
            mid = (coords[u] + coords[v]) / 2.0
            target = float(max(1, round(w * congestion_factor(mid, front_x))))
            if target != index.graph.weight(u, v):
                changes.append((u, v, target))

        start = time.perf_counter()
        index.update(changes)
        update_seconds = time.perf_counter() - start

        start = time.perf_counter()
        distances = index.distances(commuters)
        query_seconds = (time.perf_counter() - start) / len(commuters)

        finite = distances[np.isfinite(distances)]
        print(
            f"{tick:>4} {front_x:>6.2f} {len(changes):>6} "
            f"{update_seconds * 1e3:>8.1f}ms {query_seconds * 1e6:>8.1f}us "
            f"{finite.mean():>10.0f}"
        )

        # Spot-verify correctness against Dijkstra on a few pairs.
        for s, t in commuters[:5]:
            expected = dijkstra_distance(index.graph, s, t)
            got = index.distance(s, t)
            assert got == expected, (s, t, got, expected)

    print("\nall sampled queries matched Dijkstra at every tick")
    leftovers = [
        (u, v, w)
        for (u, v), w in base_weights.items()
        if index.graph.weight(u, v) != w
    ]
    index.update(leftovers)
    print(f"evening: restored {len(leftovers)} roads to free flow")


if __name__ == "__main__":
    main()
