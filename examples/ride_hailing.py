"""Ride hailing: matching drivers to passengers on a dynamic network.

The paper's Section 1 cites Uber/Lyft-style services running "millions of
real-time distance queries" to match drivers with passengers under
changing traffic. This example:

* scatters a fleet of drivers over a synthetic city;
* for each incoming request, finds the k nearest available drivers by
  *road distance* (one-to-many queries over the DHL index);
* injects random congestion between batches of requests (DHL+ updates)
  and shows how the matching shifts.

Run with::

    python examples/ride_hailing.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import DHLConfig, DHLIndex, delaunay_network
from repro.utils.rng import make_rng

NETWORK_SIZE = 3_000
FLEET = 120
REQUEST_WAVES = 4
REQUESTS_PER_WAVE = 50
K = 3


def k_nearest_drivers(index: DHLIndex, pickup: int, drivers: list[int], k: int):
    """The k drivers with smallest road distance to *pickup*."""
    distances = index.distances([(driver, pickup) for driver in drivers])
    order = np.argsort(distances, kind="stable")[:k]
    return [(drivers[i], float(distances[i])) for i in order]


def main() -> None:
    rng = make_rng(23)
    graph = delaunay_network(NETWORK_SIZE, seed=23, style="city")
    index = DHLIndex.build(graph, DHLConfig(seed=0))
    print(
        f"city with {graph.num_vertices} intersections; "
        f"fleet of {FLEET} drivers; k={K}"
    )

    drivers = [int(v) for v in rng.choice(NETWORK_SIZE, size=FLEET, replace=False)]
    edges = list(index.graph.edges())

    for wave in range(REQUEST_WAVES):
        # Traffic between waves: 3% of roads slow down, earlier jams clear.
        jams = rng.choice(len(edges), size=len(edges) // 33, replace=False)
        index.update(
            [(edges[j][0], edges[j][1], 3 * edges[j][2]) for j in jams]
        )

        pickups = rng.choice(NETWORK_SIZE, size=REQUESTS_PER_WAVE, replace=False)
        start = time.perf_counter()
        total_eta = 0.0
        sample = None
        for pickup in pickups:
            matches = k_nearest_drivers(index, int(pickup), drivers, K)
            total_eta += matches[0][1]
            if sample is None:
                sample = (int(pickup), matches)
        elapsed = time.perf_counter() - start
        per_request = elapsed / REQUESTS_PER_WAVE * 1e3

        pickup, matches = sample
        formatted = ", ".join(f"driver {d} @ {eta:.0f}" for d, eta in matches)
        print(
            f"wave {wave}: {REQUESTS_PER_WAVE} requests x {FLEET} drivers in "
            f"{elapsed * 1e3:.0f}ms ({per_request:.2f}ms/request); "
            f"mean best ETA {total_eta / REQUESTS_PER_WAVE:.0f}"
        )
        print(f"        e.g. pickup {pickup}: {formatted}")

        # Clear this wave's jams before the next one.
        index.update([(edges[j][0], edges[j][1], edges[j][2]) for j in jams])

    print("\ndone — matching stayed exact throughout (hub labelling is exact)")


if __name__ == "__main__":
    main()
