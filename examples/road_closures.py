"""Road closures and structural changes (Section 8 of the paper).

Shows the structural-update toolkit:

* closing roads (weight -> infinity, an incremental DHL+ update);
* closing a whole intersection (vertex deletion);
* re-opening (DHL- restore);
* building a brand-new road (edge insertion with partial repartitioning).

Run with::

    python examples/road_closures.py
"""

from __future__ import annotations

import math

from repro import DHLConfig, DHLIndex, delaunay_network
from repro.baselines.dijkstra import dijkstra_distance


def check(index: DHLIndex, s: int, t: int) -> float:
    """Query the index and verify against Dijkstra."""
    d = index.distance(s, t)
    expected = dijkstra_distance(index.graph, s, t)
    assert d == expected, (s, t, d, expected)
    return d


def main() -> None:
    graph = delaunay_network(1_500, seed=31)
    index = DHLIndex.build(graph, DHLConfig(seed=0))
    s, t = 4, 1_362

    baseline = check(index, s, t)
    print(f"normal conditions: d({s}, {t}) = {baseline:.0f}")

    # 1. Close the first road of the shortest corridor (via the hub).
    _, hub = index.distance_with_hub(s, t)
    closed = []
    for u, w in list(index.graph.neighbors(hub).items())[:2]:
        if math.isfinite(w):
            index.delete_edge(hub, u)
            closed.append((hub, u, w))
    after_close = check(index, s, t)
    if math.isinf(after_close):
        effect = "no route left"
    elif after_close > baseline:
        effect = "detour"
    else:
        effect = "unaffected"
    print(f"closed {len(closed)} roads at hub {hub}: d = {after_close:.0f} ({effect})")

    # 2. Close the hub intersection entirely (roadworks).
    index.delete_vertex(hub)
    after_vertex = check(index, s, t)
    print(f"closed intersection {hub} entirely: d = {after_vertex:.0f}")
    assert math.isinf(index.distance(s, hub)), "closed intersection unreachable"

    # 3. Re-open everything.
    for u, v, w in closed:
        index.restore_edge(u, v, w)
    for u, w in list(graph.neighbors(hub).items()):
        if index.graph.weight(hub, u) != w:
            index.restore_edge(hub, u, w)
    reopened = check(index, s, t)
    assert reopened == baseline
    print(f"re-opened: d back to {reopened:.0f}")

    # 4. A new bypass road is built between two suburbs: structural
    #    insertion repartitions only the affected subtree of H_Q.
    a, b = 100, 1_400
    if not index.graph.has_edge(a, b):
        before = check(index, a, b)
        bypass_weight = max(1.0, before / 4)
        index = index.insert_edge(a, b, float(round(bypass_weight)))
        after = check(index, a, b)
        print(
            f"new bypass ({a}, {b}) of length {bypass_weight:.0f}: "
            f"d({a}, {b}) {before:.0f} -> {after:.0f}"
        )
        check(index, s, t)  # rest of the network still exact

    print("\nall queries verified against Dijkstra after every change")


if __name__ == "__main__":
    main()
