"""Road closures and structural changes (Section 8 of the paper).

Shows the batch-dynamic structural toolkit through one ``apply_batch``
entry point:

* closing roads (deletions: inf-weight DHL+ updates, slots go dead);
* closing a whole intersection (vertex deletion);
* re-opening (insertions restore dead edges via a DHL- decrease);
* building a brand-new road (comparable endpoints ride the
  frontier-kernel fast path; incomparable ones repartition + rebuild);
* compacting dead slots out of the shortcut/label stores.

The measured per-dataset version of this scenario lives in
``repro-experiments structural``. Run this walkthrough with::

    python examples/road_closures.py
"""

from __future__ import annotations

import math

from repro import DHLConfig, DHLIndex, delaunay_network
from repro.baselines.dijkstra import dijkstra_distance


def check(index: DHLIndex, s: int, t: int) -> float:
    """Query the index and verify against Dijkstra."""
    d = index.distance(s, t)
    expected = dijkstra_distance(index.graph, s, t)
    assert d == expected, (s, t, d, expected)
    return d


def main() -> None:
    graph = delaunay_network(1_500, seed=31)
    original = graph.copy()  # build adopts the graph; keep pristine weights
    index = DHLIndex.build(graph, DHLConfig(seed=0))
    s, t = 4, 1_362

    baseline = check(index, s, t)
    print(f"normal conditions: d({s}, {t}) = {baseline:.0f}")

    # 1. Rush hour: close the first roads of the shortest corridor (via
    #    the hub) as one deletion batch.
    _, hub = index.distance_with_hub(s, t)
    closed = [
        (hub, u, w)
        for u, w in list(index.graph.neighbors(hub).items())[:2]
        if math.isfinite(w)
    ]
    index.apply_batch(deletions=[(u, v) for u, v, _ in closed])
    after_close = check(index, s, t)
    if math.isinf(after_close):
        effect = "no route left"
    elif after_close > baseline:
        effect = "detour"
    else:
        effect = "unaffected"
    print(f"closed {len(closed)} roads at hub {hub}: d = {after_close:.0f} ({effect})")

    # 2. Close the hub intersection entirely (roadworks).
    index.delete_vertex(hub)
    after_vertex = check(index, s, t)
    print(f"closed intersection {hub} entirely: d = {after_vertex:.0f}")
    assert math.isinf(index.distance(s, hub)), "closed intersection unreachable"

    # 3. Re-open everything: one insertion batch restores every dead
    #    edge (an insertion on a logically-deleted edge is a restore).
    reopen = [
        (hub, u, w)
        for u, w in original.neighbors(hub).items()
        if index.graph.weight(hub, u) != w
    ]
    index.apply_batch(insertions=reopen)
    reopened = check(index, s, t)
    assert reopened == baseline
    print(f"re-opened {len(reopen)} roads: d back to {reopened:.0f}")

    # 4. A new bypass road is built between two suburbs. Incomparable
    #    endpoints repartition the affected subtree of H_Q; comparable
    #    ones would take the slot-extension fast path instead.
    a, b = 100, 1_400
    if not index.graph.has_edge(a, b):
        before = check(index, a, b)
        bypass_weight = max(1.0, before / 4)
        stats = index.apply_batch(insertions=[(a, b, float(round(bypass_weight)))])
        path = "fast path" if stats.fastpath_inserts else "fallback rebuild"
        after = check(index, a, b)
        print(
            f"new bypass ({a}, {b}) of length {bypass_weight:.0f} ({path}): "
            f"d({a}, {b}) {before:.0f} -> {after:.0f}"
        )
        check(index, s, t)  # rest of the network still exact

    # 5. Winter: a batch of permanent closures, then compaction squeezes
    #    the dead slots out of the shortcut and label stores.
    victims = [
        (u, v)
        for u, v, w in list(index.graph.edges())[:40]
        if math.isfinite(w) and u != a and v != b
    ][:25]
    index.apply_batch(deletions=victims)
    frac = index.dead_fraction
    compaction = index.compact()
    print(
        f"closed {len(victims)} roads permanently: dead fraction "
        f"{frac:.3f} -> {index.dead_fraction:.3f}, reclaimed "
        f"{compaction.dead_slots_reclaimed} slots "
        f"({compaction.bytes_reclaimed} B)"
    )
    check(index, s, t)

    print("\nall queries verified against Dijkstra after every change")


if __name__ == "__main__":
    main()
