"""Unified observability layer: metrics, tracing, phase profiling.

One :class:`Observability` object bundles the three concerns the
serving stack reports through:

* a :class:`~repro.observability.registry.MetricsRegistry` of counters,
  gauges, and latency histograms with JSON-lines / Prometheus exporters;
* a :class:`~repro.observability.tracing.Tracer` producing sampled
  per-request span trees, stitched across worker-process pipes;
* a :class:`~repro.observability.slowlog.SlowLog` of over-threshold
  queries and flushes.

Kernel-phase profiling (:mod:`~repro.observability.phases`) is a module
global rather than part of the bundle, because the maintenance kernels
are far below the service layer and must not thread a handle through
every call.

Everything is **zero-overhead by default**: :data:`NULL_OBSERVABILITY`
carries null-object registry/tracer/slow-log singletons whose methods
are empty, so instrumented code calls them unconditionally.
"""

from __future__ import annotations

from math import inf

from repro.observability.phases import (
    PhaseCollector,
    collect_phases,
    phase,
    phases_active,
)
from repro.observability.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
)
from repro.observability.slowlog import NullSlowLog, NULL_SLOW_LOG, SlowLog
from repro.observability.timing import Timer, best_of, measure_seconds
from repro.observability.tracing import (
    NullTracer,
    NULL_TRACER,
    Span,
    Tracer,
    maybe_child,
)

__all__ = [
    "Observability",
    "NULL_OBSERVABILITY",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "maybe_child",
    "SlowLog",
    "NullSlowLog",
    "NULL_SLOW_LOG",
    "phase",
    "phases_active",
    "PhaseCollector",
    "collect_phases",
    "Timer",
    "best_of",
    "measure_seconds",
]


class Observability:
    """Bundle of registry + tracer + slow log handed to the service.

    Construct with :meth:`enabled` for a live stack, or use
    :data:`NULL_OBSERVABILITY` (the default everywhere) for the no-op
    stack.
    """

    __slots__ = ("registry", "tracer", "slow_log")

    def __init__(self, registry, tracer, slow_log):
        self.registry = registry
        self.tracer = tracer
        self.slow_log = slow_log

    @property
    def is_enabled(self) -> bool:
        return self.registry.enabled

    @classmethod
    def enabled(
        cls,
        *,
        trace_sample_rate: float = 0.0,
        trace_keep: int = 32,
        slow_query_seconds: float = inf,
        slow_flush_seconds: float = inf,
        slow_log_keep: int = 64,
    ) -> "Observability":
        """A live observability stack.

        Metrics always record; tracing records every ``1/sample_rate``-th
        request (0.0 = none); the slow log fires only past its thresholds.
        """
        return cls(
            registry=MetricsRegistry(),
            tracer=Tracer(sample_rate=trace_sample_rate, keep=trace_keep),
            slow_log=SlowLog(
                slow_query_seconds=slow_query_seconds,
                slow_flush_seconds=slow_flush_seconds,
                keep=slow_log_keep,
            ),
        )

    @classmethod
    def disabled(cls) -> "Observability":
        return NULL_OBSERVABILITY


NULL_OBSERVABILITY = Observability(NULL_REGISTRY, NULL_TRACER, NULL_SLOW_LOG)
