"""Slow-query / slow-flush log.

A bounded ring of structured records for operations that crossed a
latency threshold — the first place to look when the histograms show a
fat p99 tail. Thresholds default to "off" (``inf``), so an enabled
observability stack records nothing here until the caller opts in.
"""

from __future__ import annotations

from collections import deque
from math import inf

__all__ = ["SlowLog", "NullSlowLog", "NULL_SLOW_LOG"]


class SlowLog:
    """Keeps the most recent ``keep`` over-threshold operations."""

    enabled = True

    def __init__(
        self,
        *,
        slow_query_seconds: float = inf,
        slow_flush_seconds: float = inf,
        keep: int = 64,
    ):
        self.slow_query_seconds = slow_query_seconds
        self.slow_flush_seconds = slow_flush_seconds
        self.records: deque[dict] = deque(maxlen=max(1, keep))

    def note_query(self, seconds: float, **detail: object) -> bool:
        if seconds < self.slow_query_seconds:
            return False
        self.records.append({"kind": "query", "seconds": seconds, **detail})
        return True

    def note_flush(self, seconds: float, **detail: object) -> bool:
        if seconds < self.slow_flush_seconds:
            return False
        self.records.append({"kind": "flush", "seconds": seconds, **detail})
        return True

    def as_list(self) -> list[dict]:
        return list(self.records)


class NullSlowLog:
    """Disabled slow log: notes are dropped."""

    enabled = False
    slow_query_seconds = inf
    slow_flush_seconds = inf
    records: tuple = ()

    def note_query(self, seconds, **detail) -> bool:
        return False

    def note_flush(self, seconds, **detail) -> bool:
        return False

    def as_list(self) -> list:
        return []


NULL_SLOW_LOG = NullSlowLog()
