"""Kernel-phase profiling.

The maintenance kernels mark their inner phases with ``phase(name)`` —
one decrease relaxation round, one tau-level label sweep, one increase
dependency layer, the CSR flush steps. When nobody is collecting, the
mark is a dict-free truthiness check returning a shared no-op context
manager, so kernels stay uninstrumented-fast by default.

A caller that wants the breakdown installs a :class:`PhaseCollector`
with ``collect_phases()``; every ``phase()`` that fires while it is
installed adds its wall seconds to the collector. Collectors nest (an
outer bench collector and an inner per-batch ``MaintenanceStats``
collector both see the same phases) and are thread-safe, because the
sharded index runs shard updates on a thread pool.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

__all__ = ["phase", "PhaseCollector", "collect_phases", "phases_active"]

# Globally-installed collectors. Appends/removes happen in collect_phases();
# the list is read on every phase() call, so keep it a plain module global.
_collectors: list["PhaseCollector"] = []


class PhaseCollector:
    """Accumulates ``{phase name: total wall seconds}`` and hit counts."""

    __slots__ = ("seconds", "counts", "_lock")

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.counts: dict[str, int] = {}
        self._lock = threading.Lock()

    def add(self, name: str, dt: float) -> None:
        with self._lock:
            self.seconds[name] = self.seconds.get(name, 0.0) + dt
            self.counts[name] = self.counts.get(name, 0) + 1

    def as_dict(self) -> dict[str, float]:
        with self._lock:
            return dict(self.seconds)


class _NullPhase:
    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc) -> None:
        pass


_NULL_PHASE = _NullPhase()


class _PhaseCM:
    __slots__ = ("_name", "_start")

    def __init__(self, name: str):
        self._name = name
        self._start = 0.0

    def __enter__(self):
        self._start = time.perf_counter()
        return None

    def __exit__(self, *exc) -> None:
        dt = time.perf_counter() - self._start
        # Snapshot the list: a collector uninstalled mid-phase still
        # receives the measurement it was present for.
        for collector in tuple(_collectors):
            collector.add(self._name, dt)


def phase(name: str):
    """Time one kernel phase iteration, if any collector is installed."""
    if not _collectors:
        return _NULL_PHASE
    return _PhaseCM(name)


def phases_active() -> bool:
    """True when at least one collector is installed."""
    return bool(_collectors)


@contextmanager
def collect_phases():
    """Install a fresh :class:`PhaseCollector` for the enclosed block."""
    collector = PhaseCollector()
    _collectors.append(collector)
    try:
        yield collector
    finally:
        _collectors.remove(collector)
