"""Process-local metrics registry: counters, gauges, bucket histograms.

One :class:`MetricsRegistry` holds every instrument a serving process
reports. Instruments are **single-writer**: the serving layer mutates
them from its own thread without locks — a plain attribute store under
the GIL, cheap enough for per-batch hot paths. Readers (snapshot and
the exporters) may observe a value mid-update but never a torn one.

Disabled observability uses :data:`NULL_REGISTRY`, whose instruments
are shared no-op singletons — an ``inc()``/``observe()`` on the
disabled path costs one empty method call, so the instrumented hot
paths need no ``if enabled`` branches.

Two export formats:

* :meth:`MetricsRegistry.to_jsonl` — one JSON object per metric per
  line, machine-diffable snapshots for bench artifacts and the replay
  driver's ``--metrics-out``;
* :meth:`MetricsRegistry.to_prometheus` — the Prometheus text
  exposition format (``# TYPE`` headers, cumulative ``_bucket{le=}``
  series), scrape-ready.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Default histogram bounds in seconds: 100us .. 10s in a 1-2.5-5 ladder,
#: matched to the service's query/flush latency range.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelDict = dict[str, str]


def _label_suffix(labels: LabelDict | None) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return "{" + inner + "}"


class Counter:
    """Monotone event counter."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelDict | None = None):
        self.name = name
        self.labels = dict(labels or {})
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def value_dict(self) -> dict:
        return {"value": self.value}


class Gauge:
    """Point-in-time value (sizes, ratios, epochs)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelDict | None = None):
        self.name = name
        self.labels = dict(labels or {})
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def value_dict(self) -> dict:
        return {"value": self.value}


class Histogram:
    """Fixed-bucket histogram with estimated percentiles.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    implicit +Inf bucket catches the rest. ``observe`` is one bisect
    plus three attribute updates — hot-path safe. Percentiles linearly
    interpolate inside the winning bucket (the exact maximum is tracked
    separately, so the +Inf bucket stays bounded).
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "bounds", "counts", "total", "count", "max")

    def __init__(
        self,
        name: str,
        labels: LabelDict | None = None,
        bounds: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        self.name = name
        self.labels = dict(labels or {})
        self.bounds = tuple(sorted(bounds))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0
        self.max = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimated value at percentile *p* in [0, 100]."""
        if not self.count:
            return 0.0
        target = max(1, -(-self.count * p // 100))  # ceil without floats
        seen = 0
        for i, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            lo = self.bounds[i - 1] if i > 0 else 0.0
            hi = self.bounds[i] if i < len(self.bounds) else self.max
            if seen + bucket_count >= target:
                frac = (target - seen) / bucket_count
                return lo + (max(hi, lo) - lo) * frac
            seen += bucket_count
        return self.max  # pragma: no cover - target <= count always hits

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max,
        }

    def value_dict(self) -> dict:
        cumulative: dict[str, int] = {}
        running = 0
        for bound, bucket_count in zip(self.bounds, self.counts):
            running += bucket_count
            cumulative[repr(bound)] = running
        cumulative["+Inf"] = self.count
        return {
            "count": self.count,
            "sum": self.total,
            "max": self.max,
            "buckets": cumulative,
        }


class MetricsRegistry:
    """Name+labels keyed instrument store with get-or-create semantics."""

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[tuple, Counter | Gauge | Histogram] = {}
        self._help: dict[str, str] = {}

    # -- instrument factories -------------------------------------------
    def _get(self, cls, name: str, help: str, labels: LabelDict | None, **kw):
        key = (name, tuple(sorted((labels or {}).items())))
        instrument = self._metrics.get(key)
        if instrument is None:
            instrument = cls(name, labels, **kw)
            self._metrics[key] = instrument
            if help:
                self._help.setdefault(name, help)
        return instrument

    def counter(
        self, name: str, help: str = "", labels: LabelDict | None = None
    ) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(
        self, name: str, help: str = "", labels: LabelDict | None = None
    ) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: LabelDict | None = None,
        bounds: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get(Histogram, name, help, labels, bounds=bounds)

    # -- views ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(self._metrics.values())

    def snapshot(self) -> dict[str, dict]:
        """``{"name{labels}": {type, ...values}}`` for every instrument."""
        out: dict[str, dict] = {}
        for metric in self._metrics.values():
            key = metric.name + _label_suffix(metric.labels)
            out[key] = {"type": metric.kind, **metric.value_dict()}
        return out

    # -- exporters -------------------------------------------------------
    def to_jsonl(self) -> str:
        """One JSON object per metric per line (stable key order)."""
        lines = []
        for metric in self._metrics.values():
            record = {
                "name": metric.name,
                "type": metric.kind,
                "labels": metric.labels,
                **metric.value_dict(),
            }
            lines.append(json.dumps(record, sort_keys=True))
        return "\n".join(lines) + ("\n" if lines else "")

    def to_prometheus(self) -> str:
        """Prometheus text exposition format."""
        by_name: dict[str, list] = {}
        for metric in self._metrics.values():
            by_name.setdefault(metric.name, []).append(metric)
        out: list[str] = []
        for name in by_name:
            series = by_name[name]
            help_text = self._help.get(name)
            if help_text:
                out.append(f"# HELP {name} {help_text}")
            out.append(f"# TYPE {name} {series[0].kind}")
            for metric in series:
                if metric.kind == "histogram":
                    running = 0
                    for bound, count in zip(metric.bounds, metric.counts):
                        running += count
                        labels = {**metric.labels, "le": repr(bound)}
                        out.append(
                            f"{name}_bucket{_label_suffix(labels)} {running}"
                        )
                    labels = {**metric.labels, "le": "+Inf"}
                    out.append(
                        f"{name}_bucket{_label_suffix(labels)} {metric.count}"
                    )
                    suffix = _label_suffix(metric.labels)
                    out.append(f"{name}_sum{suffix} {metric.total}")
                    out.append(f"{name}_count{suffix} {metric.count}")
                else:
                    out.append(
                        f"{name}{_label_suffix(metric.labels)} {metric.value}"
                    )
        return "\n".join(out) + ("\n" if out else "")


# ---------------------------------------------------------------------------
# disabled mode: shared no-op singletons
# ---------------------------------------------------------------------------

class _NullInstrument:
    """Accepts every instrument method as a no-op."""

    kind = "null"
    name = ""
    labels: LabelDict = {}
    value = 0
    count = 0
    total = 0.0
    max = 0.0
    mean = 0.0

    def inc(self, amount=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass

    def percentile(self, p) -> float:
        return 0.0

    def summary(self) -> dict:
        return {}

    def value_dict(self) -> dict:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """Disabled registry: every factory returns the shared no-op."""

    enabled = False

    def counter(self, name, help="", labels=None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name, help="", labels=None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name, help="", labels=None, bounds=()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def __len__(self) -> int:
        return 0

    def __iter__(self):
        return iter(())

    def snapshot(self) -> dict:
        return {}

    def to_jsonl(self) -> str:
        return ""

    def to_prometheus(self) -> str:
        return ""


NULL_REGISTRY = NullRegistry()
