"""Shared wall-clock timing primitives.

Every layer that measures time — the serving hot path, the experiment
harness, the standalone quick benchmarks — uses these two helpers, so a
latency number always means the same thing: ``time.perf_counter`` wall
seconds around exactly the measured call.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["Timer", "best_of", "measure_seconds"]


class Timer:
    """``with Timer() as t: ...`` — elapsed wall time in ``t.seconds``."""

    __slots__ = ("seconds", "_start")

    def __init__(self) -> None:
        self.seconds = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds = time.perf_counter() - self._start


def measure_seconds(fn: Callable[[], object]) -> float:
    """Wall-clock seconds of one invocation of *fn*."""
    with Timer() as timer:
        fn()
    return timer.seconds


def best_of(fn: Callable[[], object], repeats: int) -> float:
    """Minimum wall-clock seconds of *fn* over *repeats* invocations.

    The canonical benchmark loop: best-of-N filters scheduler noise on
    shared runners, so ratios of two ``best_of`` numbers from the same
    process are stable enough to gate in CI.
    """
    return min(measure_seconds(fn) for _ in range(max(1, repeats)))
