"""Span tracing for the serving stack.

A sampled request produces a **span tree**: the root covers the whole
service call, children cover the stages it passes through (cache scan,
scheduler, per-worker round-trips, min-plus combine). Worker processes
build their own subtree, ship it back over the pipe as a plain dict,
and the parent grafts it under the matching round-trip span — one tree
shows where a cross-shard query spent its time end to end.

Sampling is deterministic (every Nth root according to
``sample_rate``), so replayed scenarios always trace the same
requests. When a root is not sampled the tracer pushes a sentinel so
nested ``trace()`` calls inside the request no-op too; disabled tracing
uses :data:`NULL_TRACER`, whose ``trace`` returns a shared do-nothing
context manager.

Spans started via :class:`Tracer` live on a thread-local stack and must
be entered/exited on one thread. Code handing work to helper threads
(the worker scheduler's I/O pool) instead calls ``span.child(name)``
explicitly — attaching to a parent span object is thread-safe under the
GIL because each helper thread appends a distinct child.
"""

from __future__ import annotations

import threading
import time
from collections import deque

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "maybe_child",
]


class Span:
    """One timed node in a trace tree.

    Starts its clock at construction; ``finish()`` (or context-manager
    exit) freezes ``seconds``. Children are created with ``child()``
    and belong to this span regardless of which thread finishes them.
    """

    __slots__ = ("name", "seconds", "children", "meta", "_start")

    def __init__(self, name: str):
        self.name = name
        self.seconds = 0.0
        self.children: list[Span] = []
        self.meta: dict[str, object] = {}
        self._start = time.perf_counter()

    def child(self, name: str) -> "Span":
        span = Span(name)
        self.children.append(span)
        return span

    def annotate(self, **meta: object) -> "Span":
        self.meta.update(meta)
        return self

    def finish(self) -> "Span":
        if self._start:
            self.seconds = time.perf_counter() - self._start
            self._start = 0.0
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc) -> None:
        self.finish()

    # -- serialisation ---------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict form, safe to pickle over a worker pipe."""
        record: dict = {"name": self.name, "seconds": self.seconds}
        if self.meta:
            record["meta"] = dict(self.meta)
        if self.children:
            record["children"] = [c.to_dict() for c in self.children]
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "Span":
        span = cls(str(record.get("name", "?")))
        span._start = 0.0
        span.seconds = float(record.get("seconds", 0.0))
        span.meta = dict(record.get("meta", {}))
        span.children = [cls.from_dict(c) for c in record.get("children", ())]
        return span

    def graft(self, record: dict) -> "Span":
        """Attach a shipped worker subtree (dict form) under this span."""
        child = Span.from_dict(record)
        self.children.append(child)
        return child

    # -- rendering -------------------------------------------------------
    def format(self, indent: int = 0) -> str:
        """ASCII tree: one ``name  <ms>`` line per span."""
        pad = "  " * indent
        meta = ""
        if self.meta:
            meta = "  " + " ".join(f"{k}={v}" for k, v in sorted(self.meta.items()))
        lines = [f"{pad}{self.name}  {self.seconds * 1e3:.3f}ms{meta}"]
        for child in self.children:
            lines.append(child.format(indent + 1))
        return "\n".join(lines)


_UNSAMPLED = object()  # stack marker: root was skipped, nested traces no-op


class _NullTraceCM:
    """Do-nothing ``with`` target for unsampled / disabled traces."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc) -> None:
        pass


_NULL_TRACE_CM = _NullTraceCM()


class _SpanCM:
    """Context manager that pops the tracer stack on exit."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, *exc) -> None:
        self._tracer._pop(self.span)


class _UnsampledCM:
    """Pops the unsampled sentinel pushed for a skipped root."""

    __slots__ = ("_tracer",)

    def __init__(self, tracer: "Tracer"):
        self._tracer = tracer

    def __enter__(self):
        return None

    def __exit__(self, *exc) -> None:
        self._tracer._pop(_UNSAMPLED)


class Tracer:
    """Produces sampled span trees; keeps the last ``keep`` finished roots.

    ``sample_rate`` is the fraction of *root* traces recorded: 1.0
    records every request, 0.25 every 4th, 0.0 none. Sampling is a
    deterministic counter (not random) so replays are reproducible.
    """

    enabled = True

    def __init__(self, sample_rate: float = 0.0, keep: int = 32):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        self.sample_rate = sample_rate
        self._period = int(round(1.0 / sample_rate)) if sample_rate > 0 else 0
        self._roots_seen = 0
        self.finished: deque[Span] = deque(maxlen=max(1, keep))
        self._local = threading.local()

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def trace(self, name: str, **meta: object):
        """Open a span: a child of the current span, or a sampled root."""
        stack = self._stack()
        if stack:
            if stack[-1] is _UNSAMPLED:
                return _NULL_TRACE_CM
            span = stack[-1].child(name)
        else:
            self._roots_seen += 1
            if not self._period or (self._roots_seen - 1) % self._period:
                stack.append(_UNSAMPLED)
                return _UnsampledCM(self)
            span = Span(name)
        if meta:
            span.annotate(**meta)
        stack.append(span)
        return _SpanCM(self, span)

    def _pop(self, expected) -> None:
        stack = self._stack()
        if not stack or stack[-1] is not expected:  # pragma: no cover
            stack.clear()
            return
        top = stack.pop()
        if top is _UNSAMPLED:
            return
        top.finish()
        if not stack:
            self.finished.append(top)

    @property
    def current(self) -> Span | None:
        """The innermost open sampled span on this thread, if any."""
        stack = self._stack()
        if stack and stack[-1] is not _UNSAMPLED:
            return stack[-1]
        return None

    def last_trace(self) -> Span | None:
        """Most recently finished root span."""
        return self.finished[-1] if self.finished else None


class NullTracer:
    """Disabled tracer: ``trace`` hands back a shared no-op."""

    enabled = False
    sample_rate = 0.0
    finished: tuple = ()

    def trace(self, name, **meta):
        return _NULL_TRACE_CM

    @property
    def current(self) -> None:
        return None

    def last_trace(self) -> None:
        return None


NULL_TRACER = NullTracer()


def maybe_child(span: Span | None, name: str):
    """``span.child(name)`` as a CM, or a no-op when *span* is None.

    Lets runtime code thread an optional parent span through helper
    functions without branching at every instrumentation point.
    """
    if span is None:
        return _NULL_TRACE_CM
    return span.child(name)
