"""Dual-Hierarchy Labelling (DHL) for dynamic road networks.

A pure-Python reproduction of *"Dual-Hierarchy Labelling: Scaling Up
Distance Queries on Dynamic Road Networks"* (Farhan, Koehler, Wang —
SIGMOD 2025), including the DHL index, its dynamic maintenance algorithms,
the DCH and IncH2H state-of-the-art baselines, a multilevel graph
partitioner, synthetic road-network datasets and a benchmark harness for
every table and figure of the paper's evaluation.

Quickstart::

    from repro import Graph, DHLIndex, delaunay_network

    g = delaunay_network(2_000, seed=7)
    index = DHLIndex.build(g)
    d = index.distance(0, 1999)
    index.increase([(u, v, 2 * w) for u, v, w in list(g.edges())[:10]])
"""

from __future__ import annotations

from typing import Any

__version__ = "1.0.0"

# Public names are re-exported lazily so that `import repro` stays cheap
# and subpackages can be used independently.
_EXPORTS = {
    "Graph": "repro.graph",
    "DiGraph": "repro.graph",
    "delaunay_network": "repro.graph",
    "grid_network": "repro.graph",
    "highway_network": "repro.graph",
    "random_connected_graph": "repro.graph",
    "DHLIndex": "repro.core",
    "DHLConfig": "repro.core",
    "IndexStats": "repro.core",
    "DirectedDHLIndex": "repro.core",
    "DistanceService": "repro.service",
}

__all__ = [*_EXPORTS, "__version__"]


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list[str]:
    return sorted(__all__)
