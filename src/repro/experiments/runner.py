"""The ``repro-experiments`` command-line interface.

Runs any subset of the paper's tables/figures on the synthetic suite and
writes JSON payloads next to the printed text tables::

    repro-experiments table2 --datasets NY,BAY --out results/
    repro-experiments all --quick
    REPRO_SCALE=2 repro-experiments table3   # 2x the default suite scale

``--quick`` restricts to the four smallest datasets and shrinks query
counts, which is what CI and the pytest benchmarks use.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.datasets.synthetic import dataset_names
from repro.experiments.context import ExperimentContext
from repro.experiments.figures import (
    figure5_weight_sweep,
    figure6_query_sets,
    figure7_scalability,
)
from repro.experiments.report import save_results
from repro.experiments.service import service_scenarios
from repro.experiments.service_chaos import service_chaos_scenarios
from repro.experiments.service_sockets import service_sockets_scenarios
from repro.experiments.service_workers import service_workers_scenarios
from repro.experiments.sharded import sharded_scenarios
from repro.experiments.structural import structural_scenarios
from repro.experiments.tables import (
    figure1_summary,
    table1_datasets,
    table2_updates,
    table3_index,
)
from repro.experiments.verification import verify_correctness

__all__ = ["main", "EXPERIMENTS"]

EXPERIMENTS = {
    "table1": table1_datasets,
    "table2": table2_updates,
    "table3": table3_index,
    "figure1": figure1_summary,
    "figure5": figure5_weight_sweep,
    "figure6": figure6_query_sets,
    "figure7": figure7_scalability,
    "service": service_scenarios,
    "service-chaos": service_chaos_scenarios,
    "service-sockets": service_sockets_scenarios,
    "service-workers": service_workers_scenarios,
    "sharded": sharded_scenarios,
    "structural": structural_scenarios,
    "verify": verify_correctness,
}

QUICK_DATASETS = ["NY", "BAY", "COL", "FLA"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the DHL paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=[*EXPERIMENTS, "all"],
        help="which experiments to run",
    )
    parser.add_argument(
        "--datasets",
        default=None,
        help="comma-separated dataset names (default: the full Table 1 suite)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="suite scale as a fraction of the paper's sizes (default 1e-3)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--queries", type=int, default=20_000, help="random query pairs per dataset"
    )
    parser.add_argument(
        "--batches", type=int, default=10, help="update batches per dataset"
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="threads for parallel variants"
    )
    parser.add_argument(
        "--out", default="results", help="directory for JSON payloads"
    )
    parser.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        help="dump the serving experiments' metrics registry (JSON lines) "
        "here; each metrics-capable experiment overwrites the file, so "
        "select one scenario when scraping",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small datasets and light workloads (CI profile)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    names = args.datasets.split(",") if args.datasets else None
    if args.quick and names is None:
        names = QUICK_DATASETS
    ctx = ExperimentContext(
        datasets=names or dataset_names(),
        scale=args.scale,
        seed=args.seed,
        num_batches=max(1, args.batches // (2 if args.quick else 1)),
        query_count=args.queries // (4 if args.quick else 1),
        workers=args.workers,
        metrics_out=args.metrics_out,
    )
    selected = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    out_dir = Path(args.out)
    for key in selected:
        payload = EXPERIMENTS[key](ctx)
        print(payload["text"])
        print()
        save_results(payload, out_dir / f"{key}.json")
        print(f"[saved {out_dir / (key + '.json')}]", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
