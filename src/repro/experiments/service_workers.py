"""Worker-pool serving scenario: in-process vs shard-worker runtimes.

Not a table from the paper — this experiment drives the ROADMAP's
multi-core serving direction: the same sharded backend served through
both execution runtimes must produce identical traffic checksums, and
the worker pool's batch scheduler / epoch-broadcast counters certify
*how* it served them (per-shard sub-batches, delta syncs instead of
buffer re-publishes). Replayed per dataset and traffic shape:

* ``uniform``  — uniformly random pairs (mostly intra-shard groups);
* ``commute``  — every pair straddles regions, churn on cut edges (the
  fan-heavy regime worker parallelism targets).

The worker-pool mode runs under a full-rate tracer: every replayed
request produces a span tree whose worker sub-spans were recorded in
the worker *processes* and stitched back over the result pipes. The
last tree per scenario is embedded in the payload (``trace`` /
``trace_text``) as evidence, and ``--metrics-out`` dumps the pool's
metrics registry.
"""

from __future__ import annotations

from repro.core.config import DHLConfig
from repro.core.sharded import ShardedDHLIndex
from repro.experiments.context import ExperimentContext
from repro.experiments.report import ascii_table
from repro.observability import Observability
from repro.service.service import DistanceService
from repro.service.workers import ShardWorkerRuntime
from repro.service.workload import commute_traffic, replay, uniform_traffic

__all__ = ["service_workers_scenarios"]

_K = 4


def _make_events(name: str, graph, sharded, seed: int):
    if name == "uniform":
        return uniform_traffic(graph, query_batches=20, batch_size=300, seed=seed)
    return commute_traffic(
        graph,
        sharded.region_of,
        boundary=sharded.partition.boundary,
        query_batches=20,
        batch_size=300,
        seed=seed,
    )


def service_workers_scenarios(ctx: ExperimentContext) -> dict:
    """Replay traffic through both runtimes over one sharded backend."""
    rows = []
    raw: dict[str, dict] = {}
    config = DHLConfig(seed=ctx.seed)
    for name in ctx.datasets:
        graph = ctx.graph(name)
        sharded = ShardedDHLIndex.build(
            graph.copy(), k=_K, config=config, build_workers=ctx.workers
        )
        raw[name] = {}
        for scenario in ("uniform", "commute"):
            events = _make_events(scenario, graph, sharded, ctx.seed)
            checksums = {}
            for mode in ("in-process", "worker-pool"):
                if mode == "in-process":
                    service = DistanceService(sharded)
                else:
                    service = DistanceService(
                        ShardWorkerRuntime(sharded),
                        observability=Observability.enabled(
                            trace_sample_rate=1.0
                        ),
                    )
                with service:
                    report = replay(service, list(events))
                    stats = service.stats()
                    q = stats.query_latency
                    entry = {
                        "backend": stats.backend,
                        "queries_per_second": report.queries_per_second,
                        "p50_ms": q.p50_seconds * 1e3,
                        "p95_ms": q.p95_seconds * 1e3,
                        "p99_ms": q.p99_seconds * 1e3,
                        "checksum": report.distance_checksum,
                    }
                    if mode == "worker-pool":
                        entry["scheduler"] = service.runtime.stats.as_dict()
                        # The last finished root may be a flush; the
                        # evidence we want is a stitched query tree.
                        trace = next(
                            (
                                span
                                for span in reversed(
                                    service.observability.tracer.finished
                                )
                                if span.name == "distances"
                            ),
                            None,
                        )
                        if trace is not None:
                            entry["trace"] = trace.to_dict()
                            entry["trace_text"] = trace.format()
                        if ctx.metrics_out is not None:
                            service.dump_metrics(ctx.metrics_out)
                    raw[name][f"{scenario}/{mode}"] = entry
                    checksums[mode] = round(report.distance_checksum, 6)
                    rows.append(
                        [
                            name,
                            scenario,
                            mode,
                            f"{report.queries_per_second:,.0f}",
                            f"{q.p50_seconds * 1e3:.3f}",
                            f"{q.p95_seconds * 1e3:.3f}",
                        ]
                    )
            if checksums["in-process"] != checksums["worker-pool"]:
                raise AssertionError(
                    f"{name}/{scenario}: runtimes disagree on the distance "
                    f"checksum: {checksums}"
                )
        trace_text = raw[name]["commute/worker-pool"].get("trace_text", "")
        if "worker[" not in trace_text or "shard_compute" not in trace_text:
            raise AssertionError(
                f"{name}: cross-shard trace was not stitched — no "
                f"worker-side spans in:\n{trace_text or '<no trace>'}"
            )
        scheduler = raw[name]["commute/worker-pool"]["scheduler"]
        if scheduler["republishes"]:
            raise AssertionError(
                f"{name}: worker pool re-published whole label buffers "
                f"({scheduler['republishes']}x) — the delta path regressed"
            )
    text = ascii_table(
        ["dataset", "scenario", "runtime", "q/s", "p50 ms", "p95 ms"],
        rows,
        title="Serving runtimes: in-process vs shared-memory shard workers "
        f"(k={_K})",
    )
    return {"experiment": "service-workers", "raw": raw, "rows": rows, "text": text}
