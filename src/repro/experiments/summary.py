"""Render results/*.json payloads into the EXPERIMENTS.md summary.

Reads the JSON written by :mod:`repro.experiments.runner` and produces a
markdown section with paper-shape verdicts: for each table/figure the
relevant ratios are computed (DHL vs IncH2H update/query/size factors,
batch-vs-reconstruction margins) and compared with the paper's claimed
ranges.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

__all__ = ["summarize_results", "main"]


def _load(results_dir: Path, name: str) -> dict | None:
    path = results_dir / f"{name}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def _ratio(a: float, b: float) -> float:
    return a / b if b else math.inf


def _verdict(ok: bool) -> str:
    return "reproduced" if ok else "NOT reproduced"


def summarize_results(results_dir: str | Path) -> str:
    """Markdown summary of every payload present in *results_dir*."""
    results_dir = Path(results_dir)
    lines: list[str] = []

    table2 = _load(results_dir, "table2")
    if table2:
        ratios_inc = []
        ratios_dec = []
        rows = []
        for name, row in table2["raw"].items():
            batch = row["batch"]
            ri = _ratio(batch["IncH2H+"], batch["DHL+"])
            rd = _ratio(batch["IncH2H-"], batch["DHL-"])
            ratios_inc.append(ri)
            ratios_dec.append(rd)
            rows.append(
                f"| {name} | {batch['DHL+'] * 1e3:.2f} | {batch['IncH2H+'] * 1e3:.2f} "
                f"| {ri:.1f}x | {batch['DHL-'] * 1e3:.2f} "
                f"| {batch['IncH2H-'] * 1e3:.2f} | {rd:.1f}x |"
            )
        # Paper claims 3-4x; accept anything clearly in that regime.
        ok = min(ratios_inc) >= 1.8 and min(ratios_dec) >= 1.8
        lines.append("### Table 2 (update times, batch setting)\n")
        lines.append(
            "| Network | DHL+ [ms] | IncH2H+ [ms] | speedup | DHL- [ms] "
            "| IncH2H- [ms] | speedup |"
        )
        lines.append("|---|---|---|---|---|---|---|")
        lines.extend(rows)
        lines.append(
            f"\nIncH2H/DHL update ratio: increase "
            f"{min(ratios_inc):.1f}-{max(ratios_inc):.1f}x, decrease "
            f"{min(ratios_dec):.1f}-{max(ratios_dec):.1f}x "
            f"(paper: 3-4x) — **{_verdict(ok)}**.\n"
        )

    table3 = _load(results_dir, "table3")
    if table3:
        q_ratios, size_ratios, sc_ratios, frac_pairs = [], [], [], []
        rows = []
        for name, row in table3["raw"].items():
            q = _ratio(row["query_us"]["IncH2H"], row["query_us"]["DHL"])
            size = _ratio(row["label_bytes"]["DHL"], row["label_bytes"]["IncH2H"])
            sc = _ratio(
                row["shortcut_bytes"]["IncH2H"], row["shortcut_bytes"]["DHL"]
            )
            dhl_changed, dhl_total = row["affected_labels"]["DHL"]
            h2h_changed, h2h_total = row["affected_labels"]["IncH2H"]
            frac_pairs.append(
                (dhl_changed / max(1, dhl_total), h2h_changed / max(1, h2h_total))
            )
            q_ratios.append(q)
            size_ratios.append(size)
            sc_ratios.append(sc)
            rows.append(
                f"| {name} | {row['query_us']['DHL']:.2f} "
                f"| {row['query_us']['IncH2H']:.2f} | {q:.1f}x "
                f"| {100 * size:.0f}% | {sc:.1f}x "
                f"| {row['construction_s']['DHL']:.1f} "
                f"| {row['construction_s']['IncH2H']:.1f} |"
            )
        lines.append("### Table 3 (query time, sizes, construction)\n")
        lines.append(
            "| Network | DHL q [us] | IncH2H q [us] | q speedup "
            "| DHL label size / IncH2H | shortcut ratio | C DHL [s] | C IncH2H [s] |"
        )
        lines.append("|---|---|---|---|---|---|---|")
        lines.extend(rows)
        ok_q = min(q_ratios) >= 1.0
        ok_size = max(size_ratios) <= 0.5
        ok_sc = min(sc_ratios) >= 1.5
        lines.append(
            f"\nQuery speedup {min(q_ratios):.1f}-{max(q_ratios):.1f}x "
            f"(paper 2-4x) — **{_verdict(ok_q)}**; labelling size "
            f"{100 * min(size_ratios):.0f}%-{100 * max(size_ratios):.0f}% of "
            f"IncH2H (paper 10-20%) — **{_verdict(ok_size)}**; shortcut store "
            f"ratio {min(sc_ratios):.1f}-{max(sc_ratios):.1f}x (paper ~3x) — "
            f"**{_verdict(ok_sc)}** (the paper's factor includes IncH2H's "
            "support-tracking structures, which our support-free "
            "re-implementation deliberately omits; see DESIGN.md §3). "
            "Construction: see EXPERIMENTS.md note (pure-Python partitioner "
            "dominates DHL's build here, unlike the paper).\n"
        )
        smaller = sum(1 for d, h in frac_pairs if d <= h + 1e-9)
        lines.append(
            f"Affected-label fraction lower for DHL on {smaller}/"
            f"{len(frac_pairs)} networks (paper: 'tends to be smaller').\n"
        )

    figure1 = _load(results_dir, "figure1")
    if figure1:
        lines.append("### Figure 1 summary table\n")
        lines.append("| Dataset | Method | incr [ms] | decr [ms] | query [us] |")
        lines.append("|---|---|---|---|---|")
        for name, methods in figure1["raw"].items():
            for method, vals in methods.items():
                lines.append(
                    f"| {name} | {method} | {vals['inc_ms']:.2f} "
                    f"| {vals['dec_ms']:.2f} | {vals['q_us']:.2f} |"
                )
        try:
            checks = []
            for name, methods in figure1["raw"].items():
                checks.append(
                    methods["DCH"]["inc_ms"] < methods["DHL"]["inc_ms"]
                    and methods["DCH"]["q_us"] > 5 * methods["DHL"]["q_us"]
                    and methods["DHL"]["q_us"] < methods["IncH2H"]["q_us"]
                )
            lines.append(
                f"\nDCH fastest updates + slowest queries; DHL best queries "
                f"— **{_verdict(all(checks))}**.\n"
            )
        except KeyError:
            pass

    figure5 = _load(results_dir, "figure5")
    if figure5:
        below = 0
        total = 0
        for name, series in figure5["raw"].items():
            for a, b in zip(series["DHL+"], series["IncH2H+"]):
                total += 1
                below += a < b
            for a, b in zip(series["DHL-"], series["IncH2H-"]):
                total += 1
                below += a < b
        lines.append("### Figure 5 (weight-multiplier sweep)\n")
        lines.append(
            f"DHL below IncH2H at {below}/{total} sweep points "
            f"(paper: everywhere) — **{_verdict(below >= 0.95 * total)}**.\n"
        )

    figure6 = _load(results_dir, "figure6")
    if figure6:
        wins_long = 0
        nets = 0
        for name, series in figure6["raw"].items():
            dhl = series["DHL_us"]
            h2h = series["IncH2H_us"]
            filled = [
                i for i, sz in enumerate(series["set_sizes"]) if sz
            ]
            if len(filled) < 3:
                continue
            nets += 1
            tail = filled[-3:]
            if all(dhl[i] <= h2h[i] for i in tail):
                wins_long += 1
        lines.append("### Figure 6 (distance-stratified queries)\n")
        lines.append(
            f"DHL at least as fast on the three longest-range sets on "
            f"{wins_long}/{nets} networks (paper: faster on long distances) "
            f"— **{_verdict(wins_long >= max(1, int(0.8 * nets)))}**.\n"
        )

    figure7 = _load(results_dir, "figure7")
    if figure7:
        margins = []
        for name, series in figure7["raw"].items():
            biggest = series["DHL+_s"][-1] + series["DHL-_s"][-1]
            margins.append(_ratio(series["reconstruction_s"], biggest))
        lines.append("### Figure 7 (batch updates vs reconstruction)\n")
        lines.append(
            f"Reconstruction is {min(margins):.1f}-{max(margins):.1f}x the "
            "cost of the largest batch's increase+decrease (paper: "
            f"updates significantly cheaper) — "
            f"**{_verdict(min(margins) > 1.0)}**.\n"
        )

    verify = _load(results_dir, "verify")
    if verify:
        total_errors = sum(
            sum(report[phase].values())
            for report in verify["raw"].values()
            for phase in ("static", "after_increase", "after_restore")
        )
        lines.append("### Verification\n")
        lines.append(
            f"Mismatches against Dijkstra across all methods/datasets/"
            f"phases: **{total_errors}** (expected 0).\n"
        )

    return "\n".join(lines) if lines else "(no results found)"


def main(argv: list[str] | None = None) -> int:  # pragma: no cover - thin CLI
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results_dir", nargs="?", default="results")
    args = parser.parse_args(argv)
    print(summarize_results(args.results_dir))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
