"""Road-closure / construction scenario over the structural batch path.

Grown out of ``examples/road_closures.py``: the same narrative — rush
hour closes roads, crews re-open them, a new bypass link is built — but
measured per dataset through :meth:`DHLIndex.apply_batch`:

* **rush-hour closures**: a batch of edge deletions (inf-weight
  increases through the DHL+ kernels) plus congestion reweighs;
* **re-openings**: the same edges restored in one decrease batch;
* **construction**: new links inserted — comparable endpoint pairs ride
  the frontier-kernel fast path (slot extension + seeded decrease),
  incomparable ones fall back to a rebuild — with the fast-path /
  fallback split reported from the index's structural counters;
* **compaction**: the closure batch is re-applied, the dead-slot store
  compacted, and the reclaim totals reported.

Every phase is verified against Dijkstra on sampled pairs, so the
scenario doubles as an end-to-end correctness check of the structural
tool-chain at experiment scale.
"""

from __future__ import annotations

import math
import random
import time

from repro.baselines.dijkstra import dijkstra_distance
from repro.core.config import DHLConfig
from repro.core.index import DHLIndex
from repro.experiments.context import ExperimentContext
from repro.experiments.report import ascii_table

__all__ = ["structural_scenarios"]


def _verify_sample(index, rng, count=40) -> None:
    n = index.graph.num_vertices
    for _ in range(count):
        s, t = rng.randrange(n), rng.randrange(n)
        got = index.distance(s, t)
        ref = dijkstra_distance(index.graph, s, t)
        ok = (math.isinf(got) and math.isinf(ref)) or abs(got - ref) < 1e-6
        if not ok:
            raise AssertionError(f"structural drift at ({s}, {t}): {got} != {ref}")


def _closure_batch(graph, rng, count):
    edges = [(u, v, w) for u, v, w in graph.edges() if math.isfinite(w)]
    picks = rng.sample(edges, min(count, max(1, len(edges) // 4)))
    deletions = [(u, v) for u, v, _ in picks]
    restores = [(u, v, w) for u, v, w in picks]
    return deletions, restores


def _construction_batches(index, rng, count):
    """Two link batches: comparable pairs (fast path) and arbitrary ones.

    A single incomparable endpoint pair forces the whole batch onto the
    fallback-rebuild tier, so the scenario keeps the tiers in separate
    batches — which is also how the CI quick bench measures the
    fast-path speedup.
    """
    n = index.graph.num_vertices
    hq = index.hq
    comparable = []
    seen = set()
    for a in rng.sample(range(n), min(n, 64)):
        if len(comparable) >= count:
            break
        partners = [
            b
            for b in range(n)
            if b != a
            and hq.comparable(a, b)
            and not index.graph.has_edge(a, b)
            and (min(a, b), max(a, b)) not in seen
        ]
        if partners:
            b = rng.choice(partners)
            seen.add((min(a, b), max(a, b)))
            comparable.append((a, b, float(rng.randint(1, 30))))
    arbitrary = []
    while len(arbitrary) < count:
        a, b = rng.randrange(n), rng.randrange(n)
        key = (min(a, b), max(a, b))
        if a != b and not index.graph.has_edge(a, b) and key not in seen:
            seen.add(key)
            arbitrary.append((a, b, float(rng.randint(1, 30))))
    return comparable, arbitrary


def structural_scenarios(ctx: ExperimentContext) -> dict:
    """Run the closure/construction scenario on each dataset."""
    rows = []
    raw: dict[str, dict] = {}
    for name in ctx.datasets:
        graph = ctx.graph(name)
        rng = random.Random(ctx.seed)
        config = DHLConfig(seed=ctx.seed, compaction_threshold=0.10)
        index = DHLIndex.build(graph.copy(), config)
        n = graph.num_vertices
        batch = max(4, ctx.batch_size(name) // 2)

        deletions, restores = _closure_batch(index.graph, rng, batch)
        congestion = [
            (u, v, w * 3.0)
            for u, v, w in rng.sample(
                [e for e in index.graph.edges() if math.isfinite(e[2])],
                min(batch, 8),
            )
            if (u, v) not in deletions and (v, u) not in deletions
        ]

        start = time.perf_counter()
        index.apply_batch(deletions=deletions, weight_changes=congestion)
        close_s = time.perf_counter() - start
        _verify_sample(index, rng)

        start = time.perf_counter()
        index.apply_batch(insertions=restores)
        reopen_s = time.perf_counter() - start
        index.apply_batch(
            weight_changes=[(u, v, graph.weight(u, v)) for u, v, _ in congestion]
        )
        _verify_sample(index, rng)

        fast_links, bypass_links = _construction_batches(
            index, rng, min(4, max(2, batch // 4))
        )
        counters_before = dict(index.structural_counters)
        start = time.perf_counter()
        if fast_links:
            index.apply_batch(insertions=fast_links)
        fast_s = time.perf_counter() - start
        start = time.perf_counter()
        index.apply_batch(insertions=bypass_links)
        bypass_s = time.perf_counter() - start
        construct_s = fast_s + bypass_s
        links = fast_links + bypass_links
        counters = index.structural_counters
        fastpath = counters.get("fastpath_inserts", 0) - counters_before.get(
            "fastpath_inserts", 0
        )
        fallbacks = counters.get("fallback_rebuilds", 0) - counters_before.get(
            "fallback_rebuilds", 0
        )
        _verify_sample(index, rng)

        # Second rush hour, then compact the accumulated dead slots.
        deletions2, _ = _closure_batch(index.graph, rng, batch)
        index.apply_batch(deletions=deletions2)
        dead_before = index.dead_fraction
        start = time.perf_counter()
        compaction = index.compact()
        compact_s = time.perf_counter() - start
        _verify_sample(index, rng)

        raw[name] = {
            "vertices": n,
            "closures": len(deletions),
            "close_seconds": close_s,
            "reopen_seconds": reopen_s,
            "new_links": len(links),
            "construct_seconds": construct_s,
            "fastpath_construct_seconds": fast_s,
            "bypass_construct_seconds": bypass_s,
            "fastpath_inserts": fastpath,
            "fallback_rebuilds": fallbacks,
            "dead_fraction_before_compact": dead_before,
            "dead_slots_reclaimed": compaction.dead_slots_reclaimed,
            "bytes_reclaimed": compaction.bytes_reclaimed,
            "compact_seconds": compact_s,
        }
        rows.append(
            [
                name,
                str(len(deletions)),
                f"{close_s * 1e3:.1f}",
                f"{reopen_s * 1e3:.1f}",
                f"{fastpath}/{len(links)}",
                f"{construct_s * 1e3:.1f}",
                str(compaction.dead_slots_reclaimed),
                f"{compact_s * 1e3:.1f}",
            ]
        )
    text = ascii_table(
        [
            "dataset",
            "closures",
            "close ms",
            "reopen ms",
            "fastpath/links",
            "construct ms",
            "slots reclaimed",
            "compact ms",
        ],
        rows,
        title="Structural batches: rush-hour closures, re-openings, "
        "construction, compaction (verified vs Dijkstra)",
    )
    return {"experiment": "structural", "raw": raw, "rows": rows, "text": text}
