"""Shared experiment state: datasets, built indexes, protocol parameters.

Experiments share one :class:`ExperimentContext` so a dataset is generated
once and each index type is built at most once per dataset. Parameters
scale the paper's protocol to the synthetic suite sizes (the paper uses
1,000-update batches and 1M query pairs on million-vertex graphs; we keep
the same *structure* at suite scale).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.baselines.dch import DCHIndex
from repro.baselines.inch2h import IncH2HIndex
from repro.core.config import DHLConfig
from repro.core.index import DHLIndex
from repro.datasets.synthetic import dataset_names, load_dataset
from repro.graph.graph import Graph
from repro.utils.timing import Stopwatch

__all__ = ["ExperimentContext", "BuiltIndexes"]


@dataclass
class BuiltIndexes:
    """Lazily built indexes plus their construction times (seconds)."""

    dhl: DHLIndex | None = None
    dhl_seconds: float = 0.0
    inch2h: IncH2HIndex | None = None
    inch2h_seconds: float = 0.0
    dch: DCHIndex | None = None
    dch_seconds: float = 0.0


@dataclass
class ExperimentContext:
    """Datasets + index cache + scaled protocol parameters."""

    datasets: list[str] = field(default_factory=dataset_names)
    scale: float | None = None  # None = suite default (1e-3 x REPRO_SCALE)
    seed: int = 0
    num_batches: int = 10
    query_count: int = 20_000
    workers: int = 4
    # Serving experiments dump their metrics registry (JSON lines, one
    # instrument per line) here when set; ``None`` keeps them silent.
    metrics_out: Path | None = None
    _graphs: dict[str, Graph] = field(default_factory=dict, repr=False)
    _indexes: dict[str, BuiltIndexes] = field(default_factory=dict, repr=False)

    def graph(self, name: str) -> Graph:
        if name not in self._graphs:
            self._graphs[name] = load_dataset(name, self.scale)
        return self._graphs[name]

    def batch_size(self, name: str) -> int:
        """Scaled stand-in for the paper's 1,000-update batches.

        Uses ~7.5% of the network's edges, capped at 1,000 — at full
        DIMACS scale this recovers the paper's setting.
        """
        m = self.graph(name).num_edges
        return max(10, min(1_000, m // 13))

    def built(self, name: str) -> BuiltIndexes:
        return self._indexes.setdefault(name, BuiltIndexes())

    def dhl(self, name: str) -> DHLIndex:
        built = self.built(name)
        if built.dhl is None:
            watch = Stopwatch()
            with watch:
                built.dhl = DHLIndex.build(
                    self.graph(name).copy(), DHLConfig(seed=self.seed)
                )
            built.dhl_seconds = watch.elapsed
        return built.dhl

    def inch2h(self, name: str) -> IncH2HIndex:
        built = self.built(name)
        if built.inch2h is None:
            watch = Stopwatch()
            with watch:
                built.inch2h = IncH2HIndex.build(self.graph(name).copy())
            built.inch2h_seconds = watch.elapsed
        return built.inch2h

    def dch(self, name: str) -> DCHIndex:
        built = self.built(name)
        if built.dch is None:
            watch = Stopwatch()
            with watch:
                built.dch = DCHIndex.build(self.graph(name).copy())
            built.dch_seconds = watch.elapsed
        return built.dch

    def drop(self, name: str) -> None:
        """Free a dataset's indexes (memory control for long runs)."""
        self._indexes.pop(name, None)
        self._graphs.pop(name, None)
