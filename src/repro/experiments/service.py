"""Serving-layer scenarios: mixed query/update traffic through the service.

Not a table from the paper — this experiment measures what the ROADMAP's
production north star asks of the reproduction: sustained throughput and
tail latency while a :class:`~repro.service.DistanceService` absorbs
interleaved traffic. For each dataset and traffic shape (uniform,
Zipf-hotspot, rush-hour) it replays the same event stream through three
configurations:

* ``loop``   — the seed's per-pair Python loop, no cache (baseline);
* ``batch``  — the vectorised label-matrix kernel, cache disabled;
* ``cached`` — batch kernel + epoch-guarded LRU with fine-grained
  eviction.

All three must produce the same distance checksum; the table reports
their throughput and latency quantiles side by side.

The ``cached`` (production) configuration runs with a live
:class:`~repro.observability.Observability` stack: its latency/SLO
quantiles land in the payload's ``slo`` section and, when the runner is
invoked with ``--metrics-out``, the aggregated metrics registry is
dumped as JSON lines.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import DHLConfig
from repro.core.index import DHLIndex
from repro.experiments.context import ExperimentContext
from repro.experiments.report import ascii_table
from repro.observability import Observability
from repro.partition.regions import partition_regions
from repro.service.service import DistanceService
from repro.service.workload import (
    Event,
    commute_traffic,
    replay,
    rush_hour_traffic,
    uniform_traffic,
    zipf_hotspot_traffic,
)

__all__ = ["service_scenarios"]

_SCENARIOS = ("uniform", "hotspot", "rush_hour", "commute")


def _make_events(name: str, graph, seed: int) -> list[Event]:
    if name == "uniform":
        return uniform_traffic(graph, query_batches=30, batch_size=300, seed=seed)
    if name == "hotspot":
        return zipf_hotspot_traffic(graph, query_batches=30, batch_size=300, seed=seed)
    if name == "commute":
        # The same k=4 split the sharded backend would use; pairs then
        # straddle partitions and churn is biased onto cut edges.
        partition = partition_regions(graph, 4, seed=seed)
        return commute_traffic(
            graph,
            partition.region_of,
            boundary=partition.boundary,
            query_batches=30,
            batch_size=300,
            seed=seed,
        )
    return rush_hour_traffic(graph, cycles=3, peak_batch_size=300, seed=seed)


class _LoopService(DistanceService):
    """The seed's serving behaviour: per-pair scalar loop, no caching."""

    def _batch(self, pairs):  # type: ignore[override]
        distance = self.index.engine.distance
        out = np.empty(len(pairs), dtype=np.float64)
        for idx, (s, t) in enumerate(pairs):
            out[idx] = distance(s, t)
        return out


def _configurations(graph, config: DHLConfig, observability):
    def fresh() -> DHLIndex:
        return DHLIndex.build(graph.copy(), config)

    yield "loop", _LoopService(fresh(), cache_capacity=1)
    yield "batch", DistanceService(fresh(), cache_capacity=1)
    yield "cached", DistanceService(
        fresh(),
        cache_capacity=65_536,
        fine_grained_eviction=True,
        observability=observability,
    )


def service_scenarios(ctx: ExperimentContext) -> dict:
    """Replay each traffic shape through loop / batch / cached services."""
    rows = []
    raw: dict[str, dict] = {}
    slo: dict[str, dict] = {}
    config = DHLConfig(seed=ctx.seed)
    # One registry across every cached run: counters and latency
    # histograms aggregate over the whole replayed suite, which is what
    # a scrape of a long-running service would see.
    observability = Observability.enabled(slow_query_seconds=0.050)
    metrics_service = None
    for name in ctx.datasets:
        graph = ctx.graph(name)
        raw[name] = {}
        for scenario in _SCENARIOS:
            checksums = set()
            for mode, service in _configurations(graph, config, observability):
                events = _make_events(scenario, service.index.graph, ctx.seed)
                report = replay(service, events)
                checksums.add(round(report.distance_checksum, 6))
                q = report.service.query_latency
                if mode == "cached":
                    metrics_service = service
                    slo[f"{name}/{scenario}"] = {
                        "queries_per_second": report.queries_per_second,
                        "p50_ms": q.p50_seconds * 1e3,
                        "p95_ms": q.p95_seconds * 1e3,
                        "p99_ms": q.p99_seconds * 1e3,
                        "slow_queries": len(
                            observability.slow_log.as_list()
                        ),
                    }
                raw[name][f"{scenario}/{mode}"] = {
                    "queries_per_second": report.queries_per_second,
                    "p50_ms": q.p50_seconds * 1e3,
                    "p95_ms": q.p95_seconds * 1e3,
                    "p99_ms": q.p99_seconds * 1e3,
                    "hit_rate": report.service.cache.hit_rate,
                    "checksum": report.distance_checksum,
                }
                rows.append(
                    [
                        name,
                        scenario,
                        mode,
                        f"{report.queries_per_second:,.0f}",
                        f"{q.p50_seconds * 1e3:.3f}",
                        f"{q.p95_seconds * 1e3:.3f}",
                        f"{q.p99_seconds * 1e3:.3f}",
                        f"{report.service.cache.hit_rate:.1%}",
                    ]
                )
            if len(checksums) != 1:
                raise AssertionError(
                    f"{name}/{scenario}: configurations disagree on the "
                    f"distance checksum: {sorted(checksums)}"
                )
    if ctx.metrics_out is not None and metrics_service is not None:
        metrics_service.dump_metrics(ctx.metrics_out)
    text = ascii_table(
        ["dataset", "scenario", "mode", "q/s", "p50 ms", "p95 ms", "p99 ms", "hits"],
        rows,
        title="Serving layer: batched queries + epoch-guarded cache + "
        "update coalescing",
    )
    return {
        "experiment": "service",
        "raw": raw,
        "slo": slo,
        "rows": rows,
        "text": text,
    }
