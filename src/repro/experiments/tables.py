"""Table-shaped experiments: Figure 1's summary table, Tables 1-3.

Each function takes an :class:`ExperimentContext`, returns a payload dict
(also JSON-serialisable) and a rendered text table. Timings follow the
paper's units: milliseconds for updates, microseconds for queries.
"""

from __future__ import annotations


from repro.experiments.context import ExperimentContext
from repro.experiments.measure import mean, time_callable, time_queries
from repro.experiments.report import ascii_table, fmt_bytes, fmt_ms, fmt_us
from repro.experiments.workloads import (
    double_weights,
    random_query_pairs,
    restore_weights,
    sample_update_batches,
)

__all__ = ["table1_datasets", "table2_updates", "table3_index", "figure1_summary"]


def _graph_bytes(graph) -> int:
    """Adjacency memory estimate mirroring Table 1's Memory column."""
    # one (id, weight) slot per arc direction plus per-vertex overhead
    return 16 * 2 * graph.num_edges + 8 * graph.num_vertices


def table1_datasets(ctx: ExperimentContext) -> dict:
    """Table 1: the dataset suite (scaled synthetic equivalents)."""
    from repro.datasets.synthetic import DATASETS

    rows = []
    for name in ctx.datasets:
        graph = ctx.graph(name)
        spec = DATASETS[name]
        rows.append(
            [
                name,
                spec.region,
                f"{graph.num_vertices:,}",
                f"{2 * graph.num_edges:,}",  # DIMACS counts directed arcs
                fmt_bytes(_graph_bytes(graph)),
                f"{spec.paper_vertices:,}",
            ]
        )
    text = ascii_table(
        ["Network", "Region", "|V|", "|E| (arcs)", "Memory", "paper |V|"],
        rows,
        title="Table 1: datasets (synthetic stand-ins at suite scale)",
    )
    return {"experiment": "table1", "rows": rows, "text": text}


def _measure_batch_updates(index, batches, workers=None) -> tuple[float, float]:
    """Mean (increase, decrease) seconds per batch: x2 weights, restore."""
    inc_times, dec_times = [], []
    for batch in batches:
        inc = double_weights(batch)
        dec = restore_weights(batch)
        if workers is None:
            inc_times.append(time_callable(lambda: index.increase(inc)))
            dec_times.append(time_callable(lambda: index.decrease(dec)))
        else:
            inc_times.append(
                time_callable(lambda: index.increase(inc, workers=workers))
            )
            dec_times.append(
                time_callable(lambda: index.decrease(dec, workers=workers))
            )
    return mean(inc_times), mean(dec_times)


def _measure_single_updates(index, batch, cap: int = 200) -> tuple[float, float]:
    """Mean (increase, decrease) seconds per single update.

    Uses up to *cap* updates of *batch*: per-update means stabilise well
    before the paper's 1,000 samples, and the cap keeps the full-suite
    harness affordable in pure Python.
    """
    batch = batch[:cap]
    inc_total = time_callable(
        lambda: [index.increase([change]) for change in double_weights(batch)]
    )
    dec_total = time_callable(
        lambda: [index.decrease([change]) for change in restore_weights(batch)]
    )
    return inc_total / len(batch), dec_total / len(batch)


def table2_updates(ctx: ExperimentContext) -> dict:
    """Table 2: update times — batch & single, +/-, sequential & parallel.

    Note on the parallel columns: DHL+p/DHL-p run the column-partitioned
    Algorithms 6/7 on a thread pool; our IncH2H re-implementation has no
    safe parallel increase (see module docstring of
    :mod:`repro.baselines.inch2h`), so its parallel columns run the same
    sequential algorithm — under CPython's GIL all four parallel columns
    are effectively algorithmic (not hardware) comparisons.
    """
    rows = []
    raw = {}
    for name in ctx.datasets:
        graph = ctx.graph(name)
        batch_size = ctx.batch_size(name)
        batches = sample_update_batches(
            graph, ctx.num_batches, batch_size, seed=ctx.seed
        )
        dhl = ctx.dhl(name)
        h2h = ctx.inch2h(name)

        dhl_inc_p, dhl_dec_p = _measure_batch_updates(dhl, batches, ctx.workers)
        h2h_inc_p, h2h_dec_p = _measure_batch_updates(h2h, batches, ctx.workers)
        dhl_inc, dhl_dec = _measure_batch_updates(dhl, batches)
        h2h_inc, h2h_dec = _measure_batch_updates(h2h, batches)
        dhl_inc_1, dhl_dec_1 = _measure_single_updates(dhl, batches[0])
        h2h_inc_1, h2h_dec_1 = _measure_single_updates(h2h, batches[0])

        raw[name] = {
            "batch_size": batch_size,
            "batch": {
                "DHL+p": dhl_inc_p, "IncH2H+p": h2h_inc_p,
                "DHL+": dhl_inc, "IncH2H+": h2h_inc,
                "DHL-p": dhl_dec_p, "IncH2H-p": h2h_dec_p,
                "DHL-": dhl_dec, "IncH2H-": h2h_dec,
            },
            "single": {
                "DHL+": dhl_inc_1, "IncH2H+": h2h_inc_1,
                "DHL-": dhl_dec_1, "IncH2H-": h2h_dec_1,
            },
        }
        rows.append(
            [
                name,
                fmt_ms(dhl_inc_p), fmt_ms(h2h_inc_p),
                fmt_ms(dhl_inc), fmt_ms(h2h_inc),
                fmt_ms(dhl_dec_p), fmt_ms(h2h_dec_p),
                fmt_ms(dhl_dec), fmt_ms(h2h_dec),
                fmt_ms(dhl_inc_1), fmt_ms(h2h_inc_1),
                fmt_ms(dhl_dec_1), fmt_ms(h2h_dec_1),
            ]
        )
    text = ascii_table(
        [
            "Network",
            "DHL+p", "IncH2H+p", "DHL+", "IncH2H+",
            "DHL-p", "IncH2H-p", "DHL-", "IncH2H-",
            "1:DHL+", "1:IncH2H+", "1:DHL-", "1:IncH2H-",
        ],
        rows,
        title=(
            "Table 2: update times [ms] — batch setting (8 cols) and "
            "single-update setting (last 4 cols)"
        ),
    )
    return {"experiment": "table2", "raw": raw, "rows": rows, "text": text}


def table3_index(ctx: ExperimentContext) -> dict:
    """Table 3: query time, label/shortcut sizes, construction, L-delta."""
    rows = []
    raw = {}
    for name in ctx.datasets:
        graph = ctx.graph(name)
        dhl = ctx.dhl(name)
        h2h = ctx.inch2h(name)
        built = ctx.built(name)

        pairs = random_query_pairs(
            graph.num_vertices, ctx.query_count, seed=ctx.seed + 1
        )
        dhl_q = time_queries(dhl.distance, pairs)
        h2h_q = time_queries(h2h.distance, pairs)

        # Affected labels from one doubled batch (then restored).
        batch = sample_update_batches(
            graph, 1, ctx.batch_size(name), seed=ctx.seed + 2
        )[0]
        dhl_stats = dhl.increase(double_weights(batch))
        h2h_stats = h2h.increase(double_weights(batch))
        dhl.decrease(restore_weights(batch))
        h2h.decrease(restore_weights(batch))

        stats = dhl.stats()
        dhl_entries = stats.label_entries
        h2h_entries = h2h.label_entries()
        raw[name] = {
            "query_us": {"DHL": dhl_q * 1e6, "IncH2H": h2h_q * 1e6},
            "label_bytes": {"DHL": stats.label_bytes, "IncH2H": h2h.memory_bytes()},
            "shortcut_bytes": {
                "DHL": stats.shortcut_bytes,
                "IncH2H": h2h.shortcut_bytes(),
            },
            "construction_s": {
                "DHL": stats.construction_seconds or built.dhl_seconds,
                "IncH2H": built.inch2h_seconds,
            },
            "affected_labels": {
                "DHL": [dhl_stats.labels_changed, dhl_entries],
                "IncH2H": [h2h_stats.labels_changed, h2h_entries],
            },
            "height": {"DHL": stats.height, "IncH2H": h2h.height},
        }
        rows.append(
            [
                name,
                fmt_us(dhl_q), fmt_us(h2h_q),
                fmt_bytes(stats.label_bytes), fmt_bytes(h2h.memory_bytes()),
                fmt_bytes(stats.shortcut_bytes), fmt_bytes(h2h.shortcut_bytes()),
                f"{(stats.construction_seconds or built.dhl_seconds):.1f}",
                f"{built.inch2h_seconds:.1f}",
                f"{dhl_stats.labels_changed}/{dhl_entries} "
                f"({dhl_stats.labels_changed / max(1, dhl_entries):.2f})",
                f"{h2h_stats.labels_changed}/{h2h_entries} "
                f"({h2h_stats.labels_changed / max(1, h2h_entries):.2f})",
            ]
        )
    text = ascii_table(
        [
            "Network",
            "Q DHL[us]", "Q IncH2H[us]",
            "L DHL", "L IncH2H",
            "SC DHL", "SC IncH2H",
            "C DHL[s]", "C IncH2H[s]",
            "Ld DHL", "Ld IncH2H",
        ],
        rows,
        title="Table 3: query time, labelling/shortcut size, construction, affected labels",
    )
    return {"experiment": "table3", "raw": raw, "rows": rows, "text": text}


def figure1_summary(ctx: ExperimentContext) -> dict:
    """Figure 1's headline table: DCH vs IncH2H vs DHL on the largest sets.

    The paper shows USA and EUR; we use the two largest datasets present
    in the context.
    """
    chosen = ctx.datasets[-2:] if len(ctx.datasets) >= 2 else ctx.datasets
    rows = []
    raw = {}
    for name in chosen:
        graph = ctx.graph(name)
        batch_size = ctx.batch_size(name)
        batches = sample_update_batches(graph, min(3, ctx.num_batches), batch_size, seed=ctx.seed)
        pairs = random_query_pairs(
            graph.num_vertices, min(2_000, ctx.query_count), seed=ctx.seed + 1
        )

        dch = ctx.dch(name)
        h2h = ctx.inch2h(name)
        dhl = ctx.dhl(name)

        entries = {}
        for label, index in [("DCH", dch), ("IncH2H", h2h), ("DHL", dhl)]:
            inc, dec = _measure_batch_updates(index, batches)
            # DCH queries are slow: sample fewer pairs for it.
            qpairs = pairs[:200] if label == "DCH" else pairs
            q = time_queries(index.distance, qpairs)
            entries[label] = {"inc_ms": inc * 1e3, "dec_ms": dec * 1e3, "q_us": q * 1e6}
            rows.append(
                [name, label, fmt_ms(inc), fmt_ms(dec), fmt_us(q)]
            )
        raw[name] = entries
    text = ascii_table(
        ["Dataset", "Method", "Incr [ms]", "Decr [ms]", "Query [us]"],
        rows,
        title="Figure 1 summary: update & query times (batch setting)",
    )
    return {"experiment": "figure1", "raw": raw, "rows": rows, "text": text}
