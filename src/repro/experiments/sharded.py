"""Sharded-vs-monolithic comparison: builds, queries, update routing.

Not a table from the paper — this experiment measures what region
sharding buys on the ROADMAP's production axis. Per dataset it

* builds the monolithic index and the k=4 sharded index (partition-
  parallel) and compares wall clocks, with the per-shard breakdown;
* answers the same uniform and cross-region commute query sets on both
  backends, checks the distances agree exactly, and compares latency;
* applies an intra-region update batch to both and reports how many
  shards the sharded backend touched (the routing evidence: one).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import DHLConfig
from repro.core.sharded import ShardedDHLIndex
from repro.experiments.context import ExperimentContext
from repro.experiments.report import ascii_table
from repro.experiments.workloads import cross_region_pairs, random_query_pairs

__all__ = ["sharded_scenarios", "intra_region_update_batch"]

_K = 4


def _timed_distances(index, pairs) -> tuple[np.ndarray, float]:
    start = time.perf_counter()
    out = index.distances(pairs)
    return out, time.perf_counter() - start


def intra_region_update_batch(
    sharded: ShardedDHLIndex, size: int = 8
) -> tuple[int, list[tuple[int, int, float]]]:
    """A weight-doubling batch confined to one region (largest shard).

    Returns ``(region_id, changes)``; the update-isolation evidence
    (both this experiment and the CI quick bench) applies the batch and
    asserts only ``region_id``'s shard sees work.
    """
    rid = max(range(sharded.k), key=lambda i: len(sharded.shard_vertices[i]))
    region = set(sharded.shard_vertices[rid].tolist())
    batch = []
    for u, v, w in sharded.graph.edges():
        if u in region and v in region and np.isfinite(w):
            batch.append((u, v, 2.0 * w))
            if len(batch) >= size:
                break
    return rid, batch


def sharded_scenarios(ctx: ExperimentContext) -> dict:
    """Compare the sharded backend against the monolithic index."""
    rows = []
    raw: dict[str, dict] = {}
    config = DHLConfig(seed=ctx.seed)
    for name in ctx.datasets:
        graph = ctx.graph(name)
        ctx.dhl(name)  # monolithic build, timed by the context
        built = ctx.built(name)
        mono = built.dhl
        sharded = ShardedDHLIndex.build(
            graph.copy(), k=_K, config=config, build_workers=ctx.workers
        )
        stats = sharded.stats()

        n = graph.num_vertices
        count = min(ctx.query_count, 4_000)
        uniform = random_query_pairs(n, count, seed=ctx.seed)
        commute = cross_region_pairs(
            sharded.region_of,
            count,
            seed=ctx.seed,
            boundary=sharded.partition.boundary,
        )
        mono_uniform, mono_uniform_s = _timed_distances(mono, uniform)
        shard_uniform, shard_uniform_s = _timed_distances(sharded, uniform)
        mono_commute, mono_commute_s = _timed_distances(mono, commute)
        shard_commute, shard_commute_s = _timed_distances(sharded, commute)
        if not np.array_equal(mono_uniform, shard_uniform) or not np.array_equal(
            mono_commute, shard_commute
        ):
            raise AssertionError(
                f"{name}: sharded distances disagree with monolithic"
            )

        rid, batch = intra_region_update_batch(sharded)
        update_stats = sharded.update(batch)
        mono.update(batch)
        after = random_query_pairs(n, min(count, 500), seed=ctx.seed + 1)
        if not np.array_equal(mono.distances(after), sharded.distances(after)):
            raise AssertionError(f"{name}: post-update sharded drift")
        # Restore so later experiments see base weights.
        restore = [(u, v, graph.weight(u, v)) for u, v, _ in batch]
        sharded.update(restore)
        mono.update(restore)

        raw[name] = {
            "monolithic_build_seconds": built.dhl_seconds,
            "sharded_build_seconds": stats.build.total_seconds
            + stats.partition_seconds
            + stats.overlay_seconds,
            "per_shard_build_seconds": stats.build.per_shard_seconds,
            "partition_seconds": stats.partition_seconds,
            "overlay_seconds": stats.overlay_seconds,
            "boundary_vertices": stats.boundary_vertices,
            "cut_edges": stats.cut_edges,
            "uniform_qps_monolithic": count / max(mono_uniform_s, 1e-9),
            "uniform_qps_sharded": count / max(shard_uniform_s, 1e-9),
            "commute_qps_monolithic": count / max(mono_commute_s, 1e-9),
            "commute_qps_sharded": count / max(shard_commute_s, 1e-9),
            "update_target_shard": rid,
            "update_touched_shards": update_stats.touched_shards,
            "update_labels_changed_per_shard": {
                sid: s.labels_changed
                for sid, s in update_stats.per_shard.items()
            },
        }
        rows.append(
            [
                name,
                f"{built.dhl_seconds:.2f}",
                f"{raw[name]['sharded_build_seconds']:.2f}",
                str(stats.boundary_vertices),
                f"{raw[name]['uniform_qps_sharded']:,.0f}",
                f"{raw[name]['commute_qps_sharded']:,.0f}",
                f"{raw[name]['commute_qps_monolithic']:,.0f}",
                "/".join(str(s) for s in update_stats.touched_shards) or "-",
            ]
        )
    text = ascii_table(
        [
            "dataset",
            "mono build s",
            f"sharded k={_K} s",
            "boundary",
            "shard uni q/s",
            "shard commute q/s",
            "mono commute q/s",
            "upd shards",
        ],
        rows,
        title="Sharded backend: partition-parallel builds, boundary overlay, "
        "shard-routed updates",
    )
    return {"experiment": "sharded", "raw": raw, "rows": rows, "text": text}
