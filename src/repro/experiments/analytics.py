"""Search-space analytics behind the paper's Figure 6 discussion.

The paper explains DHL's query behaviour through the number of label
entries a query inspects: long-range pairs meet at high hierarchy levels
and share *few* common ancestors, short-range pairs share many. This
module measures exactly that — the per-query-set average of DHL's
common-ancestor count ``K`` and H2H's LCA bag width — turning the paper's
qualitative explanation into a measured quantity.
"""

from __future__ import annotations

from repro.baselines.h2h import H2HIndex
from repro.core.index import DHLIndex
from repro.experiments.measure import mean
from repro.experiments.report import ascii_table

__all__ = ["query_search_space", "search_space_by_query_set"]


def query_search_space(
    dhl: DHLIndex, h2h: H2HIndex | None, pairs: list[tuple[int, int]]
) -> dict[str, float]:
    """Average label entries scanned per query for each method."""
    dhl_entries = mean(
        2 * dhl.hq.common_ancestor_count(s, t) for s, t in pairs
    )
    out = {"DHL_entries": dhl_entries}
    if h2h is not None:
        out["IncH2H_entries"] = mean(
            2 * len(h2h.pos[h2h.lca(s, t)])
            for s, t in pairs
            if h2h.anc[s, 0] == h2h.anc[t, 0]
        )
    return out


def search_space_by_query_set(
    dhl: DHLIndex,
    h2h: H2HIndex | None,
    query_sets: list[list[tuple[int, int]]],
) -> dict:
    """Per-Q-set search-space table (companion to Figure 6)."""
    rows = []
    raw = []
    for i, pairs in enumerate(query_sets, start=1):
        if not pairs:
            rows.append([f"Q{i}", 0, "-", "-"])
            raw.append({})
            continue
        entry = query_search_space(dhl, h2h, pairs)
        raw.append(entry)
        rows.append(
            [
                f"Q{i}",
                len(pairs),
                f"{entry['DHL_entries']:.1f}",
                f"{entry.get('IncH2H_entries', float('nan')):.1f}",
            ]
        )
    text = ascii_table(
        ["Set", "pairs", "DHL entries/query", "IncH2H entries/query"],
        rows,
        title="Search space per distance-stratified query set",
    )
    return {"rows": rows, "raw": raw, "text": text}
