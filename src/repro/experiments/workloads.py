"""Workload generators following the paper's experimental protocol.

Section 7: update workloads sample random edge batches, double their
weights (increase), then restore them (decrease); query workloads are
uniform random pairs plus ten distance-stratified sets ``Q1..Q10`` whose
ranges grow geometrically from 1,000 to the network diameter.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.graph.graph import Graph
from repro.utils.rng import make_rng, sample_pairs

__all__ = [
    "sample_update_batches",
    "double_weights",
    "restore_weights",
    "scale_weights",
    "random_query_pairs",
    "cross_region_pairs",
    "distance_stratified_queries",
]

EdgeTriple = tuple[int, int, float]


def sample_update_batches(
    graph: Graph,
    batches: int,
    batch_size: int,
    seed: int | np.random.Generator | None = 0,
) -> list[list[EdgeTriple]]:
    """Sample *batches* disjoint-within-batch edge sets with weights.

    Each batch lists ``(u, v, current_weight)`` for ``batch_size`` random
    finite-weight edges (without replacement inside a batch, matching the
    paper's 10 batches of 1,000 updates).
    """
    rng = make_rng(seed)
    edges = [(u, v, w) for u, v, w in graph.edges() if math.isfinite(w)]
    if not edges:
        raise ValueError("graph has no finite-weight edges to update")
    size = min(batch_size, len(edges))
    result = []
    for _ in range(batches):
        picks = rng.choice(len(edges), size=size, replace=False)
        result.append([edges[int(p)] for p in picks])
    return result


def double_weights(batch: list[EdgeTriple]) -> list[EdgeTriple]:
    """Increase workload: weights doubled (the paper's 2.0 x w)."""
    return [(u, v, 2.0 * w) for u, v, w in batch]


def restore_weights(batch: list[EdgeTriple]) -> list[EdgeTriple]:
    """Decrease workload: restore the original weights."""
    return [(u, v, w) for u, v, w in batch]


def scale_weights(batch: list[EdgeTriple], factor: float) -> list[EdgeTriple]:
    """Figure 5 workload: weights scaled to ``factor * w``."""
    return [(u, v, factor * w) for u, v, w in batch]


def random_query_pairs(
    n: int, count: int, seed: int | np.random.Generator | None = 0
) -> list[tuple[int, int]]:
    """Uniform random distinct (s, t) pairs (Table 3 protocol)."""
    return sample_pairs(n, count, make_rng(seed))


def cross_region_pairs(
    region_of: np.ndarray,
    count: int,
    seed: int | np.random.Generator | None = 0,
    boundary: "list[list[int]] | None" = None,
    boundary_bias: float = 0.5,
) -> list[tuple[int, int]]:
    """Cross-region commute pairs — the sharded index's worst case.

    Every pair straddles two distinct regions of *region_of* (a
    per-vertex region assignment, e.g.
    :attr:`~repro.partition.RegionPartition.region_of`), so a sharded
    backend can never answer from a single shard: each query pays the
    source-fan + overlay + target-fan combine. With *boundary* given
    (per-region boundary vertex lists), each endpoint is drawn from its
    region's boundary set with probability *boundary_bias* — commutes
    that hug the partition frontier, where the overlay detour is least
    amortised.

    Requires at least two regions; a single-region assignment raises.
    """
    rng = make_rng(seed)
    region_of = np.asarray(region_of, dtype=np.int64)
    num_regions = int(region_of.max()) + 1 if len(region_of) else 0
    if num_regions < 2:
        raise ValueError("cross-region pairs need at least two regions")
    members = [np.flatnonzero(region_of == r) for r in range(num_regions)]
    boundary_arrays = None
    if boundary is not None:
        boundary_arrays = [np.asarray(b, dtype=np.int64) for b in boundary]

    def draw(region: int) -> int:
        if (
            boundary_arrays is not None
            and len(boundary_arrays[region])
            and rng.random() < boundary_bias
        ):
            pool = boundary_arrays[region]
        else:
            pool = members[region]
        return int(pool[rng.integers(len(pool))])

    pairs: list[tuple[int, int]] = []
    for _ in range(count):
        rs, rt = rng.choice(num_regions, size=2, replace=False)
        pairs.append((draw(int(rs)), draw(int(rt))))
    return pairs


def distance_stratified_queries(
    distance: Callable[[int, int], float],
    n: int,
    per_set: int,
    seed: int | np.random.Generator | None = 0,
    num_sets: int = 10,
    l_min: float = 1_000.0,
    max_attempts_factor: int = 400,
) -> list[list[tuple[int, int]]]:
    """The paper's ``Q1..Q10`` sets with geometrically growing distances.

    With ``x = (l_max / l_min)^(1/num_sets)``, set ``Q_i`` holds pairs
    whose distance falls in ``(l_min * x^(i-1), l_min * x^i]``. ``l_max``
    is estimated from a random sample. Buckets that the graph cannot fill
    (few pairs that far apart) are returned partially filled.
    """
    rng = make_rng(seed)
    probe = sample_pairs(n, min(2_000, 4 * per_set * num_sets), rng)
    l_max = max(
        (distance(s, t) for s, t in probe if math.isfinite(distance(s, t))),
        default=l_min * 2,
    )
    l_max = max(l_max, l_min * 2)
    x = (l_max / l_min) ** (1.0 / num_sets)

    sets: list[list[tuple[int, int]]] = [[] for _ in range(num_sets)]
    needed = num_sets * per_set
    attempts = 0
    max_attempts = max_attempts_factor * needed
    filled = 0
    while filled < needed and attempts < max_attempts:
        attempts += 1
        s = int(rng.integers(0, n))
        t = int(rng.integers(0, n))
        if s == t:
            continue
        d = distance(s, t)
        if not math.isfinite(d) or d <= l_min:
            continue
        bucket = min(num_sets - 1, int(math.ceil(math.log(d / l_min, x))) - 1)
        if len(sets[bucket]) < per_set:
            sets[bucket].append((s, t))
            filled += 1
    return sets
