"""Correctness verification experiment.

The paper states: "Distance results are exact for all methods considered,
and correctness has been verified using Dijkstra." This experiment
reproduces that check: for every dataset it builds all three indexes
(DHL, IncH2H, DCH), samples query pairs, runs a batch of weight updates,
and verifies every answer against Dijkstra before and after the updates.
"""

from __future__ import annotations

from repro.baselines.dijkstra import dijkstra_distance
from repro.experiments.context import ExperimentContext
from repro.experiments.report import ascii_table
from repro.experiments.workloads import (
    double_weights,
    random_query_pairs,
    restore_weights,
    sample_update_batches,
)

__all__ = ["verify_correctness"]


def _mismatches(indexes: dict, graph, pairs) -> dict[str, int]:
    counts = {name: 0 for name in indexes}
    for s, t in pairs:
        expected = dijkstra_distance(graph, s, t)
        for name, index in indexes.items():
            if index.distance(s, t) != expected:
                counts[name] += 1
    return counts


def verify_correctness(ctx: ExperimentContext, pairs_per_phase: int = 50) -> dict:
    """Verify DHL / IncH2H / DCH against Dijkstra, static and dynamic."""
    rows = []
    raw = {}
    for name in ctx.datasets:
        graph = ctx.graph(name)
        indexes = {
            "DHL": ctx.dhl(name),
            "IncH2H": ctx.inch2h(name),
            "DCH": ctx.dch(name),
        }
        pairs = random_query_pairs(
            graph.num_vertices, pairs_per_phase, seed=ctx.seed + 9
        )
        static = _mismatches(indexes, indexes["DHL"].graph, pairs)

        batch = sample_update_batches(
            graph, 1, ctx.batch_size(name), seed=ctx.seed + 10
        )[0]
        for index in indexes.values():
            index.increase(double_weights(batch))
        increased = _mismatches(indexes, indexes["DHL"].graph, pairs)
        for index in indexes.values():
            index.decrease(restore_weights(batch))
        restored = _mismatches(indexes, indexes["DHL"].graph, pairs)

        raw[name] = {
            "static": static,
            "after_increase": increased,
            "after_restore": restored,
            "pairs_per_phase": pairs_per_phase,
        }
        total = {
            method: static[method] + increased[method] + restored[method]
            for method in static
        }
        rows.append(
            [
                name,
                3 * pairs_per_phase,
                total["DHL"],
                total["IncH2H"],
                total["DCH"],
            ]
        )
    text = ascii_table(
        ["Network", "checked", "DHL errs", "IncH2H errs", "DCH errs"],
        rows,
        title="Verification against Dijkstra (static / increase / restore)",
    )
    return {"experiment": "verify", "raw": raw, "rows": rows, "text": text}
