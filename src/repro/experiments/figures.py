"""Figure-shaped experiments: Figures 5, 6 and 7 of the paper.

Figures are emitted as data series (one text table per dataset plus a
JSON payload); plotting is deliberately left to the consumer — the
reproduction target is the numbers and their shape.
"""

from __future__ import annotations

from repro.experiments.context import ExperimentContext
from repro.experiments.measure import time_callable, time_queries
from repro.experiments.report import format_series, fmt_us
from repro.experiments.workloads import (
    distance_stratified_queries,
    restore_weights,
    sample_update_batches,
    scale_weights,
)

__all__ = ["figure5_weight_sweep", "figure6_query_sets", "figure7_scalability"]


def figure5_weight_sweep(ctx: ExperimentContext) -> dict:
    """Figure 5: update time vs weight multiplier (t+1) x w, t = 1..9.

    Batch ``t`` gets its weights scaled to ``(t+1) * w`` (increase), then
    restored (decrease), exactly the Section 7.2 protocol.
    """
    raw = {}
    texts = []
    for name in ctx.datasets:
        graph = ctx.graph(name)
        batches = sample_update_batches(
            graph, 9, ctx.batch_size(name), seed=ctx.seed + 5
        )
        dhl = ctx.dhl(name)
        h2h = ctx.inch2h(name)
        series = {"DHL+": [], "DHL-": [], "IncH2H+": [], "IncH2H-": []}
        for t, batch in enumerate(batches, start=1):
            factor = float(t + 1)
            inc = scale_weights(batch, factor)
            dec = restore_weights(batch)
            series["DHL+"].append(time_callable(lambda: dhl.increase(inc)))
            series["DHL-"].append(time_callable(lambda: dhl.decrease(dec)))
            series["IncH2H+"].append(time_callable(lambda: h2h.increase(inc)))
            series["IncH2H-"].append(time_callable(lambda: h2h.decrease(dec)))
        raw[name] = {k: [v * 1e3 for v in vals] for k, vals in series.items()}
        texts.append(
            format_series(
                f"Figure 5 ({name}): update time [ms] vs weight change t",
                "t",
                list(range(1, 10)),
                series,
            )
        )
    return {"experiment": "figure5", "raw": raw, "text": "\n\n".join(texts)}


def figure6_query_sets(ctx: ExperimentContext) -> dict:
    """Figure 6: query time over 10 distance-stratified sets Q1..Q10.

    Also records the measured search space per set (common-ancestor label
    entries for DHL, LCA bag width for IncH2H) — the quantity the paper's
    discussion of this figure appeals to.
    """
    from repro.experiments.analytics import query_search_space

    raw = {}
    texts = []
    per_set = max(50, min(1_000, ctx.query_count // 10))
    for name in ctx.datasets:
        graph = ctx.graph(name)
        dhl = ctx.dhl(name)
        h2h = ctx.inch2h(name)
        sets = distance_stratified_queries(
            dhl.distance, graph.num_vertices, per_set, seed=ctx.seed + 6
        )
        series = {"DHL": [], "IncH2H": [], "pairs": []}
        search_space = []
        for pairs in sets:
            series["DHL"].append(time_queries(dhl.distance, pairs))
            series["IncH2H"].append(time_queries(h2h.distance, pairs))
            series["pairs"].append(float(len(pairs)))
            search_space.append(
                query_search_space(dhl, h2h, pairs) if pairs else {}
            )
        raw[name] = {
            "DHL_us": [v * 1e6 for v in series["DHL"]],
            "IncH2H_us": [v * 1e6 for v in series["IncH2H"]],
            "set_sizes": series["pairs"],
            "search_space": search_space,
        }
        texts.append(
            format_series(
                f"Figure 6 ({name}): query time [us] per distance set",
                "Q",
                list(range(1, 11)),
                {"DHL": series["DHL"], "IncH2H": series["IncH2H"]},
                y_format=fmt_us,
            )
        )
    return {"experiment": "figure6", "raw": raw, "text": "\n\n".join(texts)}


def figure7_scalability(ctx: ExperimentContext) -> dict:
    """Figure 7: batch update time vs batch size against reconstruction.

    Samples ``5 x batch_size`` updates per network and processes prefixes
    of growing size (the paper's 500..5000 in steps of 500, scaled), with
    full reconstruction time as the reference line.
    """
    raw = {}
    texts = []
    for name in ctx.datasets:
        graph = ctx.graph(name)
        base = ctx.batch_size(name)
        pool = sample_update_batches(graph, 1, 5 * base, seed=ctx.seed + 7)[0]
        dhl = ctx.dhl(name)
        rebuild_seconds = time_callable(lambda: dhl.rebuild())

        sizes = [max(1, round(f * len(pool))) for f in
                 (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)]
        series = {"DHL+": [], "DHL-": [], "Reconstruction": []}
        for size in sizes:
            batch = pool[:size]
            inc = scale_weights(batch, 2.0)
            dec = restore_weights(batch)
            series["DHL+"].append(time_callable(lambda: dhl.increase(inc)))
            series["DHL-"].append(time_callable(lambda: dhl.decrease(dec)))
            series["Reconstruction"].append(rebuild_seconds)
        raw[name] = {
            "sizes": sizes,
            "DHL+_s": series["DHL+"],
            "DHL-_s": series["DHL-"],
            "reconstruction_s": rebuild_seconds,
        }
        texts.append(
            format_series(
                f"Figure 7 ({name}): batch update time [ms] vs batch size",
                "batch",
                sizes,
                series,
            )
        )
    return {"experiment": "figure7", "raw": raw, "text": "\n\n".join(texts)}
