"""Deterministic chaos drill for the fault-tolerant serving plane.

Every fault in this scenario is scripted — a :class:`FaultPlan` keyed
by request counters, a fake supervision clock advanced by hand, and
hard process kills at known round-robin positions — so the drill is
exactly reproducible in CI: no wall-clock races, no random kills, no
sleeps. The contract it certifies, per dataset:

* **zero wrong answers** — every distance the runtime serves (before,
  during, and after the chaos) equals the authoritative parent index;
* **sheds only inside breaker-open windows** — pairs are dropped with
  :class:`~repro.exceptions.PartialResultError` only while every
  replica of their shard is down and the shard's breaker is open;
* **every killed replica comes back** — the supervisor respawns each
  dead slot (fresh incarnation, handshake at the current epoch) and
  the shard's breaker walks open → half-open → closed on the first
  served request;
* **bounded recovery** — failover and respawn downtime stay under a
  loose ceiling (the tight gates live in the benchmark checker);
* **stale rejoiners heal** — a replica holding an old epoch resolves
  through the ``StaleReply`` → republish → retry path mid-request;
* **torn snapshots are refused** — a crash-corrupted on-disk snapshot
  fails to load with :class:`~repro.exceptions.SnapshotCorruptionError`
  instead of serving silently wrong labels.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.config import DHLConfig
from repro.core.serialization import verify_snapshot
from repro.core.sharded import ShardedDHLIndex
from repro.exceptions import PartialResultError, SnapshotCorruptionError
from repro.experiments.context import ExperimentContext
from repro.experiments.report import ascii_table
from repro.service.faults import FaultPlan
from repro.service.socket_runtime import SocketShardRuntime

__all__ = ["service_chaos_scenarios"]

_K = 2
_REPLICAS = 2
_SUPERVISE_INTERVAL = 60.0
#: Loose sanity ceiling, milliseconds. The regression gates in
#: ``benchmarks/check_service_regression.py`` are the tight ones.
_RECOVERY_CEILING_MS = 30_000.0


class _FakeClock:
    """Hand-advanced supervision clock: no real time passes in CI."""

    def __init__(self):
        self.now = 0.0

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


def _drill_pairs(sharded, count: int = 6):
    """``count`` intra-shard-0 pairs (the shard we kill) + ``count``
    intra-shard-1 pairs (the control group that must keep serving)."""
    lost_v = [int(v) for v in sharded.shard_vertices[0]]
    kept_v = [int(v) for v in sharded.shard_vertices[1]]
    count = min(count, len(lost_v) // 2, len(kept_v) // 2)
    lost = [(lost_v[i], lost_v[-1 - i]) for i in range(count)]
    kept = [(kept_v[i], kept_v[-1 - i]) for i in range(count)]
    return lost, kept


def _silent_kill(handle) -> None:
    """Kill the process without telling the parent-side handle."""
    handle.process.terminate()
    handle.process.join(10)


def _chaos_drill(graph, sharded) -> dict:
    lost, kept = _drill_pairs(sharded)
    batch = lost + kept
    clock = _FakeClock()
    # Request 0 of every replica is its health probe from the
    # construction-time supervision poll; the kill lands on replica
    # (0, 0)'s first *compute* request — the opening sub-batch.
    plan = FaultPlan().kill(0, 0, at_request=1)
    wrong = 0
    sheds_outside_open = 0
    shed_pairs = 0
    with SocketShardRuntime(
        sharded,
        replicas=_REPLICAS,
        degraded_mode="shed",
        clock=clock,
        supervise_interval=_SUPERVISE_INTERVAL,
        fault_plan=plan,
    ) as runtime:
        breaker = runtime._breakers[0]

        def served_exactly(pairs) -> int:
            got = runtime.distances(pairs)
            return int(np.sum(got != sharded.distances(pairs)))

        # Phase 1 — scripted kill mid-batch: the round-robin pick dies
        # on the wire, the sibling answers, nothing is lost.
        started = time.perf_counter()
        wrong += served_exactly(batch)
        failover_ms = (time.perf_counter() - started) * 1e3
        if not plan.exhausted:
            raise AssertionError("the scripted kill never fired")
        if runtime.stats.failovers < 1:
            raise AssertionError("the kill did not route through failover")

        # Phase 2 — total shard outage: the survivor dies silently, the
        # breaker opens, and shard-0 pairs shed while shard 1 serves.
        _silent_kill(runtime._groups[0][1])
        try:
            runtime.distances(batch)
        except PartialResultError as exc:
            if breaker.state != breaker.OPEN:
                sheds_outside_open += len(exc.shed)
            shed_pairs += len(exc.shed)
            if exc.open_shards != (0,):
                raise AssertionError(
                    f"expected shard 0 open, got {exc.open_shards}"
                )
            if sorted(int(i) for i in exc.shed) != list(range(len(lost))):
                raise AssertionError(
                    f"shed the wrong positions: {sorted(exc.shed)}"
                )
            got = np.asarray(exc.distances)
            if not np.all(np.isnan(got[: len(lost)])):
                raise AssertionError("shed pairs must be NaN, not numbers")
            wrong += int(
                np.sum(got[len(lost) :] != sharded.distances(kept))
            )
        else:
            raise AssertionError(
                "a full shard outage must raise PartialResultError"
            )

        # Phase 3 — supervised recovery: one poll marks the slots down
        # and schedules backoff, the next (past the deterministic
        # delay) respawns both; the breaker walks half-open → closed.
        clock.advance(_SUPERVISE_INTERVAL + 1.0)
        runtime.supervisor.poll()
        clock.advance(1.0)
        summary = runtime.supervisor.poll(force=True)
        if summary.get("respawned") != 2:
            raise AssertionError(f"expected 2 respawns, got {summary}")
        respawn_ms = max(runtime.supervisor.recovery_ms)
        if breaker.state != breaker.HALF_OPEN:
            raise AssertionError("respawn must move the breaker to probation")
        wrong += served_exactly(batch)
        if breaker.state != breaker.CLOSED:
            raise AssertionError("a served request must close the breaker")
        incarnations = sorted(h.incarnation for h in runtime._groups[0])
        if incarnations != [1, 1]:
            raise AssertionError(f"stale incarnations after respawn: "
                                 f"{incarnations}")

        # Phase 4 — a structural update lands on the fresh replicas,
        # then a fabricated missed broadcast heals through the
        # StaleReply → republish → retry path mid-request.
        u, v, w = next(
            (u, v, w)
            for u, v, w in graph.edges()
            if sharded.region_of[u] == 0 and sharded.region_of[v] == 0
        )
        runtime.apply_update([(u, v, float(max(1, round(2 * w))))])
        wrong += served_exactly(batch)
        before_resyncs = runtime.stats.resyncs
        runtime._epochs[0] += 1  # simulate a broadcast the shard missed
        wrong += served_exactly(lost)
        if runtime.stats.resyncs <= before_resyncs:
            raise AssertionError("the stale replica never resynced")

        stats = runtime.stats.as_dict()
    if wrong:
        raise AssertionError(f"{wrong} wrong answers during the chaos drill")
    if sheds_outside_open:
        raise AssertionError(
            f"{sheds_outside_open} pairs shed outside a breaker-open window"
        )
    for ms in (failover_ms, respawn_ms):
        if ms >= _RECOVERY_CEILING_MS:
            raise AssertionError(
                f"recovery took {ms:.0f} ms (ceiling "
                f"{_RECOVERY_CEILING_MS:.0f} ms)"
            )
    return {
        "kills": 2,
        "wrong_answers": wrong,
        "shed_pairs": shed_pairs,
        "sheds_outside_open_window": sheds_outside_open,
        "failover_recovery_ms": failover_ms,
        "respawn_downtime_ms": respawn_ms,
        "scheduler": stats,
    }


def _torn_snapshot_drill(sharded) -> dict:
    """Crash-corrupt an on-disk snapshot; the load must refuse it."""
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        path = Path(tmp) / "snapshot"
        sharded.save(path)
        files_verified = verify_snapshot(path)
        victim = path / "shard_00" / "label_values.npy"
        blob = bytearray(victim.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        victim.write_bytes(blob)
        try:
            ShardedDHLIndex.load(path)
        except SnapshotCorruptionError:
            detected = True
        else:
            detected = False
    if not detected:
        raise AssertionError(
            "a corrupted snapshot loaded silently instead of raising "
            "SnapshotCorruptionError"
        )
    return {"snapshot_files_verified": files_verified, "torn_detected": True}


def service_chaos_scenarios(ctx: ExperimentContext) -> dict:
    """Scripted replica kills, shed windows, respawns, torn snapshots."""
    rows = []
    raw: dict[str, dict] = {}
    config = DHLConfig(seed=ctx.seed)
    for name in ctx.datasets:
        graph = ctx.graph(name)
        sharded = ShardedDHLIndex.build(
            graph.copy(), k=_K, config=config, build_workers=ctx.workers
        )
        entry = _chaos_drill(graph, sharded)
        entry.update(_torn_snapshot_drill(sharded))
        raw[name] = entry
        scheduler = entry["scheduler"]
        rows.append(
            [
                name,
                str(entry["kills"]),
                str(scheduler["failovers"]),
                str(scheduler["respawns"]),
                str(scheduler["resyncs"]),
                str(entry["shed_pairs"]),
                str(entry["wrong_answers"]),
                f"{entry['respawn_downtime_ms']:.1f}",
            ]
        )
    text = ascii_table(
        [
            "dataset",
            "kills",
            "failovers",
            "respawns",
            "resyncs",
            "shed pairs",
            "wrong",
            "respawn ms",
        ],
        rows,
        title="Service chaos drill: scripted kills, breaker sheds, "
        f"supervised respawns (k={_K}, {_REPLICAS} replicas)",
    )
    return {
        "experiment": "service-chaos",
        "raw": raw,
        "rows": rows,
        "text": text,
    }
