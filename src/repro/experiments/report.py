"""Plain-text table/series rendering and JSON result persistence."""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Sequence

__all__ = ["ascii_table", "format_series", "save_results", "fmt_ms", "fmt_us"]


def fmt_ms(seconds: float) -> str:
    """Seconds -> milliseconds string (the unit of Tables 2 and Figure 5)."""
    return f"{seconds * 1e3:.3f}"


def fmt_us(seconds: float) -> str:
    """Seconds -> microseconds string (the unit of query-time columns)."""
    return f"{seconds * 1e6:.2f}"


def fmt_bytes(num: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if num < 1024.0:
            return f"{num:.1f} {unit}"
        num /= 1024.0
    return f"{num:.1f} TB"


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render a fixed-width table with a separator under the header."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells[1:]:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    xs: Sequence[object],
    series: dict[str, Sequence[float]],
    y_format=fmt_ms,
) -> str:
    """Render figure data as one row per x value, one column per series."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        row = [x]
        for name in series:
            value = series[name][i]
            row.append(y_format(value) if isinstance(value, float) else value)
        rows.append(row)
    return ascii_table(headers, rows, title=title)


def _jsonable(value):
    if isinstance(value, float) and math.isinf(value):
        return "inf"
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def save_results(payload: dict, path: str | Path) -> None:
    """Persist experiment output as JSON (infinities stringified)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(_jsonable(payload), indent=2))
