"""Experiment harness regenerating every table and figure of the paper.

* :mod:`repro.experiments.workloads` — update batches, weight-multiplier
  sweeps, random and distance-stratified query sets (Section 7 protocol).
* :mod:`repro.experiments.measure` — timing helpers.
* :mod:`repro.experiments.tables` — Figure 1 summary table, Table 1
  (datasets), Table 2 (update times), Table 3 (query/size/construction).
* :mod:`repro.experiments.figures` — Figure 5 (weight sweep), Figure 6
  (distance-stratified queries), Figure 7 (batch scalability).
* :mod:`repro.experiments.service` — serving-layer scenarios: mixed
  traffic replayed through the batched/cached :class:`DistanceService`.
* :mod:`repro.experiments.runner` — the ``repro-experiments`` CLI.
"""

from repro.experiments.context import ExperimentContext
from repro.experiments.report import ascii_table, format_series

__all__ = ["ExperimentContext", "ascii_table", "format_series"]
