"""Timing helpers for the experiment harness."""

from __future__ import annotations

import time
from typing import Callable, Iterable, Sequence

__all__ = ["time_callable", "time_queries", "mean"]


def time_callable(fn: Callable[[], object]) -> float:
    """Wall-clock seconds of one invocation of *fn*."""
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def time_queries(
    distance: Callable[[int, int], float],
    pairs: Sequence[tuple[int, int]],
) -> float:
    """Mean seconds per query over *pairs* (single timing envelope)."""
    if not pairs:
        return 0.0
    start = time.perf_counter()
    for s, t in pairs:
        distance(s, t)
    return (time.perf_counter() - start) / len(pairs)


def mean(values: Iterable[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0
