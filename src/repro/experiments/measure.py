"""Timing helpers for the experiment harness.

Thin wrappers over the canonical :class:`repro.observability.Timer`
primitive so every layer (experiments, benchmarks, the service) times
work through one clock discipline.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.observability.timing import Timer

__all__ = ["time_callable", "time_queries", "mean"]


def time_callable(fn: Callable[[], object]) -> float:
    """Wall-clock seconds of one invocation of *fn*."""
    with Timer() as timer:
        fn()
    return timer.seconds


def time_queries(
    distance: Callable[[int, int], float],
    pairs: Sequence[tuple[int, int]],
) -> float:
    """Mean seconds per query over *pairs* (single timing envelope)."""
    if not pairs:
        return 0.0
    with Timer() as timer:
        for s, t in pairs:
            distance(s, t)
    return timer.seconds / len(pairs)


def mean(values: Iterable[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0
