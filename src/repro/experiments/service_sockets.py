"""Socket-replica serving scenario: TCP shard replicas vs in-process.

Companion to the ``service-workers`` experiment for the remote
transport: the same sharded backend served through
:class:`~repro.service.socket_runtime.SocketShardRuntime` (N TCP
replica processes per shard, round-robin reads, framed runtime
protocol) must produce the identical traffic checksum the in-process
runtime produces, across query/update interleaving — and must keep
producing it through a **failover drill**: halfway through the replay
one replica of every shard is hard-killed, the rest of the traffic
fails over to the surviving siblings, and the combined checksum still
has to match. The scheduler counters certify how it served: inline
``EpochDelta`` broadcasts (not buffer republishes) for updates, and a
non-zero failover count after the drill with zero lost requests.
"""

from __future__ import annotations

from repro.core.config import DHLConfig
from repro.core.sharded import ShardedDHLIndex
from repro.experiments.context import ExperimentContext
from repro.experiments.report import ascii_table
from repro.service.service import DistanceService
from repro.service.socket_runtime import SocketShardRuntime
from repro.service.workload import commute_traffic, replay, uniform_traffic

__all__ = ["service_sockets_scenarios"]

_K = 4
_REPLICAS = 2


def _make_events(name: str, graph, sharded, seed: int):
    if name == "uniform":
        return uniform_traffic(graph, query_batches=12, batch_size=200, seed=seed)
    return commute_traffic(
        graph,
        sharded.region_of,
        boundary=sharded.partition.boundary,
        query_batches=12,
        batch_size=200,
        seed=seed,
    )


def _checksum(*reports) -> float:
    return round(sum(r.distance_checksum for r in reports), 6)


def service_sockets_scenarios(ctx: ExperimentContext) -> dict:
    """Replay traffic through the socket-replica runtime, drill failover."""
    rows = []
    raw: dict[str, dict] = {}
    config = DHLConfig(seed=ctx.seed)
    for name in ctx.datasets:
        graph = ctx.graph(name)
        sharded = ShardedDHLIndex.build(
            graph.copy(), k=_K, config=config, build_workers=ctx.workers
        )
        raw[name] = {}
        for scenario in ("uniform", "commute"):
            events = list(_make_events(scenario, graph, sharded, ctx.seed))
            half = len(events) // 2
            # Reference: the in-process runtime over the same split.
            with DistanceService(sharded) as service:
                ref = _checksum(
                    replay(service, events[:half]),
                    replay(service, events[half:]),
                )
            entry: dict = {}
            with DistanceService(
                SocketShardRuntime(sharded, replicas=_REPLICAS)
            ) as service:
                first = replay(service, events[:half])
                # Failover drill: hard-kill one replica of every shard
                # mid-replay; the rest of the traffic must fail over
                # without losing (or mis-answering) a single request.
                runtime = service.runtime
                for sid in range(sharded.k):
                    victim = runtime._groups[sid][0]
                    victim.process.terminate()
                    victim.process.join(10)
                second = replay(service, events[half:])
                got = _checksum(first, second)
                stats = service.stats()
                q = stats.query_latency
                scheduler = runtime.stats.as_dict()
                entry = {
                    "backend": stats.backend,
                    "queries_per_second": second.queries_per_second,
                    "p50_ms": q.p50_seconds * 1e3,
                    "p95_ms": q.p95_seconds * 1e3,
                    "checksum": got,
                    "checksum_in_process": ref,
                    "scheduler": scheduler,
                    "survivors": [
                        len(runtime.alive_replicas(sid))
                        for sid in range(sharded.k)
                    ],
                }
                if ctx.metrics_out is not None:
                    service.dump_metrics(ctx.metrics_out)
            raw[name][scenario] = entry
            if got != ref:
                raise AssertionError(
                    f"{name}/{scenario}: socket runtime disagrees with the "
                    f"in-process checksum after the replica kill: "
                    f"{got} != {ref}"
                )
            if scheduler["failovers"] < 1:
                raise AssertionError(
                    f"{name}/{scenario}: the replica kill never triggered a "
                    f"failover — the drill did not exercise the path"
                )
            if scenario == "commute" and scheduler["delta_syncs"] < 1:
                raise AssertionError(
                    f"{name}/commute: updates never rode the inline delta "
                    f"broadcast: {scheduler}"
                )
            rows.append(
                [
                    name,
                    scenario,
                    f"{entry['queries_per_second']:,.0f}",
                    f"{entry['p50_ms']:.3f}",
                    f"{entry['p95_ms']:.3f}",
                    str(scheduler["failovers"]),
                    str(scheduler["delta_syncs"]),
                ]
            )
    text = ascii_table(
        [
            "dataset",
            "scenario",
            "q/s (post-kill)",
            "p50 ms",
            "p95 ms",
            "failovers",
            "delta syncs",
        ],
        rows,
        title="Socket shard replicas: checksum parity through a mid-replay "
        f"replica kill (k={_K}, {_REPLICAS} replicas)",
    )
    return {"experiment": "service-sockets", "raw": raw, "rows": rows, "text": text}
