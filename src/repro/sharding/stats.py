"""Maintenance accounting for the sharded index.

A sharded update fans out into independent per-shard maintenance passes
plus one overlay pass; serving code (the epoch-guarded cache, the
benchmarks' update-isolation evidence) needs both the aggregate view —
the same counters a monolithic :class:`MaintenanceStats` exposes — and
the per-shard breakdown showing which shards actually did work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.labelling.maintenance import MaintenanceStats

__all__ = ["ShardedMaintenanceStats"]


@dataclass
class ShardedMaintenanceStats(MaintenanceStats):
    """Aggregate :class:`MaintenanceStats` plus the per-shard breakdown.

    The inherited counters aggregate over every touched shard and the
    overlay; ``affected_labels`` / ``affected_shortcuts`` are expressed
    in *global* vertex ids. ``per_shard`` maps shard id to that shard's
    own (local-id) stats; ``overlay_stats`` is the overlay pass.
    """

    per_shard: dict[int, MaintenanceStats] = field(default_factory=dict)
    overlay_stats: MaintenanceStats = field(default_factory=MaintenanceStats)

    @property
    def touched_shards(self) -> list[int]:
        """Shards whose index was handed work by this update batch."""
        return sorted(self.per_shard)

    def absorb(self, stats: MaintenanceStats, global_ids) -> None:
        """Fold one component's stats into the aggregate counters.

        ``global_ids`` maps that component's local vertex ids to global
        ids (any indexable sequence / array).
        """
        self.shortcuts_changed += stats.shortcuts_changed
        self.labels_changed += stats.labels_changed
        self.entries_processed += stats.entries_processed
        for (v, w), old in stats.affected_shortcuts.items():
            self.affected_shortcuts[(int(global_ids[v]), int(global_ids[w]))] = old
        for v in stats.affected_labels:
            self.affected_labels.add(int(global_ids[v]))
        for name, seconds in stats.phases.items():
            self.phases[name] = self.phases.get(name, 0.0) + seconds
