"""Partition-parallel shard construction.

Each region subgraph is an independent build — partition, contract,
label — with no shared state, so the k shard indexes are constructed in
a :class:`~concurrent.futures.ProcessPoolExecutor`. The per-shard graphs
are small (roughly ``n / k`` vertices each) and a DHL build's cost grows
superlinearly with graph size, so even the *serial* sum of k small
builds undercuts one monolithic build; the process pool then overlaps
them across cores.

Workers receive ``(subgraph, config)`` and return the built index plus
its wall-clock seconds; results are deterministic either way because
every build is seeded through the config. Pool failures (no usable
process start method, unpicklable environment) degrade to the serial
path with a warning rather than failing the build.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.core.config import DHLConfig
from repro.graph.graph import Graph

__all__ = ["ShardBuildReport", "build_shards"]


@dataclass
class ShardBuildReport:
    """Where the shard-build wall clock went."""

    per_shard_seconds: list[float] = field(default_factory=list)
    total_seconds: float = 0.0
    parallel: bool = False
    workers: int = 1

    @property
    def serial_seconds(self) -> float:
        """Sum of per-shard build times (the no-overlap cost)."""
        return sum(self.per_shard_seconds)


def _build_one(payload: tuple[Graph, DHLConfig]):
    """Pool worker: build one shard index, timing it."""
    from repro.core.index import DHLIndex

    subgraph, config = payload
    start = time.perf_counter()
    index = DHLIndex.build(subgraph, config)
    return index, time.perf_counter() - start


def build_shards(
    subgraphs: list[Graph],
    config: DHLConfig,
    workers: int | None = None,
) -> tuple[list, ShardBuildReport]:
    """Build one DHL index per region subgraph, in parallel when asked.

    ``workers`` caps the process pool (``None``/``1`` builds serially).
    Returns ``(shards, report)`` with shards in subgraph order.
    """
    report = ShardBuildReport(workers=max(1, workers or 1))
    payloads = [(g, config) for g in subgraphs]
    start = time.perf_counter()
    results = None
    if workers and workers > 1 and len(subgraphs) > 1:
        try:
            with ProcessPoolExecutor(
                max_workers=min(workers, len(subgraphs))
            ) as pool:
                results = list(pool.map(_build_one, payloads))
            report.parallel = True
        except Exception as exc:  # pragma: no cover - environment dependent
            warnings.warn(
                f"parallel shard build failed ({exc!r}); building serially",
                RuntimeWarning,
                stacklevel=2,
            )
            results = None
    if results is None:
        results = [_build_one(p) for p in payloads]
    report.total_seconds = time.perf_counter() - start
    shards = [index for index, _ in results]
    report.per_shard_seconds = [seconds for _, seconds in results]
    return shards, report
