"""Boundary overlay: the small graph that stitches region shards together.

The overlay's vertices are the boundary vertices of every region (cut
edge endpoints, renumbered compactly). Its edges are

* the **cut edges** themselves, at their original weights, and
* per region, a **clique** over that region's boundary vertices whose
  edge weights are intra-shard boundary-to-boundary distances (answered
  by the shard's own label store).

Any shortest path decomposes into maximal within-region segments joined
by cut edges; each segment runs between boundary vertices of one region
and is no shorter than that region's shard distance — exactly the
clique edge weight. Overlay distances between boundary vertices
therefore equal true graph distances, which is what the shard-routed
query kernel combines with source/target-to-boundary fans.

Unreachable intra-region pairs keep their clique edge as a *logically
deleted* (infinite-weight) slot: maintenance only ever changes weights,
so a later decrease can resurrect the connection without rebuilding.
"""

from __future__ import annotations

import math

import numpy as np

from repro.graph.graph import Graph

__all__ = ["build_overlay_graph", "clique_refresh_changes"]

OverlayChange = tuple[int, int, float]


def _add_overlay_edge(overlay: Graph, a: int, b: int, w: float) -> None:
    """Insert edge ``(a, b)``; infinite weights become deleted slots."""
    if math.isfinite(w):
        overlay.add_edge(a, b, w)
    else:
        overlay.add_edge(a, b, 0.0)
        overlay.set_weight(a, b, w)


def clique_weights(
    shard, boundary_local: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Intra-shard distances over one region's boundary pairs.

    Returns ``(iu, iv, d)``: index pairs into *boundary_local* (upper
    triangle) and their shard distances, computed in one zero-copy
    batch against the shard's flat label store.
    """
    count = len(boundary_local)
    iu, iv = np.triu_indices(count, k=1)
    if not len(iu):
        return iu, iv, np.empty(0, dtype=np.float64)
    d = shard.engine.distances_arrays(boundary_local[iu], boundary_local[iv])
    return iu, iv, d


def build_overlay_graph(
    shards: list,
    boundary_local: list[np.ndarray],
    boundary_overlay: list[np.ndarray],
    cut_edges: list[tuple[int, int, float]],
    overlay_of: np.ndarray,
    num_overlay_vertices: int,
) -> Graph:
    """Assemble the boundary overlay graph.

    ``boundary_local[i]`` / ``boundary_overlay[i]`` are region *i*'s
    boundary vertices as shard-local and overlay ids (aligned);
    ``overlay_of`` maps global vertex ids to overlay ids (-1 when not a
    boundary vertex).
    """
    overlay = Graph(num_overlay_vertices)
    for u, v, w in cut_edges:
        _add_overlay_edge(overlay, int(overlay_of[u]), int(overlay_of[v]), w)
    for shard, locals_, overlays in zip(shards, boundary_local, boundary_overlay):
        iu, iv, d = clique_weights(shard, locals_)
        for a, b, w in zip(overlays[iu], overlays[iv], d):
            # Cut edges never coincide with clique pairs (their endpoints
            # lie in different regions), so every insert is fresh.
            _add_overlay_edge(overlay, int(a), int(b), float(w))
    return overlay


def clique_refresh_changes(
    shard,
    boundary_local: np.ndarray,
    boundary_overlay: np.ndarray,
    overlay_graph: Graph,
    affected_local: set[int],
) -> list[OverlayChange]:
    """Clique edges whose weight moved after a shard maintenance pass.

    A boundary-to-boundary distance ``d(a, b)`` is a pure function of
    the two labels ``L_a`` and ``L_b``, so only pairs with at least one
    endpoint in the pass's ``affected_labels`` can have changed — rows
    whose labels are untouched are skipped without recomputation. Pair
    generation is fully array-native: an ``isin`` membership test marks
    the touched rows, and the touched-cross-all pair set canonicalises
    and deduplicates through one key ``unique``.
    """
    count = len(boundary_local)
    if count < 2 or not affected_local:
        return []
    affected = np.fromiter(affected_local, np.int64, len(affected_local))
    touched = np.nonzero(np.isin(boundary_local, affected))[0]
    if not len(touched):
        return []
    left = np.repeat(touched, count)
    right = np.tile(np.arange(count, dtype=np.int64), len(touched))
    lo = np.minimum(left, right)
    hi = np.maximum(left, right)
    keys = np.unique(lo[lo != hi] * count + hi[lo != hi])
    ia, ib = keys // count, keys % count
    d = shard.engine.distances_arrays(boundary_local[ia], boundary_local[ib])
    changes: list[OverlayChange] = []
    for ov_a, ov_b, w in zip(
        boundary_overlay[ia].tolist(), boundary_overlay[ib].tolist(), d.tolist()
    ):
        if overlay_graph.weight(ov_a, ov_b) != w:
            changes.append((ov_a, ov_b, w))
    return changes
