"""Region-sharded index machinery.

Splits a road network into k edge-disjoint regions (reusing the
multilevel bisection pipeline via :func:`repro.partition.partition_regions`),
builds one DHL index per region — in parallel across processes — plus a
small overlay index on the boundary-vertex graph, and routes queries
and maintenance between them:

* :mod:`repro.sharding.build` — partition-parallel shard construction;
* :mod:`repro.sharding.overlay` — boundary overlay graph assembly and
  incremental clique-edge refresh after shard maintenance;
* :mod:`repro.sharding.engine` — the vectorised shard-routed query
  kernel (intra-shard fast path, cross-shard min-plus combine);
* :mod:`repro.sharding.stats` — per-shard maintenance accounting.

The user-facing facade is :class:`repro.core.sharded.ShardedDHLIndex`.
"""

from repro.sharding.build import ShardBuildReport, build_shards
from repro.sharding.engine import ShardedQueryEngine
from repro.sharding.overlay import build_overlay_graph, clique_refresh_changes
from repro.sharding.stats import ShardedMaintenanceStats

__all__ = [
    "ShardBuildReport",
    "build_shards",
    "ShardedQueryEngine",
    "build_overlay_graph",
    "clique_refresh_changes",
    "ShardedMaintenanceStats",
]
