"""Shard-routed query kernel for the sharded index.

Batch pairs are grouped by ``(source region, target region)``:

* **intra-shard** groups go straight to the owning shard's zero-copy
  flat-store kernel;
* **every** group additionally considers the boundary route — the
  min-plus combine ``min over (b1, b2)`` of
  ``d_shard(s, b1) + d_overlay(b1, b2) + d_shard(b2, t)`` — because a
  shortest path may leave and re-enter a region. Source/target fans are
  answered by the shards' batch kernel (duplicated endpoints computed
  once), and the overlay boundary-to-boundary block is a per-region-pair
  matrix cached until the overlay's maintenance epoch moves.

For cross-region pairs the intra-shard term is skipped (no such path
exists); for regions without boundary vertices (k = 1, or an isolated
region) the boundary route is skipped.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "ShardedQueryEngine",
    "boundary_fan",
    "min_plus",
    "min_plus_compact",
    "region_pair_groups",
]

# Cap for the (pairs x |B_i| x |B_j|) min-plus intermediate, in cells.
_MIN_PLUS_CELLS = 4_000_000


def region_pair_groups(rs: np.ndarray, rt: np.ndarray, k: int):
    """Yield ``(idx, i, j)`` position groups by (source, target) region.

    The canonical batch split shared by the in-process engine and the
    worker-pool scheduler: positions are grouped with one stable
    argsort over the composite key, so each group is answered in a few
    vectorised strokes (or becomes one worker sub-batch).
    """
    key = rs * k + rt
    order = np.argsort(key, kind="stable")
    sorted_key = key[order]
    starts = np.flatnonzero(np.r_[True, sorted_key[1:] != sorted_key[:-1]])
    bounds = np.r_[starts, len(sorted_key)]
    for g in range(len(starts)):
        idx = order[bounds[g] : bounds[g + 1]]
        yield idx, int(rs[idx[0]]), int(rt[idx[0]])


def boundary_fan(
    engine,
    sources_local: np.ndarray,
    boundary_local: np.ndarray,
    compact: bool = False,
):
    """Shard distances to the boundary set, one row per source.

    ``engine`` is any query engine exposing ``distances_arrays`` over
    shard-local ids. Duplicate sources (hot endpoints, k-nearest fans)
    collapse to one kernel row each; with ``compact=True`` the
    deduplicated form ``(unique_matrix, inverse)`` is returned instead
    of the expanded ``(len(sources), |B|)`` matrix — what shard worker
    processes ship over the pipe (bytes scale with unique endpoints,
    not raw pair count) and what :func:`min_plus_compact` consumes.
    Module-level so workers can compute fans next to the label buffers.
    """
    uniq, inverse = np.unique(sources_local, return_inverse=True)
    s = np.repeat(uniq, len(boundary_local))
    t = np.tile(boundary_local, len(uniq))
    matrix = engine.distances_arrays(s, t).reshape(len(uniq), len(boundary_local))
    if compact:
        return matrix, inverse
    return matrix[inverse]


def min_plus(ds: np.ndarray, block: np.ndarray, dt: np.ndarray) -> np.ndarray:
    """Row-wise ``min_{a,b} ds[p,a] + block[a,b] + dt[p,b]``.

    The boundary-route combine: ``ds``/``dt`` are source/target fans,
    ``block`` the overlay boundary-to-boundary matrix. Chunked so the
    3-D intermediate stays bounded regardless of batch size.
    """
    count, width_a = ds.shape
    width_b = dt.shape[1]
    out = np.empty(count, dtype=np.float64)
    chunk = max(1, _MIN_PLUS_CELLS // max(1, width_a * width_b))
    for lo in range(0, count, chunk):
        hi = min(lo + chunk, count)
        # Collapse the first hop: tmp[p, b] = min_a ds[p, a] + block[a, b].
        tmp = (ds[lo:hi, :, None] + block[None, :, :]).min(axis=1)
        out[lo:hi] = (tmp + dt[lo:hi]).min(axis=1)
    return out


def min_plus_compact(
    ds: np.ndarray,
    ds_inverse: np.ndarray,
    block: np.ndarray,
    dt: np.ndarray,
    dt_inverse: np.ndarray,
) -> np.ndarray:
    """:func:`min_plus` over deduplicated fans (``compact=True`` form).

    The expensive first hop — ``min_a ds[u, a] + block[a, b]`` — runs
    once per *unique* source instead of once per pair, then the cheap
    second hop gathers through the inverse maps. Bit-identical to
    expanding the fans and calling :func:`min_plus` (same float ops in
    the same order per row).
    """
    unique_count, width_a = ds.shape
    width_b = dt.shape[1]
    tmp = np.empty((unique_count, width_b), dtype=np.float64)
    chunk = max(1, _MIN_PLUS_CELLS // max(1, width_a * width_b))
    for lo in range(0, unique_count, chunk):
        hi = min(lo + chunk, unique_count)
        tmp[lo:hi] = (ds[lo:hi, :, None] + block[None, :, :]).min(axis=1)
    count = len(ds_inverse)
    out = np.empty(count, dtype=np.float64)
    chunk = max(1, _MIN_PLUS_CELLS // max(1, width_b))
    for lo in range(0, count, chunk):
        hi = min(lo + chunk, count)
        out[lo:hi] = (tmp[ds_inverse[lo:hi]] + dt[dt_inverse[lo:hi]]).min(axis=1)
    return out


class ShardedQueryEngine:
    """Distance oracle routing between region shards and the overlay."""

    def __init__(self, owner):
        # ``owner`` is the ShardedDHLIndex; the engine reads its shard
        # list, overlay index and id-mapping arrays but owns no state
        # beyond the overlay block cache.
        self.owner = owner
        self._blocks: dict[tuple[int, int], np.ndarray] = {}
        self._blocks_epoch = -1

    # ------------------------------------------------------------------
    # overlay boundary-to-boundary blocks
    # ------------------------------------------------------------------
    def overlay_block(self, i: int, j: int) -> np.ndarray:
        """``(|B_i|, |B_j|)`` overlay distances, cached per overlay epoch.

        The overlay is undirected, so only the ``i <= j`` orientation is
        computed and stored; the reverse is served as its transpose.
        Public because the worker-pool runtime runs the same min-plus
        combine in the parent over worker-computed fans.
        """
        owner = self.owner
        overlay = owner.overlay
        epoch = overlay.epoch if overlay is not None else 0
        if epoch != self._blocks_epoch:
            self._blocks.clear()
            self._blocks_epoch = epoch
        a, b = (i, j) if i <= j else (j, i)
        block = self._blocks.get((a, b))
        if block is None:
            ba = owner.boundary_overlay[a]
            bb = owner.boundary_overlay[b]
            s = np.repeat(ba, len(bb))
            t = np.tile(bb, len(ba))
            block = overlay.engine.distances_arrays(s, t).reshape(len(ba), len(bb))
            self._blocks[(a, b)] = block
        return block if (a, b) == (i, j) else block.T

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def distances_arrays(self, s: np.ndarray, t: np.ndarray) -> np.ndarray:
        """Batch distances over parallel global-id arrays."""
        owner = self.owner
        s = np.asarray(s, dtype=np.int64)
        t = np.asarray(t, dtype=np.int64)
        if not len(s):
            return np.empty(0, dtype=np.float64)
        region_of = owner.region_of
        local_of = owner.local_of
        rs = region_of[s]
        rt = region_of[t]
        out = np.full(len(s), np.inf, dtype=np.float64)
        # Group pairs by (region_s, region_t); each group is answered in
        # two vectorised strokes (shard kernel + min-plus combine).
        for idx, i, j in region_pair_groups(rs, rt, owner.k):
            s_local = local_of[s[idx]]
            t_local = local_of[t[idx]]
            if i == j:
                best = owner.shards[i].engine.distances_arrays(s_local, t_local)
            else:
                best = np.full(len(idx), np.inf, dtype=np.float64)
            bi = owner.boundary_local[i]
            bj = owner.boundary_local[j]
            if owner.overlay is not None and len(bi) and len(bj):
                ds, ds_inv = boundary_fan(
                    owner.shards[i].engine, s_local, bi, compact=True
                )
                dt, dt_inv = boundary_fan(
                    owner.shards[j].engine, t_local, bj, compact=True
                )
                block = self.overlay_block(i, j)
                best = np.minimum(
                    best, min_plus_compact(ds, ds_inv, block, dt, dt_inv)
                )
            out[idx] = best
        out[s == t] = 0.0
        return out

    def distances(self, pairs: Sequence[tuple[int, int]]) -> np.ndarray:
        """Batch distances for ``(s, t)`` pairs (global ids)."""
        pairs = list(pairs)
        if not pairs:
            return np.empty(0, dtype=np.float64)
        arr = np.asarray(pairs, dtype=np.int64)
        return self.distances_arrays(arr[:, 0], arr[:, 1])

    def distance(self, s: int, t: int) -> float:
        """Exact shortest-path distance (``inf`` when disconnected)."""
        return float(self.distances_arrays(np.array([s]), np.array([t]))[0])

    # ------------------------------------------------------------------
    # hub-compatible surface (service cache integration)
    # ------------------------------------------------------------------
    def distance_with_hub(self, s: int, t: int) -> tuple[float, int]:
        """Distance plus a hub placeholder.

        A sharded distance is not a function of two label arrays alone
        (boundary and overlay labels participate), so no single hub
        vertex certifies it; -1 is returned and the serving layer falls
        back to coarse epoch invalidation.
        """
        return self.distance(s, t), -1

    def distances_with_hubs(
        self, pairs: Sequence[tuple[int, int]]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batch counterpart of :meth:`distance_with_hub` (hubs all -1)."""
        out = self.distances(pairs)
        return out, np.full(len(out), -1, dtype=np.int64)

    def search_space_size(self, s: int, t: int) -> int:
        """Label entries a pair inspects (shard fans + overlay block)."""
        owner = self.owner
        i = int(owner.region_of[s])
        j = int(owner.region_of[t])
        size = 0
        if i == j:
            size += owner.shards[i].engine.search_space_size(
                int(owner.local_of[s]), int(owner.local_of[t])
            )
        size += len(owner.boundary_local[i]) + len(owner.boundary_local[j])
        return size

    def invalidate_blocks(self) -> None:
        """Drop cached overlay blocks (called after overlay maintenance)."""
        self._blocks.clear()
        self._blocks_epoch = -1

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        cached = sum(b.size for b in self._blocks.values())
        return f"ShardedQueryEngine(k={self.owner.k}, cached_block_cells={cached})"
