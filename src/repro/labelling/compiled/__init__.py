"""Optional numba-compiled engine behind ``DHLConfig(engine="compiled")``.

This package owns the capability probe and the JIT warmup for the
compiled kernels:

* :func:`available` — True when numba imported and no kernel has failed
  to compile. The probe is dynamic: a compilation failure at warmup (or
  anywhere later) flips the package to unavailable and every subsequent
  :func:`resolved_engine` call downgrades to the numpy array engine.
* :func:`resolved_engine` — maps a requested engine name to the one
  that will actually run, warning exactly once per process when
  ``"compiled"`` downgrades to ``"array"``.
* :func:`warmup_kernels` — compiles every kernel against a tiny
  two-vertex hierarchy so JIT latency lands at index build/load time,
  never on the serving hot path. Idempotent: the second call returns
  without touching the kernels (asserted by a test). Without numba the
  same toy sweep still runs once through the pure-Python kernels, so
  the warmup wiring is exercised on every environment.

The kernels themselves live in :mod:`repro.labelling.compiled.kernels`
and the drivers (seed phases, stats reconstruction, phase marks) in
:mod:`repro.labelling.compiled.engine`.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.labelling.compiled import kernels
from repro.labelling.compiled.engine import (
    apply_decrease_compiled,
    apply_increase_compiled,
    batch_query_compiled,
    labels_decrease_compiled,
    labels_increase_compiled,
    shortcuts_decrease_compiled,
    shortcuts_increase_compiled,
)

__all__ = [
    "available",
    "resolved_engine",
    "warmup_kernels",
    "apply_decrease_compiled",
    "apply_increase_compiled",
    "batch_query_compiled",
    "labels_decrease_compiled",
    "labels_increase_compiled",
    "shortcuts_decrease_compiled",
    "shortcuts_increase_compiled",
]

_warmed = False
_warmup_runs = 0
_failed = False
_warned_fallback = False


def available() -> bool:
    """True when the compiled engine can actually run."""
    return kernels.NUMBA_AVAILABLE and not _failed


def resolved_engine(requested: str) -> str:
    """The engine that will run for *requested* (compiled may downgrade)."""
    global _warned_fallback
    if requested != "compiled":
        return requested
    if available():
        return "compiled"
    if not _warned_fallback:
        _warned_fallback = True
        reason = (
            "kernel compilation failed"
            if kernels.NUMBA_AVAILABLE
            else "numba is not installed"
        )
        warnings.warn(
            f"DHLConfig(engine='compiled') requested but {reason}; "
            "falling back to the numpy array engine",
            RuntimeWarning,
            stacklevel=3,
        )
    return "array"


def warmup_kernels() -> bool:
    """Compile every kernel on a toy hierarchy; idempotent.

    Returns :func:`available` — False when numba is missing or a kernel
    failed to compile (in which case the one-time fallback warning fires
    on the next :func:`resolved_engine` call instead of crashing the
    build/load path).
    """
    global _warmed, _warmup_runs, _failed
    if not _warmed:
        _warmed = True
        _warmup_runs += 1
        try:
            _exercise_kernels()
        except Exception:
            _failed = True
            if kernels.NUMBA_AVAILABLE:
                warnings.warn(
                    "numba kernel compilation failed during warmup; "
                    "the compiled engine is disabled for this process",
                    RuntimeWarning,
                    stacklevel=2,
                )
    return available()


def _exercise_kernels() -> None:
    """Drive every kernel once over a two-vertex path hierarchy.

    Vertex 1 is the root (rank 1, tau 0), vertex 0 its only child: one
    up shortcut, one down arc, labels ``[d(0,1), 0]`` for 0 and ``[0]``
    for 1. Small enough that compilation dominates, structurally rich
    enough that every loop body executes.
    """
    rank = np.array([0, 1], dtype=np.int64)
    tau = np.array([1, 0], dtype=np.int64)
    indptr = np.array([0, 1, 1], dtype=np.int64)
    indices = np.array([1], dtype=np.int64)
    ranks = rank[indices]
    owners = np.array([0], dtype=np.int64)
    slot_keys = np.array([1], dtype=np.int64)  # 0 * n + rank[1], n = 2
    down_indptr = np.array([0, 0, 1], dtype=np.int64)
    down_indices = np.array([0], dtype=np.int64)
    down_slots = np.array([0], dtype=np.int64)
    offsets = np.array([0, 2, 3], dtype=np.int64)
    seeds = np.array([0], dtype=np.int64)

    weights = np.array([0.5], dtype=np.float64)
    changed = np.ones(1, dtype=np.uint8)
    first_old = np.array([1.0], dtype=np.float64)
    kernels.shortcut_decrease_sweep(
        seeds, weights, indptr, indices, ranks, owners, slot_keys,
        rank, 2, changed, first_old,
    )

    weights = np.array([1.0], dtype=np.float64)
    direct = np.array([2.0], dtype=np.float64)
    changed = np.zeros(1, dtype=np.uint8)
    first_old = np.zeros(1, dtype=np.float64)
    kernels.shortcut_increase_sweep(
        seeds, weights, indptr, indices, ranks, owners, slot_keys,
        down_indptr, down_indices, down_slots, direct, rank, 2,
        changed, first_old,
    )

    weights = np.array([1.0], dtype=np.float64)
    values = np.array([1.0, 0.0, 0.0], dtype=np.float64)
    changed = np.zeros(3, dtype=np.uint8)
    kernels.label_decrease_sweep(
        np.array([2], dtype=np.int64), values, offsets, tau, weights,
        down_indptr, down_indices, down_slots, changed,
    )

    values = np.array([2.0, 0.0, 0.0], dtype=np.float64)
    changed = np.zeros(3, dtype=np.uint8)
    kernels.label_increase_sweep(
        np.array([0], dtype=np.int64), np.array([0], dtype=np.int64),
        values, offsets, tau, weights, indptr, indices,
        down_indptr, down_indices, down_slots, changed,
    )

    s = np.array([0, 0], dtype=np.int64)
    t = np.array([1, 0], dtype=np.int64)
    k = np.array([1, 2], dtype=np.int64)
    out = np.empty(2, dtype=np.float64)
    best = np.empty(2, dtype=np.int64)
    kernels.query_gather(s, t, k, values, offsets, out, best)
