"""Compiled-engine drivers: seed in numpy, sweep in one njit kernel.

Each driver mirrors its array-engine counterpart in
:mod:`repro.labelling.maintenance_kernels` — same seed semantics, same
``MaintenanceStats`` contract, same ``phase()`` observability marks —
but hands the fixpoint sweep to a single compiled loop from
:mod:`repro.labelling.compiled.kernels` instead of per-level numpy
rounds. Changed-shortcut dicts and affected-label sets are rebuilt from
uint8 mark arrays after the sweep, so the hot loop never touches Python
containers.

The increase sweep needs per-slot direct edge weights (the reference
engine calls ``graph.weight`` per pop); the driver materialises them
once into a ``direct`` float64 array (inf where no edge survives) and
caches it on the hierarchy, invalidated through the graph's mutation
counter so interleaving with the reference or array engines stays
correct.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import MaintenanceError
from repro.labelling.compiled import kernels
from repro.labelling.labels import HierarchicalLabelling
from repro.labelling.maintenance import (
    MaintenanceStats,
    ShortcutKey,
    WeightChange,
)
from repro.labelling.maintenance_kernels import (
    _seed_decrease_batch,
    _seed_increase_batch,
)
from repro.observability.phases import phase

__all__ = [
    "shortcuts_decrease_compiled",
    "shortcuts_increase_compiled",
    "labels_decrease_compiled",
    "labels_increase_compiled",
    "apply_decrease_compiled",
    "apply_increase_compiled",
    "batch_query_compiled",
]


class _DirectCache:
    """Per-slot direct edge weights, pinned to a graph mutation version."""

    __slots__ = ("direct", "version")

    def __init__(self, direct: np.ndarray, version: int):
        self.direct = direct
        self.version = version


def _fresh_direct_cache(sc) -> _DirectCache | None:
    """The hierarchy's direct-edge cache, or None if it went stale."""
    cache = getattr(sc, "_direct_cache", None)
    if cache is not None and cache.version != sc.graph.version:
        sc._direct_cache = cache = None
    return cache


def _direct_slot_weights(sc) -> _DirectCache:
    """Build (or reuse) the per-slot direct edge weight array."""
    cache = _fresh_direct_cache(sc)
    if cache is None:
        graph = sc.graph
        csr = sc.csr
        rank = sc.rank
        direct = np.full(csr.num_slots, math.inf, dtype=np.float64)
        edges = list(graph.edges())
        if edges:
            arr = np.asarray([(u, v) for u, v, _ in edges], dtype=np.int64)
            ws = np.asarray([w for _, _, w in edges], dtype=np.float64)
            u, v = arr[:, 0], arr[:, 1]
            flip = rank[u] > rank[v]
            lo = np.where(flip, v, u)
            hi = np.where(flip, u, v)
            direct[csr.slots_of(lo, hi)] = ws
        cache = _DirectCache(direct, graph.version)
        sc._direct_cache = cache
    return cache


def _changed_shortcut_dict(csr, changed, first_old) -> dict[ShortcutKey, float]:
    slots = np.nonzero(changed)[0]
    if not len(slots):
        return {}
    lo = csr.owners[slots].tolist()
    hi = csr.indices[slots].tolist()
    old = first_old[slots].tolist()
    return dict(zip(zip(lo, hi), old))


def shortcuts_decrease_compiled(
    sc, changes: list[WeightChange]
) -> dict[ShortcutKey, float]:
    """Algorithm 2 — numpy seed phase, compiled min-relaxation sweep."""
    graph = sc.graph
    csr = sc.csr
    weights = sc.up_weights
    changed = np.zeros(csr.num_slots, dtype=np.uint8)
    first_old = np.zeros(csr.num_slots, dtype=np.float64)
    cache = _fresh_direct_cache(sc)

    seeds: list[int] = []
    with phase("decrease.seed"):
        for a, b, w_new in changes:
            old_edge = graph.set_weight(a, b, w_new)
            if w_new > old_edge:
                raise MaintenanceError(
                    f"decrease batch contains an increase on edge ({a}, {b})"
                )
            lo, hi = sc.shortcut_key(a, b)
            slot = csr.slot_of(lo, hi)
            if cache is not None:
                cache.direct[slot] = w_new
            if weights[slot] > w_new:
                if not changed[slot]:
                    changed[slot] = 1
                    first_old[slot] = float(weights[slot])
                weights[slot] = w_new
                seeds.append(slot)
    if cache is not None:
        cache.version = graph.version

    if seeds:
        with phase("decrease.relax_round"):
            kernels.shortcut_decrease_sweep(
                np.asarray(seeds, dtype=np.int64),
                weights,
                csr.indptr,
                csr.indices,
                csr.ranks,
                csr.owners,
                csr.slot_keys,
                sc.rank,
                csr.n,
                changed,
                first_old,
            )
    return _changed_shortcut_dict(csr, changed, first_old)


def shortcuts_increase_compiled(
    sc, changes: list[WeightChange]
) -> dict[ShortcutKey, float]:
    """Algorithm 3 — numpy seed phase, compiled recompute sweep."""
    graph = sc.graph
    csr = sc.csr
    weights = sc.up_weights
    cache = _direct_slot_weights(sc)
    changed = np.zeros(csr.num_slots, dtype=np.uint8)
    first_old = np.zeros(csr.num_slots, dtype=np.float64)

    seeds: list[int] = []
    with phase("increase.seed"):
        for a, b, w_new in changes:
            old_edge = graph.set_weight(a, b, w_new)
            if w_new < old_edge:
                raise MaintenanceError(
                    f"increase batch contains a decrease on edge ({a}, {b})"
                )
            lo, hi = sc.shortcut_key(a, b)
            slot = csr.slot_of(lo, hi)
            cache.direct[slot] = w_new
            # Only shortcuts whose weight was realised by this edge can
            # change.
            if weights[slot] == old_edge:
                seeds.append(slot)
    cache.version = graph.version

    if seeds:
        with phase("increase.dependency_layer"):
            kernels.shortcut_increase_sweep(
                np.asarray(seeds, dtype=np.int64),
                weights,
                csr.indptr,
                csr.indices,
                csr.ranks,
                csr.owners,
                csr.slot_keys,
                csr.down_indptr,
                csr.down_indices,
                csr.down_slots,
                cache.direct,
                sc.rank,
                csr.n,
                changed,
                first_old,
            )
    return _changed_shortcut_dict(csr, changed, first_old)


def _affected_label_set(
    labels: HierarchicalLabelling, changed: np.ndarray
) -> tuple[np.ndarray, set[int]]:
    positions = np.nonzero(changed)[0]
    if not len(positions):
        return positions, set()
    verts, _ = labels.entries_of_positions(positions)
    return positions, set(np.unique(verts).tolist())


def labels_decrease_compiled(
    store,
    labels: HierarchicalLabelling,
    affected: dict[ShortcutKey, float],
) -> MaintenanceStats:
    """Algorithm 4 — batched ancestor seed, compiled descendant sweep."""
    labels.ensure_writable()
    stats = MaintenanceStats(
        shortcuts_changed=len(affected), affected_shortcuts=affected
    )
    changed = np.zeros(len(labels.values), dtype=np.uint8)
    if affected:
        with phase("decrease.label_seed"):
            seeded = _seed_decrease_batch(store, labels, affected)
        if len(seeded):
            changed[seeded] = 1
            csr = store.csr
            with phase("decrease.label_sweep"):
                stats.entries_processed = int(
                    kernels.label_decrease_sweep(
                        seeded,
                        labels.values,
                        labels.offsets,
                        store.tau,
                        store.up_weights,
                        csr.down_indptr,
                        csr.down_indices,
                        csr.down_slots,
                        changed,
                    )
                )
    positions, stats.affected_labels = _affected_label_set(labels, changed)
    stats.labels_changed = int(len(positions))
    return stats


def labels_increase_compiled(
    store,
    labels: HierarchicalLabelling,
    affected: dict[ShortcutKey, float],
) -> MaintenanceStats:
    """Algorithm 5 — batched suspect seed, compiled recompute sweep."""
    labels.ensure_writable()
    stats = MaintenanceStats(
        shortcuts_changed=len(affected), affected_shortcuts=affected
    )
    if affected:
        with phase("increase.label_seed"):
            verts, cols = _seed_increase_batch(store, labels, affected)
        if len(verts):
            changed = np.zeros(len(labels.values), dtype=np.uint8)
            csr = store.csr
            with phase("increase.label_sweep"):
                pops, increased = kernels.label_increase_sweep(
                    verts,
                    cols,
                    labels.values,
                    labels.offsets,
                    store.tau,
                    store.up_weights,
                    csr.indptr,
                    csr.indices,
                    csr.down_indptr,
                    csr.down_indices,
                    csr.down_slots,
                    changed,
                )
            stats.entries_processed = int(pops)
            stats.labels_changed = int(increased)
            _, stats.affected_labels = _affected_label_set(labels, changed)
    return stats


def apply_decrease_compiled(
    hu,
    labels: HierarchicalLabelling,
    changes: list[WeightChange],
) -> MaintenanceStats:
    """Full compiled-engine DHL- update: Algorithm 2 then Algorithm 4."""
    affected = shortcuts_decrease_compiled(hu, changes)
    return labels_decrease_compiled(hu, labels, affected)


def apply_increase_compiled(
    hu,
    labels: HierarchicalLabelling,
    changes: list[WeightChange],
) -> MaintenanceStats:
    """Full compiled-engine DHL+ update: Algorithm 3 then Algorithm 5."""
    affected = shortcuts_increase_compiled(hu, changes)
    return labels_increase_compiled(hu, labels, affected)


def batch_query_compiled(
    values: np.ndarray,
    offsets: np.ndarray,
    s: np.ndarray,
    t: np.ndarray,
    k: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Fused batch gather; returns ``(distances, argmin columns)``.

    ``best`` columns are −1 for same-vertex and unreachable pairs,
    matching the numpy kernel's hub contract.
    """
    out = np.empty(len(s), dtype=np.float64)
    best = np.empty(len(s), dtype=np.int64)
    kernels.query_gather(
        np.ascontiguousarray(s, dtype=np.int64),
        np.ascontiguousarray(t, dtype=np.int64),
        np.ascontiguousarray(k, dtype=np.int64),
        values,
        offsets,
        out,
        best,
    )
    return out, best
