"""Numba-compiled scalar kernels over the flat CSR buffers.

Each kernel is the scalar fixpoint sweep the frontier-batched numpy
engine solves with per-level reductions — but running as one compiled
loop over the raw ``up_weights`` / down-CSR / flat-label buffers, with
an array-backed binary min-heap replacing :class:`LazyHeap`. The heap
keeps the lazy-push semantics of the reference engine (an ``in_queue``
flag per item: pushes of queued items are dropped, items re-enter after
their pop), and every relaxation carries the same strict-improvement or
exact-equality guards, so the compiled sweeps converge to bit-identical
weights and labels.

When numba is missing the module still imports: ``njit`` degrades to an
identity decorator and every kernel runs as plain Python. That keeps
the differential tests meaningful on numba-less machines — the kernel
*logic* is exercised either way; only the speed differs — and lets the
capability probe in :mod:`repro.labelling.compiled` decide at runtime
whether ``engine="compiled"`` is honoured or downgraded.

Changed-entry tracking stays out of the hot loop: callers pass ``changed``
(uint8) and ``first_old`` (float64) mark arrays sized like the weight or
value buffer; kernels set the mark and record the pre-batch value on the
first write, and the Python drivers rebuild the ``affected_shortcuts``
dict / ``affected_labels`` set from the marks afterwards.
"""

from __future__ import annotations

import math

import numpy as np

try:  # pragma: no cover - exercised on the numba CI leg
    from numba import njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - default in the bare environment
    NUMBA_AVAILABLE = False

    def njit(*args, **kwargs):
        """Identity decorator standing in for :func:`numba.njit`."""
        if args and callable(args[0]):
            return args[0]

        def wrap(func):
            return func

        return wrap


@njit(cache=True)
def _heap_push(keys, items, size, key, item):
    """Sift ``(key, item)`` into the binary min-heap; returns new size."""
    i = size
    keys[i] = key
    items[i] = item
    while i > 0:
        parent = (i - 1) >> 1
        if keys[parent] <= keys[i]:
            break
        tk = keys[parent]
        keys[parent] = keys[i]
        keys[i] = tk
        ti = items[parent]
        items[parent] = items[i]
        items[i] = ti
        i = parent
    return size + 1


@njit(cache=True)
def _heap_pop(keys, items, size):
    """Pop the min item; returns ``(item, new_size)``."""
    item = items[0]
    size -= 1
    if size > 0:
        keys[0] = keys[size]
        items[0] = items[size]
        i = 0
        while True:
            left = 2 * i + 1
            if left >= size:
                break
            child = left
            right = left + 1
            if right < size and keys[right] < keys[left]:
                child = right
            if keys[i] <= keys[child]:
                break
            tk = keys[i]
            keys[i] = keys[child]
            keys[child] = tk
            ti = items[i]
            items[i] = items[child]
            items[child] = ti
            i = child
    return item, size


@njit(cache=True)
def _vertex_of(offsets, pos):
    """Vertex owning flat label position ``pos`` (capacity offsets)."""
    lo = 0
    hi = offsets.shape[0] - 1
    while hi - lo > 1:
        mid = (lo + hi) >> 1
        if offsets[mid] <= pos:
            lo = mid
        else:
            hi = mid
    return lo


@njit(cache=True)
def _find_slot(slot_keys, key):
    """Index of ``key`` in the sorted ``slot_keys`` (leftmost match)."""
    lo = 0
    hi = slot_keys.shape[0]
    while lo < hi:
        mid = (lo + hi) >> 1
        if slot_keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


@njit(cache=True)
def shortcut_decrease_sweep(
    seeds,
    weights,
    indptr,
    indices,
    ranks,
    owners,
    slot_keys,
    rank,
    n,
    changed,
    first_old,
):
    """Algorithm 2 fixpoint: chaotic min-relaxation, deepest owner first.

    Seeds are slots already lowered (and pre-marked) by the driver. Each
    pop relaxes every triangle through the owner's up-row; strictly
    improved targets are marked, lowered, and queued. Because pushes go
    strictly shallower than the popping owner, every slot pops at most
    once. Returns the number of pops.
    """
    num_slots = weights.shape[0]
    heap_keys = np.empty(num_slots, np.int64)
    heap_items = np.empty(num_slots, np.int64)
    in_queue = np.zeros(num_slots, np.uint8)
    size = 0
    for i in range(seeds.shape[0]):
        slot = seeds[i]
        if in_queue[slot] == 0:
            in_queue[slot] = 1
            size = _heap_push(
                heap_keys, heap_items, size, rank[owners[slot]], slot
            )
    pops = 0
    while size > 0:
        slot, size = _heap_pop(heap_keys, heap_items, size)
        in_queue[slot] = 0
        pops += 1
        v = owners[slot]
        w_vw = weights[slot]
        ra = ranks[slot]
        a = indices[slot]
        for leg in range(indptr[v], indptr[v + 1]):
            if leg == slot:
                continue
            cand = w_vw + weights[leg]
            rb = ranks[leg]
            if ra < rb:
                key = a * n + rb
            else:
                key = indices[leg] * n + ra
            tslot = _find_slot(slot_keys, key)
            # A compacted store may have dropped the target pair (it was
            # inf). Such a candidate is necessarily inf itself on the
            # weight-maintenance paths this kernel serves (insertion
            # sweeps run on the guarded array kernel), so skipping it is
            # exact — the check also keeps the probe in bounds.
            if tslot >= num_slots or slot_keys[tslot] != key:
                continue
            if weights[tslot] > cand:
                if changed[tslot] == 0:
                    changed[tslot] = 1
                    first_old[tslot] = weights[tslot]
                weights[tslot] = cand
                if in_queue[tslot] == 0:
                    in_queue[tslot] = 1
                    size = _heap_push(
                        heap_keys,
                        heap_items,
                        size,
                        rank[owners[tslot]],
                        tslot,
                    )
    return pops


@njit(cache=True)
def shortcut_increase_sweep(
    seeds,
    weights,
    indptr,
    indices,
    ranks,
    owners,
    slot_keys,
    down_indptr,
    down_indices,
    down_slots,
    direct,
    rank,
    n,
    changed,
    first_old,
):
    """Algorithm 3 fixpoint: recompute suspects, deepest owner first.

    A popped slot ``(v, w)`` is recomputed as the min of its direct edge
    weight (the ``direct`` per-slot cache, inf where no edge) and every
    common down-triangle — the down rows are vertex-sorted, so a
    two-pointer intersection walks them. When the weight moves, every
    shallower pair whose old chained value matched is re-queued (the
    exact-equality guard of the reference engine). Returns pop count.
    """
    num_slots = weights.shape[0]
    heap_keys = np.empty(num_slots, np.int64)
    heap_items = np.empty(num_slots, np.int64)
    in_queue = np.zeros(num_slots, np.uint8)
    size = 0
    for i in range(seeds.shape[0]):
        slot = seeds[i]
        if in_queue[slot] == 0:
            in_queue[slot] = 1
            size = _heap_push(
                heap_keys, heap_items, size, rank[owners[slot]], slot
            )
    pops = 0
    while size > 0:
        slot, size = _heap_pop(heap_keys, heap_items, size)
        in_queue[slot] = 0
        pops += 1
        v = owners[slot]
        w = indices[slot]
        w_new = direct[slot]
        pa = down_indptr[v]
        ea = down_indptr[v + 1]
        pb = down_indptr[w]
        eb = down_indptr[w + 1]
        while pa < ea and pb < eb:
            xa = down_indices[pa]
            xb = down_indices[pb]
            if xa == xb:
                cand = weights[down_slots[pa]] + weights[down_slots[pb]]
                if cand < w_new:
                    w_new = cand
                pa += 1
                pb += 1
            elif xa < xb:
                pa += 1
            else:
                pb += 1
        old = weights[slot]
        if old != w_new:
            ra = ranks[slot]
            for leg in range(indptr[v], indptr[v + 1]):
                if leg == slot:
                    continue
                rb = ranks[leg]
                if ra < rb:
                    key = w * n + rb
                else:
                    key = indices[leg] * n + ra
                tslot = _find_slot(slot_keys, key)
                # Pairs dropped by compaction were inf — no suspect.
                if tslot >= num_slots or slot_keys[tslot] != key:
                    continue
                if weights[tslot] == old + weights[leg]:
                    if in_queue[tslot] == 0:
                        in_queue[tslot] = 1
                        size = _heap_push(
                            heap_keys,
                            heap_items,
                            size,
                            rank[owners[tslot]],
                            tslot,
                        )
            if changed[slot] == 0:
                changed[slot] = 1
                first_old[slot] = old
            weights[slot] = w_new
    return pops


@njit(cache=True)
def label_decrease_sweep(
    seed_pos,
    values,
    offsets,
    tau,
    weights,
    down_indptr,
    down_indices,
    down_slots,
    changed,
):
    """Algorithm 4 fixpoint: push improved entries down, shallowest first.

    ``seed_pos`` are flat label positions already lowered (and marked)
    by the driver's batched seed phase. Each pop relaxes the entry along
    every down shortcut of its vertex into the same ancestor column;
    strict improvements are written, marked, and queued with key
    ``tau``. Returns the number of entries popped.
    """
    cap = values.shape[0]
    heap_keys = np.empty(cap, np.int64)
    heap_items = np.empty(cap, np.int64)
    in_queue = np.zeros(cap, np.uint8)
    size = 0
    for i in range(seed_pos.shape[0]):
        pos = seed_pos[i]
        if in_queue[pos] == 0:
            in_queue[pos] = 1
            size = _heap_push(
                heap_keys, heap_items, size, tau[_vertex_of(offsets, pos)], pos
            )
    pops = 0
    while size > 0:
        pos, size = _heap_pop(heap_keys, heap_items, size)
        in_queue[pos] = 0
        pops += 1
        v = _vertex_of(offsets, pos)
        col = pos - offsets[v]
        value = values[pos]
        for didx in range(down_indptr[v], down_indptr[v + 1]):
            u = down_indices[didx]
            cand = weights[down_slots[didx]] + value
            tpos = offsets[u] + col
            if cand < values[tpos]:
                values[tpos] = cand
                changed[tpos] = 1
                if in_queue[tpos] == 0:
                    in_queue[tpos] = 1
                    size = _heap_push(
                        heap_keys, heap_items, size, tau[u], tpos
                    )
    return pops


@njit(cache=True)
def label_increase_sweep(
    seed_verts,
    seed_cols,
    values,
    offsets,
    tau,
    weights,
    indptr,
    indices,
    down_indptr,
    down_indices,
    down_slots,
    changed,
):
    """Algorithm 5 fixpoint: recompute suspect entries, shallowest first.

    Each popped entry ``(v, col)`` is recomputed per Property 3.1 — the
    min over up shortcuts into ancestors at least ``col`` deep. If the
    value rose, down entries whose old chained value matched are queued
    (exact-equality guard); any change is marked. Returns
    ``(pops, increased)`` where ``increased`` counts entries whose
    recomputed value strictly rose — the reference engine's
    ``labels_changed``.
    """
    cap = values.shape[0]
    heap_keys = np.empty(cap, np.int64)
    heap_items = np.empty(cap, np.int64)
    in_queue = np.zeros(cap, np.uint8)
    size = 0
    for i in range(seed_verts.shape[0]):
        pos = offsets[seed_verts[i]] + seed_cols[i]
        if in_queue[pos] == 0:
            in_queue[pos] = 1
            size = _heap_push(
                heap_keys, heap_items, size, tau[seed_verts[i]], pos
            )
    pops = 0
    increased = 0
    while size > 0:
        pos, size = _heap_pop(heap_keys, heap_items, size)
        in_queue[pos] = 0
        pops += 1
        v = _vertex_of(offsets, pos)
        col = pos - offsets[v]
        w_new = math.inf
        for slot in range(indptr[v], indptr[v + 1]):
            w = indices[slot]
            if tau[w] >= col:
                cand = weights[slot] + values[offsets[w] + col]
                if cand < w_new:
                    w_new = cand
        old = values[pos]
        if w_new > old:
            for didx in range(down_indptr[v], down_indptr[v + 1]):
                u = down_indices[didx]
                tpos = offsets[u] + col
                if weights[down_slots[didx]] + old == values[tpos]:
                    if in_queue[tpos] == 0:
                        in_queue[tpos] = 1
                        size = _heap_push(
                            heap_keys, heap_items, size, tau[u], tpos
                        )
            increased += 1
        if w_new != old:
            changed[pos] = 1
        values[pos] = w_new
    return pops, increased


@njit(cache=True)
def query_gather(s, t, k, values, offsets, out, best):
    """Batch distance gather: per-pair min over the common ancestor run.

    For each pair the first ``k`` label entries of both endpoints are
    summed and minimised in one fused loop — no K-bucketed temporaries.
    ``best`` receives the argmin column (−1 for same-vertex pairs and
    unreachable results), matching the numpy kernel's hub contract.
    """
    for idx in range(s.shape[0]):
        si = s[idx]
        ti = t[idx]
        if si == ti:
            out[idx] = 0.0
            best[idx] = -1
            continue
        kk = k[idx]
        if kk <= 0:
            out[idx] = math.inf
            best[idx] = -1
            continue
        off_s = offsets[si]
        off_t = offsets[ti]
        bv = values[off_s] + values[off_t]
        bi = 0
        for j in range(1, kk):
            c = values[off_s + j] + values[off_t + j]
            if c < bv:
                bv = c
                bi = j
        out[idx] = bv
        if bv == math.inf:
            best[idx] = -1
        else:
            best[idx] = bi
