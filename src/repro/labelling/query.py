"""Distance queries over (H_Q, L) — Section 4.3 of the paper.

A query computes the number ``K`` of common ancestors of ``s`` and ``t``
in O(1) via partition bitstrings, then takes the minimum of
``L_s[i] + L_t[i]`` over ``i < K`` as one vectorised numpy reduction.
Correctness is the restricted 2-hop cover property (Lemma 6.6): some
common ancestor ``r`` lies on a shortest path, and for it both label
entries are distances within the subgraph induced by ``desc(r)``, which
contains that path.

Batch queries go through a second, matrix-shaped path: the ragged label
arrays are padded once into a contiguous ``(n, h)`` float64 matrix and a
batch of pairs is answered with two gathers, one add and one masked
row-min — no Python-level loop over pairs. The matrix is kept in sync
with maintenance via :meth:`QueryEngine.notify_labels_changed`, which
re-pads only the rows whose labels actually changed.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.hierarchy.query_hierarchy import QueryHierarchy
from repro.labelling.labels import HierarchicalLabelling

__all__ = ["QueryEngine"]

# The vectorised LCA kernel packs partition bitstrings into int64 and
# recovers bit lengths through float64 mantissas (np.frexp), both exact
# only while ``depth + 1 <= 52``. Deeper hierarchies (which would need a
# ludicrously unbalanced partition tree) fall back to the scalar path.
_MAX_VECTOR_DEPTH = 50

# Rows per chunk are sized so one ``(chunk, h)`` sum matrix stays around
# 32 MB regardless of the hierarchy height.
_CHUNK_CELLS = 4_000_000


class _BatchTables:
    """Numpy renditions of H_Q's per-node tables for the batch kernel."""

    __slots__ = ("node_of", "depth", "bits", "chain", "tau")

    def __init__(self, hq: QueryHierarchy):
        self.node_of = np.asarray(hq.node_of, dtype=np.int64)
        self.depth = np.asarray(hq.node_depth, dtype=np.int64)
        self.bits = np.asarray(hq.node_bits, dtype=np.int64)
        self.tau = np.asarray(hq.tau, dtype=np.int64)
        max_depth = int(self.depth.max()) if len(hq.node_depth) else 0
        chain = np.zeros((hq.num_nodes, max_depth + 1), dtype=np.int64)
        for nid, prefix in enumerate(hq.node_vend_chain):
            chain[nid, : len(prefix)] = prefix
        self.chain = chain


class QueryEngine:
    """Binds a query hierarchy and a labelling into a distance oracle."""

    __slots__ = ("hq", "labels", "_arrays", "_tables", "_matrix", "_hub_matrix")

    def __init__(self, hq: QueryHierarchy, labels: HierarchicalLabelling):
        self.hq = hq
        self.labels = labels
        self._arrays = labels.arrays
        self._tables: _BatchTables | None = None
        self._matrix: np.ndarray | None = None
        self._hub_matrix: np.ndarray | None = None

    def distance(self, s: int, t: int) -> float:
        """Exact shortest-path distance between *s* and *t*.

        Returns ``math.inf`` when the vertices are disconnected (including
        separation caused by logically deleted roads).
        """
        if s == t:
            return 0.0
        k = self.hq.common_ancestor_count(s, t)
        if k <= 0:
            return math.inf
        total = self._arrays[s][:k] + self._arrays[t][:k]
        return float(total.min())

    def distance_with_hub(self, s: int, t: int) -> tuple[float, int]:
        """Distance plus the common-ancestor vertex realising it.

        Returns ``(distance, hub_vertex)``; the hub is -1 for ``s == t``
        or disconnected pairs. Used by applications that need a via-vertex
        (e.g. reconstructing a coarse route).
        """
        if s == t:
            return 0.0, -1
        k = self.hq.common_ancestor_count(s, t)
        if k <= 0:
            return math.inf, -1
        total = self._arrays[s][:k] + self._arrays[t][:k]
        i = int(np.argmin(total))
        best = float(total[i])
        if math.isinf(best):
            return math.inf, -1
        return best, self.hq.ancestors(s)[i]

    # ------------------------------------------------------------------
    # vectorised batch path
    # ------------------------------------------------------------------
    def supports_batch_kernel(self) -> bool:
        """Whether the int64/frexp bit tricks are exact for this H_Q."""
        return (not self.hq.node_depth) or max(self.hq.node_depth) <= _MAX_VECTOR_DEPTH

    def _batch_tables(self) -> _BatchTables:
        if self._tables is None:
            self._tables = _BatchTables(self.hq)
        return self._tables

    def label_matrix(self) -> np.ndarray:
        """The labels padded into an inf-filled ``(n, h)`` float64 matrix.

        Built lazily on the first batch query; maintenance keeps it fresh
        through :meth:`notify_labels_changed` instead of re-padding all of
        it per epoch.
        """
        if self._matrix is None:
            n = self.labels.num_vertices
            h = self.hq.height
            matrix = np.full((n, max(1, h)), np.inf, dtype=np.float64)
            for v, row in enumerate(self._arrays):
                matrix[v, : len(row)] = row
            self._matrix = matrix
        return self._matrix

    def hub_matrix(self) -> np.ndarray:
        """``hub_matrix[v, i]`` = the rank-``i`` ancestor of ``v`` (-1 pad).

        Ancestor chains depend only on H_Q, which weight maintenance never
        alters, so this matrix is built once and never invalidated.
        """
        if self._hub_matrix is None:
            n = self.labels.num_vertices
            h = self.hq.height
            hubs = np.full((n, max(1, h)), -1, dtype=np.int64)
            for v in range(n):
                chain = self.hq.ancestors(v)
                hubs[v, : len(chain)] = chain
            self._hub_matrix = hubs
        return self._hub_matrix

    def notify_labels_changed(self, vertices: Iterable[int] | None = None) -> None:
        """Refresh the padded matrix after label maintenance.

        ``vertices`` are the rows to re-pad (``MaintenanceStats.
        affected_labels``); ``None`` drops the whole matrix, forcing a
        rebuild on the next batch query.
        """
        if self._matrix is None:
            return
        if vertices is None:
            self._matrix = None
            return
        matrix = self._matrix
        for v in vertices:
            row = self._arrays[v]
            matrix[v, : len(row)] = row

    def common_ancestor_counts(self, s: np.ndarray, t: np.ndarray) -> np.ndarray:
        """Vectorised ``|anc(s) ∩ anc(t)|`` over pair arrays.

        Mirrors :meth:`QueryHierarchy.common_ancestor_count`: the LCA
        depth comes from xor-ing depth-aligned bitstrings, with
        ``bit_length`` recovered from the float64 exponent (exact below
        2**53, guaranteed by the ``supports_batch_kernel`` gate).
        """
        tables = self._batch_tables()
        ns = tables.node_of[s]
        nt = tables.node_of[t]
        ds = tables.depth[ns]
        dt = tables.depth[nt]
        d = np.minimum(ds, dt)
        diff = (tables.bits[ns] >> (ds - d)) ^ (tables.bits[nt] >> (dt - d))
        shift = np.zeros_like(diff)
        nz = diff != 0
        if nz.any():
            shift[nz] = np.frexp(diff[nz].astype(np.float64))[1]
        lca_depth = d - shift
        vend = tables.chain[ns, lca_depth]
        return np.minimum(np.minimum(tables.tau[s], tables.tau[t]), vend - 1) + 1

    def _batch_kernel(
        self, s: np.ndarray, t: np.ndarray, want_hubs: bool
    ) -> tuple[np.ndarray, np.ndarray | None]:
        matrix = self.label_matrix()
        hubs_table = self.hub_matrix() if want_hubs else None
        k = self.common_ancestor_counts(s, t)
        count = len(s)
        h = matrix.shape[1]
        out = np.empty(count, dtype=np.float64)
        hubs = np.full(count, -1, dtype=np.int64) if want_hubs else None
        columns = np.arange(h, dtype=np.int64)
        chunk = max(1, _CHUNK_CELLS // max(1, h))
        for lo in range(0, count, chunk):
            sl = slice(lo, min(lo + chunk, count))
            sums = matrix[s[sl]] + matrix[t[sl]]
            # Columns at or past k are ancestors of only one endpoint (or
            # padding); masking them to inf makes the row-min range-exact.
            np.copyto(sums, np.inf, where=columns >= k[sl, None])
            if want_hubs:
                best = np.argmin(sums, axis=1)
                out[sl] = sums[np.arange(len(best)), best]
                hubs[sl] = hubs_table[s[sl], best]
            else:
                out[sl] = sums.min(axis=1)
        same = s == t
        if same.any():
            out[same] = 0.0
        if want_hubs:
            hubs[same | np.isinf(out)] = -1
        return out, hubs

    def distances(self, pairs: Sequence[tuple[int, int]]) -> np.ndarray:
        """Batch distances, vectorised over pairs through the label matrix."""
        pairs = list(pairs)
        if not pairs:
            return np.empty(0, dtype=np.float64)
        if not self.supports_batch_kernel():
            out = np.empty(len(pairs), dtype=np.float64)
            distance = self.distance
            for idx, (s, t) in enumerate(pairs):
                out[idx] = distance(s, t)
            return out
        arr = np.asarray(pairs, dtype=np.int64)
        out, _ = self._batch_kernel(arr[:, 0], arr[:, 1], want_hubs=False)
        return out

    def distances_with_hubs(
        self, pairs: Sequence[tuple[int, int]]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batch ``(distances, hubs)``; hub is -1 for self/disconnected pairs."""
        pairs = list(pairs)
        if not pairs:
            return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
        if not self.supports_batch_kernel():
            out = np.empty(len(pairs), dtype=np.float64)
            hubs = np.empty(len(pairs), dtype=np.int64)
            for idx, (s, t) in enumerate(pairs):
                out[idx], hubs[idx] = self.distance_with_hub(s, t)
            return out, hubs
        arr = np.asarray(pairs, dtype=np.int64)
        out, hubs = self._batch_kernel(arr[:, 0], arr[:, 1], want_hubs=True)
        return out, hubs

    def search_space_size(self, s: int, t: int) -> int:
        """Number of label entries inspected for the pair (paper's 'hops')."""
        return 2 * self.hq.common_ancestor_count(s, t)
