"""Distance queries over (H_Q, L) — Section 4.3 of the paper.

A query computes the number ``K`` of common ancestors of ``s`` and ``t``
in O(1) via partition bitstrings, then takes the minimum of
``L_s[i] + L_t[i]`` over ``i < K`` as one vectorised numpy reduction.
Correctness is the restricted 2-hop cover property (Lemma 6.6): some
common ancestor ``r`` lies on a shortest path, and for it both label
entries are distances within the subgraph induced by ``desc(r)``, which
contains that path.
"""

from __future__ import annotations

import math

import numpy as np

from repro.hierarchy.query_hierarchy import QueryHierarchy
from repro.labelling.labels import HierarchicalLabelling

__all__ = ["QueryEngine"]


class QueryEngine:
    """Binds a query hierarchy and a labelling into a distance oracle."""

    __slots__ = ("hq", "labels", "_arrays")

    def __init__(self, hq: QueryHierarchy, labels: HierarchicalLabelling):
        self.hq = hq
        self.labels = labels
        self._arrays = labels.arrays

    def distance(self, s: int, t: int) -> float:
        """Exact shortest-path distance between *s* and *t*.

        Returns ``math.inf`` when the vertices are disconnected (including
        separation caused by logically deleted roads).
        """
        if s == t:
            return 0.0
        k = self.hq.common_ancestor_count(s, t)
        if k <= 0:
            return math.inf
        total = self._arrays[s][:k] + self._arrays[t][:k]
        return float(total.min())

    def distance_with_hub(self, s: int, t: int) -> tuple[float, int]:
        """Distance plus the common-ancestor vertex realising it.

        Returns ``(distance, hub_vertex)``; the hub is -1 for ``s == t``
        or disconnected pairs. Used by applications that need a via-vertex
        (e.g. reconstructing a coarse route).
        """
        if s == t:
            return 0.0, -1
        k = self.hq.common_ancestor_count(s, t)
        if k <= 0:
            return math.inf, -1
        total = self._arrays[s][:k] + self._arrays[t][:k]
        i = int(np.argmin(total))
        best = float(total[i])
        if math.isinf(best):
            return math.inf, -1
        return best, self.hq.ancestors(s)[i]

    def distances(self, pairs: list[tuple[int, int]]) -> np.ndarray:
        """Vectorised-over-pairs batch interface."""
        out = np.empty(len(pairs), dtype=np.float64)
        distance = self.distance
        for idx, (s, t) in enumerate(pairs):
            out[idx] = distance(s, t)
        return out

    def search_space_size(self, s: int, t: int) -> int:
        """Number of label entries inspected for the pair (paper's 'hops')."""
        return 2 * self.hq.common_ancestor_count(s, t)
