"""Distance queries over (H_Q, L) — Section 4.3 of the paper.

A query computes the number ``K`` of common ancestors of ``s`` and ``t``
in O(1) via partition bitstrings, then takes the minimum of
``L_s[i] + L_t[i]`` over ``i < K`` as one vectorised numpy reduction.
Correctness is the restricted 2-hop cover property (Lemma 6.6): some
common ancestor ``r`` lies on a shortest path, and for it both label
entries are distances within the subgraph induced by ``desc(r)``, which
contains that path.

Batch queries gather *directly* from the labelling's flat CSR store: the
entry ``L_v[i]`` lives at ``values[offsets[v] + i]``, so a batch of
pairs is answered with two fancy-indexed gathers, one add and one masked
row-min — no padded label-matrix copy, no Python-level loop over pairs,
and nothing to re-sync after maintenance (the kernel reads the live
buffer that the maintenance algorithms write into).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.hierarchy.query_hierarchy import QueryHierarchy
from repro.labelling.labels import HierarchicalLabelling

__all__ = ["QueryEngine"]

# The vectorised LCA kernel packs partition bitstrings into int64 and
# recovers bit lengths through float64 mantissas (np.frexp), both exact
# only while ``depth + 1 <= 52``. Deeper hierarchies (which would need a
# ludicrously unbalanced partition tree) fall back to the scalar path.
_MAX_VECTOR_DEPTH = 50

# Rows per chunk are sized so one ``(chunk, h)`` sum matrix stays around
# 32 MB regardless of the hierarchy height.
_CHUNK_CELLS = 4_000_000


class _BatchTables:
    """Numpy renditions of H_Q's per-node tables for the batch kernel."""

    __slots__ = ("node_of", "depth", "bits", "chain", "tau")

    def __init__(self, hq: QueryHierarchy):
        self.node_of = np.asarray(hq.node_of, dtype=np.int64)
        self.depth = np.asarray(hq.node_depth, dtype=np.int64)
        self.bits = np.asarray(hq.node_bits, dtype=np.int64)
        self.tau = np.asarray(hq.tau, dtype=np.int64)
        max_depth = int(self.depth.max()) if len(hq.node_depth) else 0
        chain = np.zeros((hq.num_nodes, max_depth + 1), dtype=np.int64)
        for nid, prefix in enumerate(hq.node_vend_chain):
            chain[nid, : len(prefix)] = prefix
        self.chain = chain


class QueryEngine:
    """Binds a query hierarchy and a labelling into a distance oracle.

    ``engine="compiled"`` routes the batch gather through the numba
    kernel of :mod:`repro.labelling.compiled` (one fused per-pair loop,
    no K-bucketed temporaries) when the compiled package is usable;
    any other value — or an unusable compiled package — runs the
    numpy K-bucketed kernel. Constructing a compiled engine triggers
    the JIT warmup so the first query batch never pays compilation.
    """

    __slots__ = (
        "hq",
        "labels",
        "engine",
        "_tables",
        "_hub_values",
        "_hub_offsets",
    )

    def __init__(
        self,
        hq: QueryHierarchy,
        labels: HierarchicalLabelling,
        engine: str = "array",
    ):
        self.hq = hq
        self.labels = labels
        self.engine = engine
        self._tables: _BatchTables | None = None
        self._hub_values: np.ndarray | None = None
        self._hub_offsets: np.ndarray | None = None
        if engine == "compiled":
            from repro.labelling.compiled import warmup_kernels

            warmup_kernels()

    def distance(self, s: int, t: int) -> float:
        """Exact shortest-path distance between *s* and *t*.

        Returns ``math.inf`` when the vertices are disconnected (including
        separation caused by logically deleted roads).
        """
        if s == t:
            return 0.0
        k = self.hq.common_ancestor_count(s, t)
        if k <= 0:
            return math.inf
        labels = self.labels
        total = labels.view(s)[:k] + labels.view(t)[:k]
        return float(total.min())

    def distance_with_hub(self, s: int, t: int) -> tuple[float, int]:
        """Distance plus the common-ancestor vertex realising it.

        Returns ``(distance, hub_vertex)``; the hub is -1 for ``s == t``
        or disconnected pairs. Used by applications that need a via-vertex
        (e.g. reconstructing a coarse route).
        """
        if s == t:
            return 0.0, -1
        k = self.hq.common_ancestor_count(s, t)
        if k <= 0:
            return math.inf, -1
        labels = self.labels
        total = labels.view(s)[:k] + labels.view(t)[:k]
        i = int(np.argmin(total))
        best = float(total[i])
        if math.isinf(best):
            return math.inf, -1
        return best, self.hq.ancestors(s)[i]

    # ------------------------------------------------------------------
    # vectorised batch path
    # ------------------------------------------------------------------
    def supports_batch_kernel(self) -> bool:
        """Whether the int64/frexp bit tricks are exact for this H_Q."""
        return (not self.hq.node_depth) or max(self.hq.node_depth) <= _MAX_VECTOR_DEPTH

    def _batch_tables(self) -> _BatchTables:
        if self._tables is None:
            self._tables = _BatchTables(self.hq)
        return self._tables

    def hub_store(self) -> tuple[np.ndarray, np.ndarray]:
        """Flat ancestor-chain store: ``(hub_values, hub_offsets)``.

        ``hub_values[hub_offsets[v] + i]`` is the rank-``i`` ancestor of
        ``v`` — the same CSR shape as the labelling, but with its own
        packed offsets (label slots may carry slack). Ancestor chains
        depend only on H_Q, which weight maintenance never alters, so the
        store is built once and never invalidated.
        """
        if self._hub_values is None:
            hq = self.hq
            tau = np.asarray(hq.tau, dtype=np.int64)
            offsets = np.zeros(len(tau) + 1, dtype=np.int64)
            np.cumsum(tau + 1, out=offsets[1:])
            hubs = np.full(int(offsets[-1]), -1, dtype=np.int64)
            for v in range(len(tau)):
                chain = hq.ancestors(v)
                hubs[offsets[v] : offsets[v] + len(chain)] = chain
            self._hub_values = hubs
            self._hub_offsets = offsets
        return self._hub_values, self._hub_offsets

    def common_ancestor_counts(self, s: np.ndarray, t: np.ndarray) -> np.ndarray:
        """Vectorised ``|anc(s) ∩ anc(t)|`` over pair arrays.

        Mirrors :meth:`QueryHierarchy.common_ancestor_count`: the LCA
        depth comes from xor-ing depth-aligned bitstrings, with
        ``bit_length`` recovered from the float64 exponent (exact below
        2**53, guaranteed by the ``supports_batch_kernel`` gate).
        """
        tables = self._batch_tables()
        ns = tables.node_of[s]
        nt = tables.node_of[t]
        ds = tables.depth[ns]
        dt = tables.depth[nt]
        d = np.minimum(ds, dt)
        diff = (tables.bits[ns] >> (ds - d)) ^ (tables.bits[nt] >> (dt - d))
        shift = np.zeros_like(diff)
        nz = diff != 0
        if nz.any():
            shift[nz] = np.frexp(diff[nz].astype(np.float64))[1]
        lca_depth = d - shift
        vend = tables.chain[ns, lca_depth]
        return np.minimum(np.minimum(tables.tau[s], tables.tau[t]), vend - 1) + 1

    def _batch_kernel(
        self, s: np.ndarray, t: np.ndarray, want_hubs: bool
    ) -> tuple[np.ndarray, np.ndarray | None]:
        labels = self.labels
        values = labels.values
        starts = labels.offsets
        last = len(values) - 1
        k = self.common_ancestor_counts(s, t)
        if self.engine == "compiled":
            import repro.labelling.compiled as compiled

            if compiled.available():
                return self._compiled_kernel(s, t, k, want_hubs)
        count = len(s)
        out = np.empty(count, dtype=np.float64)
        hubs = np.full(count, -1, dtype=np.int64) if want_hubs else None
        if want_hubs:
            hub_values, hub_offsets = self.hub_store()
        # Pairs are bucketed by K into power-of-two gather widths: on
        # road hierarchies the mean K is far below the maximum, so most
        # pairs are answered through a narrow gather instead of paying
        # for the global worst case — a rectangular label matrix cannot
        # make this move, the CSR store gets it for free.
        order = np.argsort(k, kind="stable")
        ks = k[order]
        lo = 0
        width = 1
        while lo < count:
            while width < ks[lo]:
                width *= 2
            hi = int(np.searchsorted(ks, width, side="right"))
            columns = np.arange(width, dtype=np.int64)
            chunk = max(1, _CHUNK_CELLS // width)
            for seg_lo in range(lo, hi, chunk):
                seg = order[seg_lo : min(seg_lo + chunk, hi)]
                kc = ks[seg_lo : min(seg_lo + chunk, hi)]
                # L_v[i] sits at values[offsets[v] + i]; columns < K are
                # always within v's label because K <= min(tau) + 1.
                # Columns past K may land in a neighbouring slot (or past
                # the buffer, hence the clip) — they are masked to inf
                # before the row-min.
                pos_s = np.minimum(starts[s[seg], None] + columns, last)
                pos_t = np.minimum(starts[t[seg], None] + columns, last)
                sums = values[pos_s] + values[pos_t]
                np.copyto(sums, np.inf, where=columns >= kc[:, None])
                if want_hubs:
                    best = np.argmin(sums, axis=1)
                    out[seg] = sums[np.arange(len(best)), best]
                    hubs[seg] = hub_values[hub_offsets[s[seg]] + best]
                else:
                    out[seg] = sums.min(axis=1)
            lo = hi
            width *= 2
        same = s == t
        if same.any():
            out[same] = 0.0
        if want_hubs:
            hubs[same | np.isinf(out)] = -1
        return out, hubs

    def _compiled_kernel(
        self, s: np.ndarray, t: np.ndarray, k: np.ndarray, want_hubs: bool
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Fused per-pair gather through the numba kernel.

        The common-ancestor counts stay in the numpy bitstring kernel
        (already one vectorised pass); only the gather+min loop — where
        the K-bucketed numpy path pays its temporaries — is compiled.
        """
        from repro.labelling.compiled import batch_query_compiled

        labels = self.labels
        out, best = batch_query_compiled(labels.values, labels.offsets, s, t, k)
        if not want_hubs:
            return out, None
        hub_values, hub_offsets = self.hub_store()
        hubs = np.full(len(s), -1, dtype=np.int64)
        hit = best >= 0
        if hit.any():
            hubs[hit] = hub_values[hub_offsets[s[hit]] + best[hit]]
        return out, hubs

    def distances(self, pairs: Sequence[tuple[int, int]]) -> np.ndarray:
        """Batch distances, gathered straight from the flat label store."""
        pairs = list(pairs)
        if not pairs:
            return np.empty(0, dtype=np.float64)
        arr = np.asarray(pairs, dtype=np.int64)
        return self.distances_arrays(arr[:, 0], arr[:, 1])

    def distances_arrays(self, s: np.ndarray, t: np.ndarray) -> np.ndarray:
        """Batch distances over parallel source/target id arrays.

        The array-native entry point to the zero-copy kernel: callers
        that already hold vertex ids as numpy arrays (the sharded
        engine's source-to-boundary fans, bulk matrix fills) skip the
        pair-list round trip entirely.
        """
        s = np.asarray(s, dtype=np.int64)
        t = np.asarray(t, dtype=np.int64)
        if len(s) != len(t):
            raise ValueError(f"length mismatch: {len(s)} sources, {len(t)} targets")
        if not len(s):
            return np.empty(0, dtype=np.float64)
        if not self.supports_batch_kernel():
            out = np.empty(len(s), dtype=np.float64)
            distance = self.distance
            for idx in range(len(s)):
                out[idx] = distance(int(s[idx]), int(t[idx]))
            return out
        out, _ = self._batch_kernel(s, t, want_hubs=False)
        return out

    def distances_with_hubs(
        self, pairs: Sequence[tuple[int, int]]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batch ``(distances, hubs)``; hub is -1 for self/disconnected pairs."""
        pairs = list(pairs)
        if not pairs:
            return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
        if not self.supports_batch_kernel():
            out = np.empty(len(pairs), dtype=np.float64)
            hubs = np.empty(len(pairs), dtype=np.int64)
            for idx, (s, t) in enumerate(pairs):
                out[idx], hubs[idx] = self.distance_with_hub(s, t)
            return out, hubs
        arr = np.asarray(pairs, dtype=np.int64)
        out, hubs = self._batch_kernel(arr[:, 0], arr[:, 1], want_hubs=True)
        return out, hubs

    def search_space_size(self, s: int, t: int) -> int:
        """Number of label entries inspected for the pair (paper's 'hops')."""
        return 2 * self.hq.common_ancestor_count(s, t)
