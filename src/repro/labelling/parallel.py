"""Parallel label maintenance — Algorithms 6 and 7 of the paper.

The descendant phase of Algorithms 4/5 partitions cleanly by ancestor
column ``i``: every queue entry generated while processing ``(v, i)`` is
again ``(*, i)``, and with the paper's substitution of the shortcut weight
``w(u, v)`` for the label entry ``L_u[v]`` in the relaxation, each column
touches only its own label slots. Columns are therefore processed
independently — sequentially (deterministic, default) or on a thread pool
(the paper uses 28 hardware threads; CPython's GIL limits the speed-up
here, which EXPERIMENTS.md discusses).

The shortcut phase (Algorithms 2/3) is sequential in the paper; the
drivers here route it through the frontier-batched CSR kernels of
:mod:`repro.labelling.maintenance_kernels`, which produce the identical
affected-shortcut dict at a fraction of the cost.
"""

from __future__ import annotations

import math
from concurrent.futures import ThreadPoolExecutor

from repro.hierarchy.update_hierarchy import UpdateHierarchy
from repro.labelling.labels import HierarchicalLabelling
from repro.labelling.maintenance import (
    MaintenanceStats,
    ShortcutKey,
    WeightChange,
    seed_decrease,
    seed_increase,
)
from repro.utils.priority_queue import LazyHeap

__all__ = [
    "maintain_labels_decrease_parallel",
    "maintain_labels_increase_parallel",
    "apply_decrease_parallel",
    "apply_increase_parallel",
]


def _group_by_column(seeds: list[tuple[int, int]]) -> dict[int, list[int]]:
    columns: dict[int, list[int]] = {}
    for v, i in seeds:
        columns.setdefault(i, []).append(v)
    return columns


def _run_columns(worker, columns: dict[int, list[int]], workers: int | None) -> list:
    items = sorted(columns.items())
    if workers is None or workers <= 1 or len(items) <= 1:
        return [worker(i, vs) for i, vs in items]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(lambda kv: worker(kv[0], kv[1]), items))


def maintain_labels_decrease_parallel(
    hu: UpdateHierarchy,
    labels: HierarchicalLabelling,
    affected: dict[ShortcutKey, float],
    workers: int | None = None,
) -> MaintenanceStats:
    """Algorithm 6 — column-partitioned DHL- label maintenance.

    Phase 1 (ancestor-side seeding) is sequential as in the paper; the
    descendant sweep runs per ancestor column ``i`` using the
    thread-safe relaxation ``w(u, v) + L_v[i]`` (shortcut weight instead
    of the label entry ``L_u[v]``, justified by Lemma 6.3).
    """
    tau_key = hu.tau_key
    labels.ensure_writable()
    arrays = labels.views()
    down = hu.down
    wup = hu.wup
    seeds, changed_entries = seed_decrease(hu, labels, affected)
    stats = MaintenanceStats(
        shortcuts_changed=len(affected),
        affected_shortcuts=affected,
    )

    def process_column(i: int, starts: list[int]) -> tuple[set[tuple[int, int]], int]:
        heap: LazyHeap[int] = LazyHeap()
        for v in starts:
            heap.push(v, tau_key[v])
        changed_here: set[tuple[int, int]] = set()
        processed = 0
        while heap:
            v, _ = heap.pop()
            processed += 1
            value = arrays[v][i]
            for u in down[v]:
                candidate = wup[u][v] + value
                row = arrays[u]
                if candidate < row[i]:
                    row[i] = candidate
                    changed_here.add((int(u), i))
                    heap.push(u, tau_key[u])
        return changed_here, processed

    # Columns touch disjoint label slots; the union with the seed set
    # keeps ``labels_changed`` a distinct-entry count (an entry improved
    # in both the seed phase and the sweep counts once).
    for changed_here, processed in _run_columns(
        process_column, _group_by_column(seeds), workers
    ):
        changed_entries |= changed_here
        stats.entries_processed += processed
    stats.labels_changed = len(changed_entries)
    stats.affected_labels = {v for v, _ in changed_entries}
    return stats


def maintain_labels_increase_parallel(
    hu: UpdateHierarchy,
    labels: HierarchicalLabelling,
    affected: dict[ShortcutKey, float],
    workers: int | None = None,
) -> MaintenanceStats:
    """Algorithm 7 — column-partitioned DHL+ label maintenance."""
    tau = hu.tau
    tau_key = hu.tau_key
    labels.ensure_writable()
    arrays = labels.views()
    up = hu.up
    down = hu.down
    wup = hu.wup
    stats = MaintenanceStats(
        shortcuts_changed=len(affected), affected_shortcuts=affected
    )

    def process_column(i: int, starts: list[int]) -> tuple[int, int, set[int]]:
        heap: LazyHeap[int] = LazyHeap()
        for v in starts:
            heap.push(v, tau_key[v])
        changed_here = 0
        processed = 0
        touched: set[int] = set()
        while heap:
            v, _ = heap.pop()
            processed += 1
            row = arrays[v]
            weights_v = wup[v]
            w_new = math.inf
            for w in up[v]:
                if tau[w] >= i:
                    candidate = weights_v[w] + arrays[w][i]
                    if candidate < w_new:
                        w_new = candidate
            old = row[i]
            if w_new > old:
                for u in down[v]:
                    urow = arrays[u]
                    chained = wup[u][v] + old
                    if chained == urow[i] or (
                        math.isinf(chained) and math.isinf(urow[i])
                    ):
                        heap.push(u, tau_key[u])
                changed_here += 1
            if w_new != old:
                touched.add(int(v))
            row[i] = w_new
        return changed_here, processed, touched

    for changed_here, processed, touched in _run_columns(
        process_column, _group_by_column(seed_increase(hu, labels, affected)), workers
    ):
        stats.labels_changed += changed_here
        stats.entries_processed += processed
        stats.affected_labels |= touched
    return stats


def apply_decrease_parallel(
    hu: UpdateHierarchy,
    labels: HierarchicalLabelling,
    changes: list[WeightChange],
    workers: int | None = None,
) -> MaintenanceStats:
    """Full DHL-p update: array-kernel Algorithm 2 then Algorithm 6."""
    from repro.labelling.maintenance_kernels import shortcuts_decrease_array

    affected = shortcuts_decrease_array(hu, changes)
    return maintain_labels_decrease_parallel(hu, labels, affected, workers)


def apply_increase_parallel(
    hu: UpdateHierarchy,
    labels: HierarchicalLabelling,
    changes: list[WeightChange],
    workers: int | None = None,
) -> MaintenanceStats:
    """Full DHL+p update: array-kernel Algorithm 3 then Algorithm 7."""
    from repro.labelling.maintenance_kernels import shortcuts_increase_array

    affected = shortcuts_increase_array(hu, changes)
    return maintain_labels_increase_parallel(hu, labels, affected, workers)
