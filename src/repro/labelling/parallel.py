"""Parallel label maintenance — Algorithms 6 and 7 of the paper.

The descendant phase of Algorithms 4/5 partitions cleanly by ancestor
column ``i``: every queue entry generated while processing ``(v, i)`` is
again ``(*, i)``, and with the paper's substitution of the shortcut weight
``w(u, v)`` for the label entry ``L_u[v]`` in the relaxation, each column
touches only its own label slots. Columns are therefore processed
independently — sequentially (deterministic, default) or on a thread pool
(the paper uses 28 hardware threads; CPython's GIL limits the speed-up
here, which EXPERIMENTS.md discusses).
"""

from __future__ import annotations

import math
from concurrent.futures import ThreadPoolExecutor

from repro.hierarchy.update_hierarchy import UpdateHierarchy
from repro.labelling.labels import HierarchicalLabelling
from repro.labelling.maintenance import (
    MaintenanceStats,
    ShortcutKey,
    WeightChange,
    maintain_shortcuts_decrease,
    maintain_shortcuts_increase,
    seed_decrease,
    seed_increase,
)
from repro.utils.priority_queue import LazyHeap

__all__ = [
    "maintain_labels_decrease_parallel",
    "maintain_labels_increase_parallel",
    "apply_decrease_parallel",
    "apply_increase_parallel",
]


def _group_by_column(seeds: list[tuple[int, int]]) -> dict[int, list[int]]:
    columns: dict[int, list[int]] = {}
    for v, i in seeds:
        columns.setdefault(i, []).append(v)
    return columns


def _run_columns(worker, columns: dict[int, list[int]], workers: int | None) -> list:
    items = sorted(columns.items())
    if workers is None or workers <= 1 or len(items) <= 1:
        return [worker(i, vs) for i, vs in items]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(lambda kv: worker(kv[0], kv[1]), items))


def maintain_labels_decrease_parallel(
    hu: UpdateHierarchy,
    labels: HierarchicalLabelling,
    affected: dict[ShortcutKey, float],
    workers: int | None = None,
) -> MaintenanceStats:
    """Algorithm 6 — column-partitioned DHL- label maintenance.

    Phase 1 (ancestor-side seeding) is sequential as in the paper; the
    descendant sweep runs per ancestor column ``i`` using the
    thread-safe relaxation ``w(u, v) + L_v[i]`` (shortcut weight instead
    of the label entry ``L_u[v]``, justified by Lemma 6.3).
    """
    tau = hu.tau
    labels.ensure_writable()
    arrays = labels.views()
    down = hu.down
    wup = hu.wup
    seeds, changed = seed_decrease(hu, labels, affected)
    stats = MaintenanceStats(
        shortcuts_changed=len(affected),
        labels_changed=changed,
        affected_shortcuts=affected,
        affected_labels={v for v, _ in seeds},
    )

    def process_column(i: int, starts: list[int]) -> tuple[int, int, set[int]]:
        heap: LazyHeap[int] = LazyHeap()
        for v in starts:
            heap.push(v, float(tau[v]))
        changed_here = 0
        processed = 0
        touched: set[int] = set()
        while heap:
            v, _ = heap.pop()
            processed += 1
            value = arrays[v][i]
            for u in down[v]:
                candidate = wup[u][v] + value
                row = arrays[u]
                if candidate < row[i]:
                    row[i] = candidate
                    changed_here += 1
                    touched.add(u)
                    heap.push(u, float(tau[u]))
        return changed_here, processed, touched

    for changed_here, processed, touched in _run_columns(
        process_column, _group_by_column(seeds), workers
    ):
        stats.labels_changed += changed_here
        stats.entries_processed += processed
        stats.affected_labels |= touched
    return stats


def maintain_labels_increase_parallel(
    hu: UpdateHierarchy,
    labels: HierarchicalLabelling,
    affected: dict[ShortcutKey, float],
    workers: int | None = None,
) -> MaintenanceStats:
    """Algorithm 7 — column-partitioned DHL+ label maintenance."""
    tau = hu.tau
    labels.ensure_writable()
    arrays = labels.views()
    up = hu.up
    down = hu.down
    wup = hu.wup
    stats = MaintenanceStats(
        shortcuts_changed=len(affected), affected_shortcuts=affected
    )

    def process_column(i: int, starts: list[int]) -> tuple[int, int, set[int]]:
        heap: LazyHeap[int] = LazyHeap()
        for v in starts:
            heap.push(v, float(tau[v]))
        changed_here = 0
        processed = 0
        touched: set[int] = set()
        while heap:
            v, _ = heap.pop()
            processed += 1
            row = arrays[v]
            weights_v = wup[v]
            w_new = math.inf
            for w in up[v]:
                if tau[w] >= i:
                    candidate = weights_v[w] + arrays[w][i]
                    if candidate < w_new:
                        w_new = candidate
            old = row[i]
            if w_new > old:
                for u in down[v]:
                    urow = arrays[u]
                    chained = wup[u][v] + old
                    if chained == urow[i] or (
                        math.isinf(chained) and math.isinf(urow[i])
                    ):
                        heap.push(u, float(tau[u]))
                changed_here += 1
            if w_new != old:
                touched.add(v)
            row[i] = w_new
        return changed_here, processed, touched

    for changed_here, processed, touched in _run_columns(
        process_column, _group_by_column(seed_increase(hu, labels, affected)), workers
    ):
        stats.labels_changed += changed_here
        stats.entries_processed += processed
        stats.affected_labels |= touched
    return stats


def apply_decrease_parallel(
    hu: UpdateHierarchy,
    labels: HierarchicalLabelling,
    changes: list[WeightChange],
    workers: int | None = None,
) -> MaintenanceStats:
    """Full DHL-p update: Algorithm 2 then Algorithm 6."""
    affected = maintain_shortcuts_decrease(hu, changes)
    return maintain_labels_decrease_parallel(hu, labels, affected, workers)


def apply_increase_parallel(
    hu: UpdateHierarchy,
    labels: HierarchicalLabelling,
    changes: list[WeightChange],
    workers: int | None = None,
) -> MaintenanceStats:
    """Full DHL+p update: Algorithm 3 then Algorithm 7."""
    affected = maintain_shortcuts_increase(hu, changes)
    return maintain_labels_increase_parallel(hu, labels, affected, workers)
