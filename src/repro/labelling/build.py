"""Hierarchical labelling construction — Algorithm 1 of the paper.

Labels are computed top-down in increasing ``tau`` order: a vertex's label
is the element-wise minimum over its up-neighbours ``w`` of
``w(v, w) + L_w``, seeded with its direct shortcut weights. Each inner
step is one vectorised ``numpy.minimum`` over a prefix, which is what
keeps pure-Python construction practical (the ``repro_why`` concern).
"""

from __future__ import annotations

import numpy as np

from repro.hierarchy.update_hierarchy import UpdateHierarchy
from repro.labelling.labels import HierarchicalLabelling

__all__ = ["build_labelling"]


def build_labelling(hu: UpdateHierarchy) -> HierarchicalLabelling:
    """Run Algorithm 1 over the update hierarchy *hu*.

    Returns the hierarchical labelling whose entry ``L_v[i]`` is the
    length of the shortest shortcut chain from ``v`` to its rank-``i``
    ancestor — equivalently the interval-subgraph distance of
    Definition 4.11 (by Lemma 6.3 / Corollary 6.5).
    """
    tau = np.asarray(hu.tau, dtype=np.int64)
    n = len(tau)
    # Labels are built straight into the flat CSR store: lengths are
    # known upfront (tau + 1), so the whole buffer is allocated once and
    # the diagonal is written with a single scatter.
    lengths = tau + 1
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    values = np.full(int(offsets[-1]), np.inf, dtype=np.float64)
    values[offsets[:-1] + tau] = 0.0
    labels = HierarchicalLabelling(values, offsets, lengths, tau)
    arrays = labels.views()

    # Lines 3-4: copy shortcut weights. wup is keyed on the deeper
    # endpoint (contracted earlier), matching tau(v) > tau(w).
    for v in range(n):
        row = arrays[v]
        for w, weight in hu.wup[v].items():
            row[int(tau[w])] = weight

    # Lines 5-8: top-down pass in increasing tau; ties are incomparable
    # vertices whose labels do not interact, so any tie-break works.
    for v in np.argsort(tau, kind="stable").tolist():
        row = arrays[v]
        for w in hu.up[v]:
            weight = hu.wup[v][w]
            k = int(tau[w]) + 1
            np.minimum(row[:k], weight + arrays[w], out=row[:k])
    return labels
