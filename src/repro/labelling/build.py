"""Hierarchical labelling construction — Algorithm 1 of the paper.

Labels are computed top-down in increasing ``tau`` order: a vertex's label
is the element-wise minimum over its up-neighbours ``w`` of
``w(v, w) + L_w``, seeded with its direct shortcut weights. Each inner
step is one vectorised ``numpy.minimum`` over a prefix, which is what
keeps pure-Python construction practical (the ``repro_why`` concern).

The builder reads the CSR shortcut store directly (``up_indptr`` /
``up_indices`` / ``up_weights``): the shortcut-weight seeding is one
scatter into the flat label buffer, and the top-down pass walks row
slices with no per-edge dict probing.
"""

from __future__ import annotations

import numpy as np

from repro.labelling.labels import HierarchicalLabelling

__all__ = ["build_labelling"]


def build_labelling(hu) -> HierarchicalLabelling:
    """Run Algorithm 1 over the update hierarchy *hu*.

    *hu* is any CSR shortcut store carrying ``tau``, ``csr`` and
    ``up_weights`` — the undirected update hierarchy or one direction
    view of the directed index. Returns the hierarchical labelling whose
    entry ``L_v[i]`` is the length of the shortest shortcut chain from
    ``v`` to its rank-``i`` ancestor — equivalently the interval-subgraph
    distance of Definition 4.11 (by Lemma 6.3 / Corollary 6.5).
    """
    # JIT warmup rides on label construction: any maintenance or query
    # after a build finds the compiled kernels ready (idempotent, and a
    # no-op beyond a flag check when numba is absent).
    from repro.labelling.compiled import warmup_kernels

    warmup_kernels()

    tau = np.asarray(hu.tau, dtype=np.int64)
    n = len(tau)
    csr = hu.csr
    indptr, indices = csr.indptr, csr.indices
    up_weights = hu.up_weights
    # Labels are built straight into the flat CSR store: lengths are
    # known upfront (tau + 1), so the whole buffer is allocated once and
    # the diagonal is written with a single scatter.
    lengths = tau + 1
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    values = np.full(int(offsets[-1]), np.inf, dtype=np.float64)
    values[offsets[:-1] + tau] = 0.0
    labels = HierarchicalLabelling(values, offsets, lengths, tau)

    # Lines 3-4: copy shortcut weights — one scatter over all slots.
    # Slot (v, w) lands at position offsets[v] + tau[w] (tau(w) < tau(v)
    # for every up-neighbour); positions are distinct across slots.
    if len(indices):
        values[offsets[csr.owners] + tau[indices]] = up_weights

    # Lines 5-8: top-down pass in increasing tau; ties are incomparable
    # vertices whose labels do not interact, so any tie-break works.
    for v in np.argsort(tau, kind="stable").tolist():
        start, end = int(indptr[v]), int(indptr[v + 1])
        if start == end:
            continue
        ov = int(offsets[v])
        row = values[ov : ov + int(tau[v]) + 1]
        for slot in range(start, end):
            w = int(indices[slot])
            k = int(tau[w]) + 1
            ow = int(offsets[w])
            np.minimum(
                row[:k], up_weights[slot] + values[ow : ow + k], out=row[:k]
            )
    return labels
