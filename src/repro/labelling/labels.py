"""The hierarchical labelling data structure (distance map gamma).

For each vertex ``v`` the label is a dense ``float64`` array of length
``tau(v) + 1``: entry ``i`` holds ``L_v[i]``, the distance between ``v``
and its rank-``i`` ancestor within the ⪯_H-interval subgraph of H_U
(Definition 4.11); entry ``tau(v)`` is 0 (the vertex itself). The distance
scheme Gamma (Definitions 4.9/4.10) is purely conceptual — the ancestor
identities are implied by ranks, so only distances are stored, exactly as
in the paper.
"""

from __future__ import annotations


import numpy as np

__all__ = ["HierarchicalLabelling"]


class HierarchicalLabelling:
    """Distance map ``gamma`` over the conceptual distance scheme.

    Attributes
    ----------
    arrays:
        ``arrays[v][i] == L_v[i]``; length ``tau[v] + 1`` each.
    tau:
        Rank array shared with the hierarchies.
    """

    __slots__ = ("arrays", "tau")

    def __init__(self, arrays: list[np.ndarray], tau: np.ndarray):
        self.arrays = arrays
        self.tau = tau

    # -- element access -------------------------------------------------
    def entry(self, v: int, i: int) -> float:
        """``L_v[i]`` — distance from *v* to its rank-``i`` ancestor."""
        return float(self.arrays[v][i])

    def entry_for(self, v: int, w: int) -> float:
        """``L_v[w]`` for an ancestor vertex *w* (paper's index-by-vertex)."""
        return float(self.arrays[v][int(self.tau[w])])

    def set_entry(self, v: int, i: int, value: float) -> None:
        self.arrays[v][i] = value

    # -- bulk properties --------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.arrays)

    @property
    def num_entries(self) -> int:
        """Total label entries (paper's |L| in Table 3)."""
        return sum(len(a) for a in self.arrays)

    def memory_bytes(self) -> int:
        return sum(a.nbytes for a in self.arrays)

    def copy(self) -> "HierarchicalLabelling":
        return HierarchicalLabelling([a.copy() for a in self.arrays], self.tau)

    def equals(self, other: "HierarchicalLabelling", tolerance: float = 0.0) -> bool:
        """Exact (or tolerance-bounded) equality of every label entry.

        Because label entries are deterministic interval-subgraph
        distances, a correctly maintained labelling must *equal* the
        labelling rebuilt from scratch — the strongest maintenance check.
        """
        if len(self.arrays) != len(other.arrays):
            return False
        for a, b in zip(self.arrays, other.arrays):
            if len(a) != len(b):
                return False
            finite_a = np.isfinite(a)
            finite_b = np.isfinite(b)
            if not np.array_equal(finite_a, finite_b):
                return False
            if tolerance == 0.0:
                if not np.array_equal(a[finite_a], b[finite_b]):
                    return False
            elif not np.allclose(a[finite_a], b[finite_b], atol=tolerance, rtol=0.0):
                return False
        return True

    def diff_count(self, other: "HierarchicalLabelling") -> int:
        """Number of entries that differ from *other* (for L-delta stats)."""
        count = 0
        for a, b in zip(self.arrays, other.arrays):
            both_inf = np.isinf(a) & np.isinf(b)
            count += int((~both_inf & (a != b)).sum())
        return count

    def validate_basic(self) -> None:
        """Cheap invariants: diagonal zero, non-negative entries."""
        for v, a in enumerate(self.arrays):
            assert len(a) == int(self.tau[v]) + 1, f"label length mismatch at {v}"
            assert a[-1] == 0.0, f"diagonal entry of {v} is {a[-1]}"
            assert (a >= 0).all(), f"negative label entry at {v}"

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        mb = self.memory_bytes() / 1e6
        return (
            f"HierarchicalLabelling(vertices={self.num_vertices}, "
            f"entries={self.num_entries}, {mb:.2f} MB)"
        )
