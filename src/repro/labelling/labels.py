"""The hierarchical labelling data structure (distance map gamma).

For each vertex ``v`` the label is a dense ``float64`` run of length
``tau(v) + 1``: entry ``i`` holds ``L_v[i]``, the distance between ``v``
and its rank-``i`` ancestor within the ⪯_H-interval subgraph of H_U
(Definition 4.11); entry ``tau(v)`` is 0 (the vertex itself). The distance
scheme Gamma (Definitions 4.9/4.10) is purely conceptual — the ancestor
identities are implied by ranks, so only distances are stored, exactly as
in the paper.

Storage is a flat CSR-style store rather than a list of per-vertex
arrays: one contiguous ``values`` buffer plus ``offsets``/``lengths``
index arrays. Vertex ``v``'s label lives at
``values[offsets[v] : offsets[v] + lengths[v]]``. This layout is what
lets the batch-query kernel gather label entries with pure fancy
indexing (no padded copy), serialization dump/mmap the store as two
arrays, and bulk invariants run as single vector reductions. Per-vertex
*views* into the buffer are exposed for the maintenance algorithms,
which relax individual entries.

The store optionally carries per-vertex slack capacity
(``offsets[v + 1] - offsets[v] > lengths[v]``) so a label can be
extended in place; :meth:`HierarchicalLabelling.extend_label` grows with
amortised doubling when the slack runs out.
"""

from __future__ import annotations

import numpy as np

__all__ = ["HierarchicalLabelling"]


class HierarchicalLabelling:
    """Distance map ``gamma`` over the conceptual distance scheme.

    Attributes
    ----------
    values:
        Contiguous float64 buffer holding every label entry (plus any
        slack capacity). May be a read-only memory map after
        ``load(..., mmap_labels=True)``; mutation goes through
        :meth:`ensure_writable`.
    offsets:
        ``int64`` array of length ``n + 1``; vertex ``v``'s slot is
        ``values[offsets[v] : offsets[v + 1]]``.
    lengths:
        ``int64`` array of length ``n``; entries in use per vertex
        (``tau[v] + 1`` unless a label was extended).
    tau:
        Rank array shared with the hierarchies.
    """

    __slots__ = ("values", "offsets", "lengths", "tau", "_views")

    def __init__(
        self,
        values: np.ndarray,
        offsets: np.ndarray,
        lengths: np.ndarray,
        tau: np.ndarray,
    ):
        self.values = values
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.lengths = np.asarray(lengths, dtype=np.int64)
        self.tau = tau
        self._views: list[np.ndarray] | None = None

    @classmethod
    def from_arrays(
        cls,
        arrays: list[np.ndarray],
        tau: np.ndarray,
        slack: float = 0.0,
    ) -> "HierarchicalLabelling":
        """Build a flat store from ragged per-vertex arrays.

        ``slack`` reserves ``ceil(slack * len)`` spare slots per vertex
        so in-place :meth:`extend_label` calls need no store rebuild.
        """
        n = len(arrays)
        lengths = np.asarray([len(a) for a in arrays], dtype=np.int64)
        caps = lengths + np.ceil(slack * lengths).astype(np.int64)
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(caps, out=offsets[1:])
        values = np.full(int(offsets[-1]), np.inf, dtype=np.float64)
        for v, row in enumerate(arrays):
            values[offsets[v] : offsets[v] + lengths[v]] = row
        return cls(values, offsets, lengths, tau)

    # -- pickling ---------------------------------------------------------
    def __getstate__(self):
        """Pickle without the view cache.

        ``_views`` holds numpy *views* into ``values``; pickling would
        materialise them as detached copies, and an unpickled store
        would then route maintenance writes into dead buffers (the
        parallel shard build ships label stores across processes this
        way). The views are rebuilt lazily on first use instead.
        """
        return (self.values, self.offsets, self.lengths, self.tau)

    def __setstate__(self, state) -> None:
        self.values, self.offsets, self.lengths, self.tau = state
        self._views = None

    # -- per-vertex views -------------------------------------------------
    def view(self, v: int) -> np.ndarray:
        """Zero-copy view of vertex *v*'s label (shares the flat buffer)."""
        start = self.offsets[v]
        return self.values[start : start + self.lengths[v]]

    def views(self) -> list[np.ndarray]:
        """Per-vertex views into the flat buffer, cached until the buffer
        is replaced (:meth:`ensure_writable`, :meth:`extend_label`)."""
        if self._views is None:
            offsets = self.offsets
            lengths = self.lengths
            values = self.values
            self._views = [
                values[offsets[v] : offsets[v] + lengths[v]]
                for v in range(len(lengths))
            ]
        return self._views

    # -- element access ---------------------------------------------------
    def entry(self, v: int, i: int) -> float:
        """``L_v[i]`` — distance from *v* to its rank-``i`` ancestor."""
        return float(self.values[self.offsets[v] + i])

    def entry_for(self, v: int, w: int) -> float:
        """``L_v[w]`` for an ancestor vertex *w* (paper's index-by-vertex)."""
        return float(self.values[self.offsets[v] + int(self.tau[w])])

    def set_entry(self, v: int, i: int, value: float) -> None:
        self.ensure_writable()
        self.values[self.offsets[v] + i] = value

    # -- batched maintenance primitives -----------------------------------
    def entry_positions(self, verts: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Flat positions of entries ``L_verts[cols]`` in ``values``."""
        return self.offsets[verts] + cols

    def entries_of_positions(
        self, positions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Inverse of :meth:`entry_positions`: ``(verts, cols)`` arrays.

        Valid because slot capacities are disjoint ranges of ``values``:
        a flat position maps back to its vertex with one searchsorted
        over ``offsets``.
        """
        verts = np.searchsorted(self.offsets, positions, side="right") - 1
        return verts, positions - self.offsets[verts]

    def relax_entries(
        self, positions: np.ndarray, candidates: np.ndarray
    ) -> np.ndarray:
        """Scatter-min *candidates* into ``values`` at *positions*.

        Duplicate positions are allowed (they are min-reduced first via
        a sort + ``np.minimum.reduceat`` pass — no unbuffered ``ufunc.at``
        scatter). Returns the sorted unique positions whose stored value
        strictly improved. This is the frontier-batched replacement for
        the reference path's one-heap-pop-per-entry relaxation.
        """
        if not len(positions):
            return positions
        order = np.argsort(positions, kind="stable")
        pos_sorted = positions[order]
        cand_sorted = candidates[order]
        starts = np.empty(len(pos_sorted), dtype=bool)
        starts[0] = True
        np.not_equal(pos_sorted[1:], pos_sorted[:-1], out=starts[1:])
        start_idx = np.nonzero(starts)[0]
        unique_pos = pos_sorted[start_idx]
        mins = np.minimum.reduceat(cand_sorted, start_idx)
        current = self.values[unique_pos]
        improved = mins < current
        if not improved.any():
            return unique_pos[:0]
        unique_pos = unique_pos[improved]
        self.values[unique_pos] = mins[improved]
        return unique_pos

    def recompute_entries(
        self, positions: np.ndarray, new_values: np.ndarray
    ) -> np.ndarray:
        """Overwrite entries at unique *positions*; returns the old values."""
        old = self.values[positions].copy()
        self.values[positions] = new_values
        return old

    # -- mutation support -------------------------------------------------
    def ensure_writable(self) -> None:
        """Materialise the buffer in memory if it is a read-only mmap.

        Maintenance entry points call this so a snapshot loaded with
        ``mmap_mode="r"`` can serve queries straight off disk yet still
        accept updates (copy-on-first-write).
        """
        if not self.values.flags.writeable:
            self.values = np.array(self.values, dtype=np.float64)
            self._views = None

    def extend_label(self, v: int, new_length: int) -> np.ndarray:
        """Grow vertex *v*'s label to *new_length* entries (inf-filled).

        Uses the slot's slack when available (in-place, O(new entries));
        otherwise rebuilds the store with *v*'s capacity at least
        doubled, so repeated extensions of the same vertex trigger only
        O(log growth) rebuilds. Returns the (possibly new) view.
        """
        self.ensure_writable()
        length = int(self.lengths[v])
        if new_length <= length:
            return self.view(v)
        start = int(self.offsets[v])
        capacity = int(self.offsets[v + 1]) - start
        if new_length > capacity:
            caps = np.diff(self.offsets)
            caps[v] = max(new_length, 2 * capacity)
            offsets = np.zeros(len(caps) + 1, dtype=np.int64)
            np.cumsum(caps, out=offsets[1:])
            values = np.full(int(offsets[-1]), np.inf, dtype=np.float64)
            for u in range(len(caps)):
                run = int(self.lengths[u])
                src = int(self.offsets[u])
                values[offsets[u] : offsets[u] + run] = self.values[
                    src : src + run
                ]
            self.values = values
            self.offsets = offsets
            self._views = None
            start = int(offsets[v])
        self.values[start + length : start + new_length] = np.inf
        self.lengths[v] = new_length
        self._views = None
        return self.view(v)

    # -- cross-process buffer publication ---------------------------------
    def export_buffers(self) -> tuple[np.ndarray, np.ndarray]:
        """``(values, offsets)`` packed for publication outside this process.

        The two arrays are exactly the format-v3 snapshot layout
        (``label_values.npy`` + ``label_offsets.npy``) and exactly what
        :meth:`from_shared_buffers` re-binds on the far side, so the same
        buffers serve disk snapshots, memory maps, and shared-memory
        shard workers. Zero-copy when the store is already packed.
        """
        return self.packed()

    @classmethod
    def from_shared_buffers(
        cls, values: np.ndarray, offsets: np.ndarray, tau: np.ndarray
    ) -> "HierarchicalLabelling":
        """Bind a labelling onto externally owned buffers without copying.

        ``values``/``offsets`` are the :meth:`export_buffers` pair —
        typically numpy views over ``multiprocessing.shared_memory``
        segments published by another process. The store keeps reading
        whatever the owner writes into those buffers, which is how shard
        workers observe the parent's delta re-publishes; callers that
        mutate must coordinate an epoch protocol around it.
        """
        offsets = np.asarray(offsets, dtype=np.int64)
        return cls(values, offsets, np.diff(offsets), tau)

    # -- packed export ----------------------------------------------------
    @property
    def is_packed(self) -> bool:
        """True when the buffer carries no slack (offsets == cumsum lengths)."""
        return bool(np.array_equal(np.diff(self.offsets), self.lengths))

    def packed(self) -> tuple[np.ndarray, np.ndarray]:
        """``(values, offsets)`` with all slack squeezed out.

        Returns the live arrays (no copy) when the store is already
        packed — this is the serialization fast path.
        """
        if self.is_packed:
            return self.values, self.offsets
        offsets = np.zeros(len(self.lengths) + 1, dtype=np.int64)
        np.cumsum(self.lengths, out=offsets[1:])
        return np.concatenate(self.views()), offsets

    def _used_values(self) -> np.ndarray:
        """All in-use entries as one flat array (zero-copy when packed)."""
        return self.packed()[0]

    def compact(self) -> int:
        """Squeeze slack capacity out of the flat buffer, in place.

        The structural compaction pass calls this alongside the shortcut
        store squeeze so a long-lived index does not keep paying for
        label slots that :meth:`extend_label` over-allocated. Returns the
        number of buffer bytes reclaimed (0 when already packed).
        """
        before = self.values.nbytes
        if self.is_packed:
            return 0
        values, offsets = self.packed()
        self.values = values
        self.offsets = offsets
        self._views = None
        return before - self.values.nbytes

    # -- bulk properties --------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.lengths)

    @property
    def num_entries(self) -> int:
        """Total label entries (paper's |L| in Table 3)."""
        return int(self.lengths.sum())

    def memory_bytes(self) -> int:
        """Bytes of label payload in use (excludes slack and index arrays)."""
        return 8 * self.num_entries

    def capacity_bytes(self) -> int:
        """Bytes of the whole store: value buffer plus index arrays."""
        return self.values.nbytes + self.offsets.nbytes + self.lengths.nbytes

    def copy(self) -> "HierarchicalLabelling":
        return HierarchicalLabelling(
            self.values.copy(), self.offsets.copy(), self.lengths.copy(), self.tau
        )

    def equals(self, other: "HierarchicalLabelling", tolerance: float = 0.0) -> bool:
        """Exact (or tolerance-bounded) equality of every label entry.

        Because label entries are deterministic interval-subgraph
        distances, a correctly maintained labelling must *equal* the
        labelling rebuilt from scratch — the strongest maintenance check.
        Runs as flat vector reductions over the packed stores.
        """
        if len(self.lengths) != len(other.lengths):
            return False
        if not np.array_equal(self.lengths, other.lengths):
            return False
        a = self._used_values()
        b = other._used_values()
        finite_a = np.isfinite(a)
        finite_b = np.isfinite(b)
        if not np.array_equal(finite_a, finite_b):
            return False
        if tolerance == 0.0:
            return bool(np.array_equal(a[finite_a], b[finite_b]))
        return bool(
            np.allclose(a[finite_a], b[finite_b], atol=tolerance, rtol=0.0)
        )

    def diff_count(self, other: "HierarchicalLabelling") -> int:
        """Number of entries that differ from *other* (for L-delta stats)."""
        a = self._used_values()
        b = other._used_values()
        both_inf = np.isinf(a) & np.isinf(b)
        return int((~both_inf & (a != b)).sum())

    def validate_basic(self) -> None:
        """Cheap invariants: diagonal zero, non-negative entries.

        Labels must hold at least ``tau + 1`` entries (extended labels
        may hold more, inf-filled past the diagonal), and the diagonal —
        at index ``tau[v]``, not necessarily last — must be zero.
        """
        tau = np.asarray(self.tau, dtype=np.int64)
        assert (self.lengths >= tau + 1).all(), "label length mismatch"
        used = self._used_values()
        assert (used >= 0).all(), "negative label entry"
        diagonal = self.values[self.offsets[:-1] + tau]
        assert (diagonal == 0.0).all(), "non-zero diagonal entry"

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        mb = self.memory_bytes() / 1e6
        return (
            f"HierarchicalLabelling(vertices={self.num_vertices}, "
            f"entries={self.num_entries}, {mb:.2f} MB)"
        )
