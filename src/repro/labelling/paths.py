"""Shortest-*path* reconstruction on top of the distance labelling.

The paper's index answers distance queries; applications like GPS
navigation also need the route. DHL admits exact path reconstruction with
no extra storage:

1. the query identifies a hub ``r`` (a common ancestor on a shortest
   path, Lemma 6.6);
2. each side's label entry is the length of a *shortcut chain* to ``r``
   (Lemma 6.3), and the chain can be re-extracted greedily: from ``v``,
   some up-neighbour ``w`` satisfies ``w(v, w) + L_w[r] == L_v[r]``;
3. every shortcut unpacks into original edges through its witness
   triangle (Property 3.1): either it is realised by the graph edge, or
   by ``x`` in ``N-(v) ∩ N-(w)`` with ``w(x,v) + w(x,w) == w(v,w)``.

Exactness of the equality tests relies on integer weights (the library's
recommended regime); a small tolerance parameter covers near-integer
float weights.
"""

from __future__ import annotations

import math

from repro.exceptions import ReproError
from repro.hierarchy.update_hierarchy import UpdateHierarchy
from repro.labelling.labels import HierarchicalLabelling
from repro.labelling.query import QueryEngine

__all__ = ["PathReconstructor"]


class PathReconstructor:
    """Reconstructs exact shortest paths from (H_Q, H_U, L)."""

    def __init__(
        self,
        engine: QueryEngine,
        hu: UpdateHierarchy,
        tolerance: float = 1e-9,
    ):
        self.engine = engine
        self.hu = hu
        self.labels: HierarchicalLabelling = engine.labels
        self.tolerance = tolerance

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def shortest_path(self, s: int, t: int) -> list[int]:
        """Vertex sequence of a shortest path from *s* to *t*.

        Returns ``[s]`` for ``s == t``; raises :class:`ReproError` when
        the vertices are disconnected.
        """
        if s == t:
            return [s]
        distance, hub = self.engine.distance_with_hub(s, t)
        if math.isinf(distance) or hub < 0:
            raise ReproError(f"vertices {s} and {t} are disconnected")
        rank = int(self.hu.tau[hub])
        left = self._chain_path(s, rank)  # s -> hub
        right = self._chain_path(t, rank)  # t -> hub
        return left + right[::-1][1:]

    # ------------------------------------------------------------------
    # chain extraction (Lemma 6.3)
    # ------------------------------------------------------------------
    def _chain_path(self, v: int, rank: int) -> list[int]:
        """Original-graph path from *v* up to its rank-``rank`` ancestor."""
        arrays = self.labels.views()
        tau = self.hu.tau
        wup = self.hu.wup
        path = [v]
        while int(tau[v]) > rank:
            target = arrays[v][rank]
            if math.isinf(target):
                raise ReproError(f"no chain from {v} to ancestor rank {rank}")
            chosen = -1
            for w in self.hu.up[v]:
                if tau[w] < rank:
                    continue
                candidate = wup[v][w] + arrays[w][rank]
                if abs(candidate - target) <= self.tolerance:
                    chosen = w
                    break
            if chosen < 0:
                raise ReproError(
                    f"label chain broken at vertex {v} (stale labelling?)"
                )
            path.extend(self._unpack_shortcut(v, chosen)[1:])
            v = chosen
        return path

    # ------------------------------------------------------------------
    # shortcut unpacking (Property 3.1 witnesses)
    # ------------------------------------------------------------------
    def _unpack_shortcut(self, a: int, b: int) -> list[int]:
        """Expand shortcut ``(a, b)`` into consecutive original edges."""
        graph = self.hu.graph
        result = [a]
        stack = [(a, b)]
        while stack:
            u, v = stack.pop()
            weight = self.hu.weight(u, v)
            if (
                graph.has_edge(u, v)
                and abs(graph.weight(u, v) - weight) <= self.tolerance
            ):
                result.append(v)
                continue
            witness = self._witness(u, v, weight)
            # Expand u -> x then x -> v; pushed in reverse (LIFO).
            stack.append((witness, v))
            stack.append((u, witness))
        return result

    def _witness(self, u: int, v: int, weight: float) -> int:
        small, big = self.hu.down_sets[u], self.hu.down_sets[v]
        if len(small) > len(big):
            small, big = big, small
        for x in small:
            if x in big:
                candidate = self.hu.weight(x, u) + self.hu.weight(x, v)
                if abs(candidate - weight) <= self.tolerance:
                    return x
        raise ReproError(
            f"shortcut ({u}, {v}) has no witness; minimum-weight property "
            "violated (stale hierarchy?)"
        )

    # ------------------------------------------------------------------
    # validation helper (used by tests and debugging)
    # ------------------------------------------------------------------
    def validate_path(self, path: list[int], expected_length: float) -> None:
        """Assert *path* is a real path of exactly *expected_length*."""
        graph = self.hu.graph
        total = 0.0
        for a, b in zip(path, path[1:]):
            assert graph.has_edge(a, b), f"({a}, {b}) is not an edge"
            total += graph.weight(a, b)
        assert abs(total - expected_length) <= self.tolerance, (
            f"path length {total} != distance {expected_length}"
        )
        assert len(set(path)) == len(path), "path revisits a vertex"
