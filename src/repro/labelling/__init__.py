"""Hierarchical labelling L: construction, queries and maintenance.

* :class:`HierarchicalLabelling` — the distance map ``gamma`` stored as one
  dense numpy array per vertex, indexed by ancestor rank ``tau``
  (Definitions 4.9-4.12).
* :mod:`repro.labelling.build` — bottom-up construction (Algorithm 1).
* :mod:`repro.labelling.query` — 2-hop distance queries through H_Q.
* :mod:`repro.labelling.maintenance` — scalar reference maintenance:
  DH-U decrease/increase (Algorithms 2/3) and DHL-/DHL+ (Algorithms 4/5).
* :mod:`repro.labelling.maintenance_kernels` — the frontier-batched
  array engine (default): the same algorithms as level/round sweeps over
  the CSR shortcut store and the flat label buffer.
* :mod:`repro.labelling.parallel` — column-partitioned parallel variants
  (Algorithms 6/7).
"""

from repro.labelling.labels import HierarchicalLabelling
from repro.labelling.build import build_labelling
from repro.labelling.query import QueryEngine
from repro.labelling.paths import PathReconstructor
from repro.labelling.maintenance import (
    MaintenanceStats,
    maintain_shortcuts_decrease,
    maintain_shortcuts_increase,
    maintain_labels_decrease,
    maintain_labels_increase,
    apply_decrease,
    apply_increase,
)
from repro.labelling.maintenance_kernels import (
    shortcuts_decrease_array,
    shortcuts_increase_array,
    labels_decrease_array,
    labels_increase_array,
    apply_decrease_array,
    apply_increase_array,
)
from repro.labelling.parallel import (
    maintain_labels_decrease_parallel,
    maintain_labels_increase_parallel,
    apply_decrease_parallel,
    apply_increase_parallel,
)

__all__ = [
    "shortcuts_decrease_array",
    "shortcuts_increase_array",
    "labels_decrease_array",
    "labels_increase_array",
    "apply_decrease_array",
    "apply_increase_array",
    "HierarchicalLabelling",
    "build_labelling",
    "QueryEngine",
    "PathReconstructor",
    "MaintenanceStats",
    "maintain_shortcuts_decrease",
    "maintain_shortcuts_increase",
    "maintain_labels_decrease",
    "maintain_labels_increase",
    "apply_decrease",
    "apply_increase",
    "maintain_labels_decrease_parallel",
    "maintain_labels_increase_parallel",
    "apply_decrease_parallel",
    "apply_increase_parallel",
]
