"""Dynamic maintenance — Algorithms 2-5 of the paper (scalar reference).

Two layers are maintained, in order:

1. **Shortcuts** (update hierarchy H_U): Algorithm 2 (decrease) relaxes
   triangle inequalities outward from the changed edges; Algorithm 3
   (increase) re-derives affected shortcut weights from Property 3.1.
   Both process shortcuts bottom-up (decreasing ``tau`` of the deeper
   endpoint == increasing contraction rank), so triangle legs are always
   final before they are used. These run on any
   :class:`~repro.hierarchy.contraction.ContractionResult`, which lets the
   DCH baseline reuse them verbatim.
2. **Labels** (hierarchical labelling L): Algorithm 4 (decrease) relaxes
   label entries along shortcut chains; Algorithm 5 (increase) recomputes
   potentially affected entries from up-neighbours, support-free (the
   paper's deliberate trade-off — Section 8 "Boundedness"). Entries are
   processed top-down (increasing ``tau``), so ancestor columns are final
   before descendants read them.

This module is the one-pop-per-entry *reference engine* (selected with
``DHLConfig(engine="reference")``); production updates run the
frontier-batched kernels in :mod:`repro.labelling.maintenance_kernels`,
which must produce identical labels, change counts and affected sets —
the differential property tests rely on it.

Increase-side pruning tests exact equality of path sums; with integer
weights (the library default) these comparisons are exact in float64.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import MaintenanceError, StructuralFallbackRequired
from repro.hierarchy.contraction import ContractionResult
from repro.hierarchy.update_hierarchy import UpdateHierarchy
from repro.labelling.labels import HierarchicalLabelling
from repro.utils.priority_queue import LazyHeap

__all__ = [
    "MaintenanceStats",
    "maintain_shortcuts_decrease",
    "maintain_shortcuts_increase",
    "maintain_labels_decrease",
    "maintain_labels_increase",
    "apply_decrease",
    "apply_increase",
]

WeightChange = tuple[int, int, float]
ShortcutKey = tuple[int, int]


@dataclass
class MaintenanceStats:
    """Work counters reported by the update algorithms.

    ``shortcuts_changed`` is the paper's |S-delta|; ``labels_changed`` is
    |L-delta| (distinct label entries whose value changed);
    ``entries_processed`` counts queue pops (search effort — the only
    field that may differ between the reference and array engines).
    ``affected_labels`` holds the vertices whose label array was modified;
    a distance ``d(s, t)`` is a pure function of ``L_s`` and ``L_t``, so a
    cached result is stale only when one of its endpoints is in this set —
    the serving layer's fine-grained cache eviction relies on it.

    ``phases`` maps kernel phase names (``decrease.relax_round``,
    ``increase.dependency_layer``, ``decrease.label_sweep``, ...) to
    wall seconds. It is populated only when a phase collector was
    active during the update (the observability layer's
    :func:`~repro.observability.collect_phases` — e.g. a service flush
    with an enabled registry); otherwise it stays empty, keeping the
    kernels measurement-free.
    """

    shortcuts_changed: int = 0
    labels_changed: int = 0
    entries_processed: int = 0
    affected_shortcuts: dict[ShortcutKey, float] = field(default_factory=dict)
    affected_labels: set[int] = field(default_factory=set)
    phases: dict[str, float] = field(default_factory=dict)

    def merge(self, other: "MaintenanceStats") -> "MaintenanceStats":
        # ``affected_shortcuts`` records the weight each shortcut held
        # *before* the batch; when both sides touched a shortcut, the
        # earliest recorded old weight must win (setdefault semantics) —
        # a plain dict union would let the later batch overwrite it.
        merged_shortcuts = dict(self.affected_shortcuts)
        for key, old in other.affected_shortcuts.items():
            merged_shortcuts.setdefault(key, old)
        merged_phases = dict(self.phases)
        for name, seconds in other.phases.items():
            merged_phases[name] = merged_phases.get(name, 0.0) + seconds
        return MaintenanceStats(
            self.shortcuts_changed + other.shortcuts_changed,
            self.labels_changed + other.labels_changed,
            self.entries_processed + other.entries_processed,
            merged_shortcuts,
            self.affected_labels | other.affected_labels,
            merged_phases,
        )


# ---------------------------------------------------------------------------
# Shortcut maintenance (Algorithms 2 and 3)
# ---------------------------------------------------------------------------

def maintain_shortcuts_decrease(
    sc: ContractionResult,
    changes: list[WeightChange],
) -> dict[ShortcutKey, float]:
    """Algorithm 2 — DH-U under edge weight decrease.

    Applies *changes* (``(u, v, new_weight)``) to the underlying graph,
    propagates decreases through shortcut triangles bottom-up, and returns
    the affected shortcuts as ``{(deeper, shallower): old_weight}``; the
    new weights are already stored in *sc*.
    """
    graph = sc.graph
    rank_key = sc.rank_key
    wup = sc.wup
    heap: LazyHeap[ShortcutKey] = LazyHeap()
    old_weights: dict[ShortcutKey, float] = {}

    for a, b, w_new in changes:
        old_edge = graph.set_weight(a, b, w_new)
        if w_new > old_edge:
            raise MaintenanceError(
                f"decrease batch contains an increase on edge ({a}, {b})"
            )
        v, w = sc.shortcut_key(a, b)
        if wup[v][w] > w_new:
            old_weights.setdefault((v, w), wup[v][w])
            wup[v][w] = w_new
            heap.push((v, w), rank_key[v])

    while heap:
        (v, w), _ = heap.pop()
        weight_vw = wup[v][w]
        row = wup[v]
        for other in sc.up[v]:
            if other == w:
                continue
            candidate = weight_vw + row[other]
            lo, hi = sc.shortcut_key(w, other)
            current = wup[lo].get(hi)
            if current is None:
                # The pair was inf when the store was compacted. A pure
                # weight decrease can never produce a finite candidate
                # for it (both legs finite implies the target was finite
                # pre-compaction); an insertion-seeded sweep can, and
                # then only a rebuild can absorb the result.
                if math.isfinite(candidate):
                    raise StructuralFallbackRequired(
                        "decrease sweep reached a compacted shortcut slot"
                    )
                continue
            if current > candidate:
                old_weights.setdefault((lo, hi), current)
                wup[lo][hi] = candidate
                heap.push((lo, hi), rank_key[lo])
    return old_weights


def maintain_shortcuts_increase(
    sc: ContractionResult,
    changes: list[WeightChange],
) -> dict[ShortcutKey, float]:
    """Algorithm 3 — DH-U under edge weight increase.

    Applies *changes* to the graph, then recomputes every potentially
    affected shortcut from Property 3.1 bottom-up. Returns affected
    shortcuts as ``{(deeper, shallower): old_weight}``.
    """
    graph = sc.graph
    rank_key = sc.rank_key
    wup = sc.wup
    heap: LazyHeap[ShortcutKey] = LazyHeap()
    old_weights: dict[ShortcutKey, float] = {}

    for a, b, w_new in changes:
        old_edge = graph.set_weight(a, b, w_new)
        if w_new < old_edge:
            raise MaintenanceError(
                f"increase batch contains a decrease on edge ({a}, {b})"
            )
        v, w = sc.shortcut_key(a, b)
        # Only shortcuts whose weight was realised by this edge can change.
        if wup[v][w] == old_edge:
            heap.push((v, w), rank_key[v])

    down_sets = sc.down_sets
    while heap:
        (v, w), _ = heap.pop()
        # Recompute the shortcut weight from Equation (1).
        w_new = graph.weight(v, w) if graph.has_edge(v, w) else math.inf
        small, big = down_sets[v], down_sets[w]
        if len(small) > len(big):
            small, big = big, small
        for x in small:
            if x in big:
                candidate = sc.weight(x, v) + sc.weight(x, w)
                if candidate < w_new:
                    w_new = candidate
        old = wup[v][w]
        if old != w_new:
            row = wup[v]
            for other in sc.up[v]:
                if other == w:
                    continue
                lo, hi = sc.shortcut_key(w, other)
                # Triangles realising the old weight are potentially hit
                # (pairs removed by compaction were inf — no suspect).
                target = wup[lo].get(hi)
                if target is not None and target == old + row[other]:
                    heap.push((lo, hi), rank_key[lo])
            old_weights.setdefault((v, w), old)
            wup[v][w] = w_new
    return old_weights


# ---------------------------------------------------------------------------
# Label maintenance (Algorithms 4 and 5)
# ---------------------------------------------------------------------------

def seed_decrease(
    hu: UpdateHierarchy,
    labels: HierarchicalLabelling,
    affected: dict[ShortcutKey, float],
) -> tuple[list[tuple[int, int]], set[tuple[int, int]]]:
    """Phase 1 of Algorithm 4: apply ancestor-side label improvements.

    For each affected shortcut ``(v, w)`` with new weight ``w_new``,
    relaxes ``L_v[i] <- w_new + L_w[i]`` over ``i <= tau(w)``. Returns the
    improved ``(v, i)`` pairs (seeds for the descendant phase, in
    application order, possibly repeated) and the same pairs as a set
    (the distinct changed entries so far).
    """
    tau = hu.tau
    labels.ensure_writable()
    arrays = labels.views()
    seeds: list[tuple[int, int]] = []
    for (v, w), _old in affected.items():
        w_new = hu.wup[v][w]
        tw = int(tau[w])
        row = arrays[v]
        if w_new < row[tw]:
            candidate = w_new + arrays[w]
            segment = row[: tw + 1]
            improved = candidate < segment
            if improved.any():
                np.minimum(segment, candidate, out=segment)
                for i in np.nonzero(improved)[0].tolist():
                    seeds.append((v, int(i)))
    return seeds, set(seeds)


def maintain_labels_decrease(
    hu: UpdateHierarchy,
    labels: HierarchicalLabelling,
    affected: dict[ShortcutKey, float],
) -> MaintenanceStats:
    """Algorithm 4 — DHL- label maintenance under weight decrease."""
    tau = hu.tau
    tau_key = hu.tau_key
    labels.ensure_writable()
    arrays = labels.views()
    seeds, changed_entries = seed_decrease(hu, labels, affected)
    stats = MaintenanceStats(
        shortcuts_changed=len(affected),
        affected_shortcuts=affected,
    )
    heap: LazyHeap[tuple[int, int]] = LazyHeap()
    for v, i in seeds:
        heap.push((v, i), tau_key[v])

    down = hu.down
    while heap:
        (v, i), _ = heap.pop()
        stats.entries_processed += 1
        value = arrays[v][i]
        tv = int(tau[v])
        for u in down[v]:
            row = arrays[u]
            candidate = row[tv] + value
            if candidate < row[i]:
                row[i] = candidate
                changed_entries.add((int(u), i))
                heap.push((u, i), tau_key[u])
    stats.labels_changed = len(changed_entries)
    stats.affected_labels = {v for v, _ in changed_entries}
    return stats


def seed_increase(
    hu: UpdateHierarchy,
    labels: HierarchicalLabelling,
    affected: dict[ShortcutKey, float],
) -> list[tuple[int, int]]:
    """Phase 1 of Algorithm 5: find label entries realised by old weights.

    An entry ``L_v[i]`` is suspect when the chain through affected
    shortcut ``(v, w)`` with its *old* weight realised the stored value.
    Labels are not modified here.
    """
    tau = hu.tau
    arrays = labels.views()
    seeds: list[tuple[int, int]] = []
    for (v, w), old in affected.items():
        tw = int(tau[w])
        row = arrays[v]
        if old == row[tw] or (math.isinf(old) and math.isinf(row[tw])):
            candidate = old + arrays[w]
            segment = row[: tw + 1]
            matches = candidate == segment
            # inf == inf + x: unreachable entries stay suspect as well.
            matches |= np.isinf(candidate) & np.isinf(segment)
            for i in np.nonzero(matches)[0].tolist():
                seeds.append((v, int(i)))
    return seeds


def maintain_labels_increase(
    hu: UpdateHierarchy,
    labels: HierarchicalLabelling,
    affected: dict[ShortcutKey, float],
) -> MaintenanceStats:
    """Algorithm 5 — DHL+ label maintenance under weight increase.

    Support-free: every suspect entry is recomputed from up-neighbour
    labels; strictly increased entries trigger a descendant sweep guarded
    by path-sum equality.
    """
    tau = hu.tau
    tau_key = hu.tau_key
    labels.ensure_writable()
    arrays = labels.views()
    stats = MaintenanceStats(
        shortcuts_changed=len(affected), affected_shortcuts=affected
    )
    heap: LazyHeap[tuple[int, int]] = LazyHeap()
    for v, i in seed_increase(hu, labels, affected):
        heap.push((v, i), tau_key[v])

    up = hu.up
    down = hu.down
    wup = hu.wup
    while heap:
        (v, i), _ = heap.pop()
        stats.entries_processed += 1
        row = arrays[v]
        w_new = math.inf
        weights_v = wup[v]
        for w in up[v]:
            if tau[w] >= i:
                candidate = weights_v[w] + arrays[w][i]
                if candidate < w_new:
                    w_new = candidate
        old = row[i]
        if w_new > old:
            tv = int(tau[v])
            for u in down[v]:
                urow = arrays[u]
                chained = urow[tv] + old
                if chained == urow[i] or (
                    math.isinf(chained) and math.isinf(urow[i])
                ):
                    heap.push((u, i), tau_key[u])
            stats.labels_changed += 1
        if w_new != old:
            stats.affected_labels.add(v)
        row[i] = w_new
    return stats


# ---------------------------------------------------------------------------
# End-to-end drivers
# ---------------------------------------------------------------------------

def apply_decrease(
    hu: UpdateHierarchy,
    labels: HierarchicalLabelling,
    changes: list[WeightChange],
) -> MaintenanceStats:
    """Full DHL- update: maintain H_U (Alg. 2) then L (Alg. 4)."""
    affected = maintain_shortcuts_decrease(hu, changes)
    return maintain_labels_decrease(hu, labels, affected)


def apply_increase(
    hu: UpdateHierarchy,
    labels: HierarchicalLabelling,
    changes: list[WeightChange],
) -> MaintenanceStats:
    """Full DHL+ update: maintain H_U (Alg. 3) then L (Alg. 5)."""
    affected = maintain_shortcuts_increase(hu, changes)
    return maintain_labels_increase(hu, labels, affected)
