"""Array-native dynamic maintenance — frontier-batched Algorithms 2-5.

The scalar reference in :mod:`repro.labelling.maintenance` processes one
shortcut or label entry per heap pop. These kernels reformulate the same
algorithms as **frontier-batched sweeps** over the flat CSR stores:

* **Shortcut decrease** (Algorithm 2) is a monotone min-relaxation, so
  it runs as chaotic label-correcting *rounds*: every active shortcut
  relaxes against its owner's whole up-row in one ragged broadcast,
  target slots resolve with one ``searchsorted`` over the global
  slot-key table, conflicting candidates min-reduce with
  ``np.minimum.reduceat``, and the strictly-improved slots form the next
  round's frontier. Convergence and the final weights are order
  independent (any improvement re-activates its slot), so the fixpoint
  matches the reference's rank-ordered heap exactly.
* **Shortcut increase** (Algorithm 3) must recompute each suspect from
  *final* deeper weights, so it keeps the bottom-up rank order (one
  vertex per level — ranks are a permutation) but processes all of a
  vertex's suspects at once: the Property-3.1 recompute resolves the
  common down-neighbourhoods with a sorted-intersection membership test
  over the down-CSR (no Python set probing), and the equality-guarded
  suspect propagation scans every (suspect, row partner) triangle in one
  vectorised pass.
* **Labels** (Algorithms 4/5) bucket the active entry frontier by the
  hierarchy rank ``tau`` (top-down). All entries of a level relax into
  their descendants with vectorised gathers straight from the flat label
  ``values`` buffer via
  :meth:`~repro.labelling.labels.HierarchicalLabelling.relax_entries` /
  :meth:`~repro.labelling.labels.HierarchicalLabelling.recompute_entries`.
  Same-``tau`` vertices are incomparable (no shortcut joins them), so a
  level's entries are independent; reads only touch strictly shallower
  levels (already final) and writes only propagate strictly deeper —
  the level sweep is observationally equivalent to the heap order.

The label kernels use the shortcut-weight relaxation
``w(u, v) + L_v[i]`` (Lemma 6.3) like the column-parallel Algorithms
6/7, instead of the reference scalar path's label-entry relaxation;
both reach the same fixpoint, so final labels, change counts and
affected sets match the reference exactly — only the intermediate
``entries_processed`` search-effort counter may differ.

Stats semantics match the reference: ``affected_shortcuts`` maps each
changed shortcut to the *earliest* weight it held in the batch;
``labels_changed`` counts distinct entries whose value changed.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.exceptions import MaintenanceError, StructuralFallbackRequired
from repro.labelling.labels import HierarchicalLabelling
from repro.labelling.maintenance import (
    MaintenanceStats,
    ShortcutKey,
    WeightChange,
)
from repro.observability.phases import phase

__all__ = [
    "shortcuts_decrease_array",
    "shortcuts_increase_array",
    "labels_decrease_array",
    "labels_increase_array",
    "apply_decrease_array",
    "apply_increase_array",
]


def _expand(counts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Ragged-expansion helpers: (source index, within-row offset) arrays."""
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    ends = np.cumsum(counts)
    rep = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    ramp = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    return rep, ramp


def _segment_starts(sorted_keys: np.ndarray) -> np.ndarray:
    """First index of each run in a sorted key array."""
    first = np.empty(len(sorted_keys), dtype=bool)
    first[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=first[1:])
    return np.nonzero(first)[0]


def _affected_arrays(
    csr, affected: dict[ShortcutKey, float]
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """``(lo, hi, old, slot)`` arrays for an affected-shortcut dict."""
    count = len(affected)
    lo = np.fromiter((k[0] for k in affected), np.int64, count)
    hi = np.fromiter((k[1] for k in affected), np.int64, count)
    old = np.fromiter(affected.values(), np.float64, count)
    return lo, hi, old, csr.slots_of(lo, hi)


# ---------------------------------------------------------------------------
# Shortcut maintenance (Algorithms 2 and 3)
# ---------------------------------------------------------------------------

def shortcuts_decrease_array(
    sc, changes: list[WeightChange]
) -> dict[ShortcutKey, float]:
    """Algorithm 2 as chaotic min-relaxation rounds over the CSR store."""
    graph = sc.graph
    csr = sc.csr
    weights = sc.up_weights
    n = csr.n
    indptr, indices = csr.indptr, csr.indices
    ranks, owners, slot_keys = csr.ranks, csr.owners, csr.slot_keys
    old_weights: dict[ShortcutKey, float] = {}

    seeds: list[int] = []
    with phase("decrease.seed"):
        for a, b, w_new in changes:
            old_edge = graph.set_weight(a, b, w_new)
            if w_new > old_edge:
                raise MaintenanceError(
                    f"decrease batch contains an increase on edge ({a}, {b})"
                )
            lo, hi = sc.shortcut_key(a, b)
            slot = csr.slot_of(lo, hi)
            if weights[slot] > w_new:
                old_weights.setdefault((lo, hi), float(weights[slot]))
                weights[slot] = w_new
                seeds.append(slot)

    frontier = np.unique(np.asarray(seeds, dtype=np.int64))
    while len(frontier):
        with phase("decrease.relax_round"):
            slot_owner = owners[frontier]
            deg = indptr[slot_owner + 1] - indptr[slot_owner]
            rep, ramp = _expand(deg)
            if not len(rep):
                break
            active = frontier[rep]
            legs = indptr[slot_owner][rep] + ramp
            keep = legs != active
            active, legs = active[keep], legs[keep]
            if not len(active):
                break
            cand = weights[active] + weights[legs]
            # Target = the (shortcut endpoint, leg endpoint) pair, keyed by
            # the deeper endpoint's id and the shallower one's rank.
            ra, rb = ranks[active], ranks[legs]
            lo_v = np.where(ra < rb, indices[active], indices[legs])
            keys = lo_v * n + np.maximum(ra, rb)
            tslots = np.searchsorted(slot_keys, keys)
            found = slot_keys[np.minimum(tslots, len(slot_keys) - 1)] == keys
            if not found.all():
                # Compaction drops inf slots, so a candidate may target a
                # missing pair. An inf candidate is harmless (it could
                # never win a minimum) and is simply dropped. A *finite*
                # candidate cannot arise from pure weight decreases (both
                # legs finite now means both were finite — hence the
                # target too — when the store was compacted); only an
                # insertion-seeded sweep can produce one, and the store
                # has no slot to absorb it: hand over to the rebuild
                # fallback.
                if np.isfinite(cand[~found]).any():
                    raise StructuralFallbackRequired(
                        "decrease sweep reached a compacted shortcut slot"
                    )
                tslots, cand = tslots[found], cand[found]
                if not len(tslots):
                    break

            sort = np.argsort(tslots, kind="stable")
            ts, cs = tslots[sort], cand[sort]
            seg = _segment_starts(ts)
            uts = ts[seg]
            mins = np.minimum.reduceat(cs, seg)
            improved = mins < weights[uts]
            uts = uts[improved]
            if not len(uts):
                break
            for lo_i, hi_i, old in zip(
                owners[uts].tolist(), indices[uts].tolist(), weights[uts].tolist()
            ):
                old_weights.setdefault((lo_i, hi_i), old)
            weights[uts] = mins[improved]
            frontier = uts
    return old_weights


def shortcuts_increase_array(
    sc, changes: list[WeightChange]
) -> dict[ShortcutKey, float]:
    """Algorithm 3 as bottom-up dependency-layer sweeps.

    A suspect's Property-3.1 recompute reads only slots owned by its
    deeper endpoint's down-neighbours, so each round processes every
    pending suspect whose owner has **no pending down-neighbour** — a
    topological layer, resolved with one membership test. The layer's
    recomputes then run as a single batch: triangle legs resolve through
    the slot-key table (``x`` is a common down-neighbour of ``v`` and
    ``w`` iff the key ``(x, v)`` exists and ``x`` sits in ``w``'s down
    row — a sorted intersection over the down-CSR), and per-suspect
    minima reduce with ``np.minimum.reduceat``. Suspects activated into
    an already-processed owner simply re-enter a later round; the
    equality guard re-delivers every realisation, so the fixpoint
    matches the reference's strict rank order.
    """
    graph = sc.graph
    csr = sc.csr
    weights = sc.up_weights
    n = csr.n
    rank = sc.rank
    indptr, indices = csr.indptr, csr.indices
    ranks, owners, slot_keys = csr.ranks, csr.owners, csr.slot_keys
    down_indptr, down_indices = csr.down_indptr, csr.down_indices
    down_slots = csr.down_slots
    old_weights: dict[ShortcutKey, float] = {}

    seeds: list[int] = []
    with phase("increase.seed"):
        for a, b, w_new in changes:
            old_edge = graph.set_weight(a, b, w_new)
            if w_new < old_edge:
                raise MaintenanceError(
                    f"increase batch contains a decrease on edge ({a}, {b})"
                )
            lo, hi = sc.shortcut_key(a, b)
            slot = csr.slot_of(lo, hi)
            # Only shortcuts whose weight was realised by this edge can
            # change.
            if weights[slot] == old_edge:
                seeds.append(slot)

    pending = np.unique(np.asarray(seeds, dtype=np.int64))
    while len(pending):
        with phase("increase.dependency_layer"):
            # Topological layer: owners none of whose down-neighbours are
            # themselves pending (the deepest pending owner always is, so
            # every round makes progress).
            p_owner = owners[pending]
            layer_owners = np.unique(p_owner)
            odeg = down_indptr[layer_owners + 1] - down_indptr[layer_owners]
            rep, ramp = _expand(odeg)
            blocked = np.zeros(len(layer_owners), dtype=bool)
            if len(rep):
                xs = down_indices[down_indptr[layer_owners][rep] + ramp]
                pos = np.searchsorted(layer_owners, xs)
                member = (
                    layer_owners[np.minimum(pos, len(layer_owners) - 1)] == xs
                )
                if member.any():
                    blocked[np.unique(rep[member])] = True
            ready = layer_owners[~blocked]
            take = np.isin(p_owner, ready)
            slots = pending[take]
            rest = pending[~take]

            vs = owners[slots]
            ws = indices[slots]
            # Property 3.1 recompute for the whole layer: direct edge
            # weight min-combined with triangles over the common down
            # neighbourhood.
            w_new = np.fromiter(
                (
                    graph.weight(v, w) if graph.has_edge(v, w) else math.inf
                    for v, w in zip(vs.tolist(), ws.tolist())
                ),
                np.float64,
                len(slots),
            )
            ddeg = down_indptr[ws + 1] - down_indptr[ws]
            rep, ramp = _expand(ddeg)
            if len(rep):
                didx = down_indptr[ws][rep] + ramp
                xs = down_indices[didx]
                # x qualifies iff shortcut (x, v) exists: one global key
                # probe.
                keys = xs * n + rank[vs][rep]
                pos = np.searchsorted(slot_keys, keys)
                found = slot_keys[np.minimum(pos, len(slot_keys) - 1)] == keys
                if found.any():
                    rep_f = rep[found]
                    triangles = (
                        weights[pos[found]] + weights[down_slots[didx[found]]]
                    )
                    seg = _segment_starts(rep_f)
                    mins = np.minimum.reduceat(triangles, seg)
                    urep = rep_f[seg]
                    w_new[urep] = np.minimum(w_new[urep], mins)

            old = weights[slots]
            changed = w_new != old
            next_chunks = [rest]
            if changed.any():
                ch = slots[changed]
                ch_old = old[changed]
                ch_owner = vs[changed]
                # Equality-guarded propagation: triangles through the owner
                # that realised a changed suspect's old weight mark deeper
                # suspects. All legs read pre-write weights, which covers
                # every realisation the reference's sequential order covers
                # (the first side processed always sees the other leg old).
                deg = indptr[ch_owner + 1] - indptr[ch_owner]
                rep2, ramp2 = _expand(deg)
                if len(rep2):
                    legs = indptr[ch_owner][rep2] + ramp2
                    keep = legs != ch[rep2]
                    legs = legs[keep]
                    rep2 = rep2[keep]
                    cand_old = ch_old[rep2] + weights[legs]
                    ra = ranks[ch[rep2]]
                    rb = ranks[legs]
                    lo_v = np.where(ra < rb, indices[ch[rep2]], indices[legs])
                    tkeys = lo_v * n + np.maximum(ra, rb)
                    tslots = np.searchsorted(slot_keys, tkeys)
                    # Pairs removed by compaction were inf — there is no
                    # suspect behind them to re-deliver; drop the probes.
                    tfound = (
                        slot_keys[np.minimum(tslots, len(slot_keys) - 1)]
                        == tkeys
                    )
                    tslots = tslots[tfound]
                    cand_old = cand_old[tfound]
                    hits = tslots[weights[tslots] == cand_old]
                    if len(hits):
                        next_chunks.append(hits)
                for lo_i, hi_i, old_w in zip(
                    ch_owner.tolist(), indices[ch].tolist(), ch_old.tolist()
                ):
                    old_weights.setdefault((lo_i, hi_i), old_w)
                weights[ch] = w_new[changed]
            pending = (
                np.unique(np.concatenate(next_chunks))
                if len(next_chunks) > 1
                else rest
            )
    return old_weights


# ---------------------------------------------------------------------------
# Label maintenance (Algorithms 4 and 5, tau-level sweeps)
# ---------------------------------------------------------------------------

class _EntryFrontier:
    """Tau-keyed label-entry frontier: ``(vertex, column)`` batches."""

    __slots__ = ("_tau", "_pending", "_heap")

    def __init__(self, tau: np.ndarray):
        self._tau = tau
        self._pending: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}
        self._heap: list[int] = []

    def __bool__(self) -> bool:
        return bool(self._heap)

    def activate(self, verts: np.ndarray, cols: np.ndarray) -> None:
        if not len(verts):
            return
        levels = self._tau[verts]
        sort = np.argsort(levels, kind="stable")
        verts, cols, levels = verts[sort], cols[sort], levels[sort]
        bounds = _segment_starts(levels).tolist()
        bounds.append(len(levels))
        for bi in range(len(bounds) - 1):
            lo, hi = bounds[bi], bounds[bi + 1]
            level = int(levels[lo])
            bucket = self._pending.get(level)
            if bucket is None:
                self._pending[level] = [(verts[lo:hi], cols[lo:hi])]
                heapq.heappush(self._heap, level)
            else:
                bucket.append((verts[lo:hi], cols[lo:hi]))

    def pop(self, offsets: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Next level's entries, deduplicated by flat position."""
        level = heapq.heappop(self._heap)
        chunks = self._pending.pop(level)
        if len(chunks) == 1:
            verts, cols = chunks[0]
        else:
            verts = np.concatenate([c[0] for c in chunks])
            cols = np.concatenate([c[1] for c in chunks])
        pos = offsets[verts] + cols
        upos, uidx = np.unique(pos, return_index=True)
        return verts[uidx], cols[uidx], upos


def _seed_decrease_batch(
    store, labels: HierarchicalLabelling, affected: dict[ShortcutKey, float]
) -> np.ndarray:
    """Batched phase 1 of Algorithm 4: ancestor-side improvements.

    Applies ``L_lo[i] <- min(L_lo[i], w_new + L_hi[i])`` for every
    affected shortcut in one ragged scatter-min. Candidates read the
    phase's pre-state; any cross-pair chaining the sequential reference
    would exploit is re-delivered by the descendant sweep (the sweep
    relaxation is the same shortcut-weight chain), so the fixpoint is
    unchanged. Returns the improved flat positions.
    """
    values, offsets = labels.values, labels.offsets
    tau = store.tau
    weights = store.up_weights
    lo, hi, _, slots = _affected_arrays(store.csr, affected)
    w_new = weights[slots]
    tw = tau[hi]
    mask = w_new < values[offsets[lo] + tw]
    if not mask.any():
        return np.empty(0, dtype=np.int64)
    lo, hi, w_new, tw = lo[mask], hi[mask], w_new[mask], tw[mask]
    rep, ramp = _expand(tw + 1)
    cand = w_new[rep] + values[offsets[hi][rep] + ramp]
    return labels.relax_entries(offsets[lo][rep] + ramp, cand)


def _seed_increase_batch(
    store, labels: HierarchicalLabelling, affected: dict[ShortcutKey, float]
) -> tuple[np.ndarray, np.ndarray]:
    """Batched phase 1 of Algorithm 5: entries realised by old weights.

    Read-only; returns suspect ``(verts, cols)`` (exactly the reference
    seed set — equality tests run against the same untouched labels).
    """
    values, offsets = labels.values, labels.offsets
    tau = store.tau
    lo, hi, old, _ = _affected_arrays(store.csr, affected)
    tw = tau[hi]
    direct = values[offsets[lo] + tw]
    mask = (old == direct) | (np.isinf(old) & np.isinf(direct))
    if not mask.any():
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    lo, hi, old, tw = lo[mask], hi[mask], old[mask], tw[mask]
    rep, ramp = _expand(tw + 1)
    cand = old[rep] + values[offsets[hi][rep] + ramp]
    segment = values[offsets[lo][rep] + ramp]
    # inf == inf covers the unreachable-stays-suspect case.
    match = cand == segment
    return lo[rep][match], ramp[match]


def labels_decrease_array(
    store,
    labels: HierarchicalLabelling,
    affected: dict[ShortcutKey, float],
) -> MaintenanceStats:
    """Algorithm 4 — DHL- label maintenance as a top-down level sweep.

    *store* is any CSR shortcut store exposing ``tau``, ``csr`` and
    ``up_weights`` (the update hierarchy, or a directed direction view).
    """
    labels.ensure_writable()
    offsets = labels.offsets
    values = labels.values
    tau = store.tau
    csr = store.csr
    weights = store.up_weights
    down_indptr, down_indices = csr.down_indptr, csr.down_indices
    down_slots = csr.down_slots

    stats = MaintenanceStats(
        shortcuts_changed=len(affected), affected_shortcuts=affected
    )
    changed_positions: set[int] = set()
    frontier = _EntryFrontier(tau)
    if affected:
        with phase("decrease.label_seed"):
            seeded = _seed_decrease_batch(store, labels, affected)
        if len(seeded):
            changed_positions.update(seeded.tolist())
            frontier.activate(*labels.entries_of_positions(seeded))

    while frontier:
        with phase("decrease.label_sweep"):
            verts, cols, upos = frontier.pop(offsets)
            stats.entries_processed += len(verts)
            vals = values[upos]
            deg = down_indptr[verts + 1] - down_indptr[verts]
            rep, ramp = _expand(deg)
            if not len(rep):
                continue
            didx = down_indptr[verts][rep] + ramp
            targets = down_indices[didx]
            cand = weights[down_slots[didx]] + vals[rep]
            improved = labels.relax_entries(offsets[targets] + cols[rep], cand)
            if len(improved):
                changed_positions.update(improved.tolist())
                frontier.activate(*labels.entries_of_positions(improved))

    stats.labels_changed = len(changed_positions)
    if changed_positions:
        changed = np.fromiter(
            changed_positions, np.int64, len(changed_positions)
        )
        verts, _ = labels.entries_of_positions(changed)
        stats.affected_labels = set(np.unique(verts).tolist())
    return stats


def labels_increase_array(
    store,
    labels: HierarchicalLabelling,
    affected: dict[ShortcutKey, float],
) -> MaintenanceStats:
    """Algorithm 5 — DHL+ label maintenance as a top-down level sweep.

    Every suspect entry of a level is recomputed from its up-neighbour
    labels in one ragged gather + segmented min; entries that strictly
    increased seed deeper suspects through the equality-guarded down
    expansion before the level's values are written back.
    """
    labels.ensure_writable()
    offsets = labels.offsets
    values = labels.values
    tau = store.tau
    csr = store.csr
    weights = store.up_weights
    indptr, indices = csr.indptr, csr.indices
    down_indptr, down_indices = csr.down_indptr, csr.down_indices
    down_slots = csr.down_slots

    stats = MaintenanceStats(
        shortcuts_changed=len(affected), affected_shortcuts=affected
    )
    frontier = _EntryFrontier(tau)
    if affected:
        with phase("increase.label_seed"):
            frontier.activate(*_seed_increase_batch(store, labels, affected))

    while frontier:
        with phase("increase.label_sweep"):
            verts, cols, upos = frontier.pop(offsets)
            stats.entries_processed += len(verts)
            old_vals = values[upos]

            # Support-free recompute over the up rows (tau-guarded).
            deg = indptr[verts + 1] - indptr[verts]
            rep, ramp = _expand(deg)
            w_new = np.full(len(verts), np.inf)
            if len(rep):
                slots = indptr[verts][rep] + ramp
                ups = indices[slots]
                t_cols = cols[rep]
                valid = tau[ups] >= t_cols
                gather = offsets[ups] + np.where(valid, t_cols, 0)
                cand = np.where(valid, weights[slots] + values[gather], np.inf)
                nonzero = deg > 0
                seg_starts = (np.cumsum(deg) - deg)[nonzero]
                w_new[nonzero] = np.minimum.reduceat(cand, seg_starts)

            increased = w_new > old_vals
            changed = w_new != old_vals

            # Seed deeper suspects whose entry was realised through the
            # old value — checked against pre-write deeper labels, as in
            # the reference heap order.
            if increased.any():
                pv, pc, po = (
                    verts[increased],
                    cols[increased],
                    old_vals[increased],
                )
                ddeg = down_indptr[pv + 1] - down_indptr[pv]
                rep2, ramp2 = _expand(ddeg)
                if len(rep2):
                    didx = down_indptr[pv][rep2] + ramp2
                    targets = down_indices[didx]
                    chained = weights[down_slots[didx]] + po[rep2]
                    d_cols = pc[rep2]
                    hit = chained == values[offsets[targets] + d_cols]
                    if hit.any():
                        frontier.activate(targets[hit], d_cols[hit])

            labels.recompute_entries(upos, w_new)
            stats.labels_changed += int(increased.sum())
            if changed.any():
                stats.affected_labels.update(verts[changed].tolist())
    return stats


# ---------------------------------------------------------------------------
# End-to-end drivers
# ---------------------------------------------------------------------------

def apply_decrease_array(
    hu,
    labels: HierarchicalLabelling,
    changes: list[WeightChange],
) -> MaintenanceStats:
    """Full array-engine DHL- update: Algorithm 2 then Algorithm 4."""
    affected = shortcuts_decrease_array(hu, changes)
    return labels_decrease_array(hu, labels, affected)


def apply_increase_array(
    hu,
    labels: HierarchicalLabelling,
    changes: list[WeightChange],
) -> MaintenanceStats:
    """Full array-engine DHL+ update: Algorithm 3 then Algorithm 5."""
    affected = shortcuts_increase_array(hu, changes)
    return labels_increase_array(hu, labels, affected)
