"""Descriptive statistics of road networks.

Used by the dataset reports (Table 1 context) and by tests that assert
road-likeness of the synthetic generators: sparsity, degree shape,
approximate diameter and weighted eccentricity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph
from repro.graph.traversal import bfs_distances, eccentric_vertex

__all__ = ["NetworkMetrics", "network_metrics", "approximate_diameter"]


@dataclass(frozen=True)
class NetworkMetrics:
    """Summary statistics of one network."""

    num_vertices: int
    num_edges: int
    edge_vertex_ratio: float
    mean_degree: float
    max_degree: int
    degree_histogram: dict[int, int]
    hop_diameter_lb: int
    weighted_diameter_lb: float
    mean_edge_weight: float

    def as_dict(self) -> dict:
        return {
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "edge_vertex_ratio": self.edge_vertex_ratio,
            "mean_degree": self.mean_degree,
            "max_degree": self.max_degree,
            "degree_histogram": dict(self.degree_histogram),
            "hop_diameter_lb": self.hop_diameter_lb,
            "weighted_diameter_lb": self.weighted_diameter_lb,
            "mean_edge_weight": self.mean_edge_weight,
        }


def approximate_diameter(graph: Graph, sweeps: int = 3) -> tuple[int, float]:
    """Lower bounds on hop and weighted diameter via double sweeps.

    Returns ``(hop_diameter, weighted_diameter)``; exact on trees, a
    lower bound in general (the standard heuristic for large graphs).
    """
    if graph.num_vertices == 0:
        return 0, 0.0
    # Imported here: repro.baselines imports repro.graph, so a module-level
    # import would make the package import order observable (cycle).
    from repro.baselines.dijkstra import dijkstra

    peripheral = eccentric_vertex(graph, 0, sweeps=sweeps)
    hops = bfs_distances(graph, peripheral)
    hop_diameter = max(hops)
    dist = dijkstra(graph, peripheral)
    finite = dist[np.isfinite(dist)]
    weighted = float(finite.max()) if len(finite) else 0.0
    return hop_diameter, weighted


def network_metrics(graph: Graph) -> NetworkMetrics:
    """Compute the full metrics bundle for *graph*."""
    degrees = graph.degree_array()
    histogram: dict[int, int] = {}
    for d in degrees.tolist():
        histogram[d] = histogram.get(d, 0) + 1
    weights = [w for _, _, w in graph.edges() if math.isfinite(w)]
    hop_diameter, weighted_diameter = approximate_diameter(graph)
    n = graph.num_vertices
    return NetworkMetrics(
        num_vertices=n,
        num_edges=graph.num_edges,
        edge_vertex_ratio=graph.num_edges / n if n else 0.0,
        mean_degree=float(degrees.mean()) if n else 0.0,
        max_degree=int(degrees.max()) if n else 0,
        degree_histogram=histogram,
        hop_diameter_lb=hop_diameter,
        weighted_diameter_lb=weighted_diameter,
        mean_edge_weight=float(np.mean(weights)) if weights else 0.0,
    )
