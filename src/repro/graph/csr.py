"""Immutable CSR (compressed sparse row) snapshot of a graph.

The mutable dict-based :class:`~repro.graph.graph.Graph` is convenient for
weight updates but slow for whole-graph numeric passes. A CSR snapshot
provides contiguous numpy arrays for the partitioner's coarsening and
spectral phases, plus a bridge to :mod:`scipy.sparse`.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.graph import Graph

__all__ = ["CSRGraph"]


class CSRGraph:
    """CSR adjacency view: ``indptr``, ``indices``, ``weights`` arrays.

    Neighbour lists of vertex ``v`` live in
    ``indices[indptr[v]:indptr[v+1]]`` with matching ``weights`` entries.
    Optional per-vertex weights (``vertex_weights``) carry cluster sizes
    through the multilevel partitioner.
    """

    __slots__ = ("indptr", "indices", "weights", "vertex_weights")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        vertex_weights: np.ndarray | None = None,
    ):
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        if vertex_weights is None:
            vertex_weights = np.ones(len(indptr) - 1, dtype=np.int64)
        self.vertex_weights = vertex_weights

    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRGraph":
        n = graph.num_vertices
        degrees = graph.degree_array()
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        indices = np.empty(indptr[-1], dtype=np.int64)
        weights = np.empty(indptr[-1], dtype=np.float64)
        for v in range(n):
            start = indptr[v]
            for k, (u, w) in enumerate(graph.neighbors(v).items()):
                indices[start + k] = u
                weights[start + k] = w
        return cls(indptr, indices, weights)

    @property
    def num_vertices(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        """Undirected edge count (each edge stored twice)."""
        return len(self.indices) // 2

    def neighbors(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(neighbour_ids, weights)`` slices for vertex *v*."""
        lo, hi = self.indptr[v], self.indptr[v + 1]
        return self.indices[lo:hi], self.weights[lo:hi]

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    def to_scipy(self) -> sp.csr_matrix:
        """Symmetric scipy CSR matrix of edge weights."""
        n = self.num_vertices
        return sp.csr_matrix(
            (self.weights, self.indices, self.indptr), shape=(n, n)
        )

    def laplacian(self, unit_weights: bool = True) -> sp.csr_matrix:
        """Graph Laplacian ``D - A`` (unit or actual edge weights)."""
        adj = self.to_scipy()
        if unit_weights:
            adj = adj.copy()
            adj.data = np.ones_like(adj.data)
        degrees = np.asarray(adj.sum(axis=1)).ravel()
        return sp.diags(degrees).tocsr() - adj
