"""Graph serialization: DIMACS shortest-path format, edge lists, JSON.

The 9th DIMACS Implementation Challenge format is what the paper's USA
datasets ship in (``.gr`` arcs, ``.co`` coordinates); implementing it lets
the real road networks be plugged into this reproduction unchanged when
they are available. Synthetic suites round-trip through the same readers
so all code paths are exercised by tests.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, TextIO

import numpy as np

from repro.exceptions import GraphFormatError
from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph

__all__ = [
    "read_dimacs",
    "write_dimacs",
    "read_dimacs_coordinates",
    "write_dimacs_coordinates",
    "read_edge_list",
    "write_edge_list",
    "graph_to_json",
    "graph_from_json",
]


def _open_lines(source: str | Path | TextIO | Iterable[str]) -> Iterable[str]:
    """Accept a path, an open file object, or an iterable of lines."""
    if isinstance(source, (str, Path)):
        return Path(source).read_text().splitlines()
    if hasattr(source, "read"):
        return source.read().splitlines()  # type: ignore[union-attr]
    return source


def read_dimacs(source: str | Path | TextIO, undirected: bool = True) -> Graph | DiGraph:
    """Parse a DIMACS ``.gr`` file.

    DIMACS road networks list both directions of every road as separate
    arcs. With ``undirected=True`` (the paper's setting) arcs collapse into
    undirected edges keeping the minimum weight; otherwise a
    :class:`DiGraph` is returned.
    """
    n = None
    arcs: list[tuple[int, int, float]] = []
    declared_m = None
    for lineno, raw in enumerate(_open_lines(source), start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        parts = line.split()
        if parts[0] == "p":
            if len(parts) != 4 or parts[1] != "sp":
                raise GraphFormatError(f"line {lineno}: malformed problem line {line!r}")
            n, declared_m = int(parts[2]), int(parts[3])
        elif parts[0] == "a":
            if len(parts) != 4:
                raise GraphFormatError(f"line {lineno}: malformed arc line {line!r}")
            if n is None:
                raise GraphFormatError(f"line {lineno}: arc before problem line")
            u, v, w = int(parts[1]) - 1, int(parts[2]) - 1, float(parts[3])
            if not (0 <= u < n and 0 <= v < n):
                raise GraphFormatError(f"line {lineno}: vertex out of range in {line!r}")
            if u != v:  # DIMACS files occasionally carry self-loops; drop them
                arcs.append((u, v, w))
        else:
            raise GraphFormatError(f"line {lineno}: unknown record {parts[0]!r}")
    if n is None:
        raise GraphFormatError("missing problem line")
    if declared_m is not None and declared_m < len(arcs):
        raise GraphFormatError(
            f"problem line declares {declared_m} arcs but file has {len(arcs)}"
        )
    if undirected:
        return Graph.from_edges(n, arcs)
    return DiGraph.from_arcs(n, arcs)


def write_dimacs(graph: Graph | DiGraph, path: str | Path, comment: str = "") -> None:
    """Write a graph as a DIMACS ``.gr`` file (one arc per direction)."""
    if isinstance(graph, Graph):
        arcs = [(u, v, w) for u, v, w in graph.edges()]
        arcs += [(v, u, w) for u, v, w in graph.edges()]
    else:
        arcs = list(graph.arcs())
    lines = []
    if comment:
        lines.extend(f"c {text}" for text in comment.splitlines())
    lines.append(f"p sp {graph.num_vertices} {len(arcs)}")
    for u, v, w in arcs:
        value = int(w) if float(w).is_integer() else w
        lines.append(f"a {u + 1} {v + 1} {value}")
    Path(path).write_text("\n".join(lines) + "\n")


def read_dimacs_coordinates(source: str | Path | TextIO) -> np.ndarray:
    """Parse a DIMACS ``.co`` coordinate file into an ``(n, 2)`` array."""
    entries: dict[int, tuple[float, float]] = {}
    n = None
    for lineno, raw in enumerate(_open_lines(source), start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        parts = line.split()
        if parts[0] == "p":
            # "p aux sp co <n>"
            n = int(parts[-1])
        elif parts[0] == "v":
            if len(parts) != 4:
                raise GraphFormatError(f"line {lineno}: malformed vertex line {line!r}")
            entries[int(parts[1]) - 1] = (float(parts[2]), float(parts[3]))
        else:
            raise GraphFormatError(f"line {lineno}: unknown record {parts[0]!r}")
    if n is None:
        n = len(entries)
    coords = np.zeros((n, 2), dtype=np.float64)
    for v, (x, y) in entries.items():
        if not 0 <= v < n:
            raise GraphFormatError(f"coordinate vertex {v + 1} out of range")
        coords[v] = (x, y)
    return coords


def write_dimacs_coordinates(coords: np.ndarray, path: str | Path) -> None:
    """Write an ``(n, 2)`` coordinate array as a DIMACS ``.co`` file."""
    lines = [f"p aux sp co {len(coords)}"]
    for v, (x, y) in enumerate(coords):
        lines.append(f"v {v + 1} {int(x)} {int(y)}")
    Path(path).write_text("\n".join(lines) + "\n")


def read_edge_list(source: str | Path | TextIO) -> Graph:
    """Parse a whitespace edge list ``u v w`` (0-based) into a Graph."""
    edges = []
    n = 0
    for lineno, raw in enumerate(_open_lines(source), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 3:
            raise GraphFormatError(f"line {lineno}: expected 'u v w', got {line!r}")
        u, v, w = int(parts[0]), int(parts[1]), float(parts[2])
        n = max(n, u + 1, v + 1)
        edges.append((u, v, w))
    return Graph.from_edges(n, edges)


def write_edge_list(graph: Graph, path: str | Path) -> None:
    """Write a graph as a ``u v w`` edge list (0-based, one edge per line)."""
    lines = [f"{u} {v} {w:g}" for u, v, w in graph.edges()]
    Path(path).write_text("\n".join(lines) + "\n")


def graph_to_json(graph: Graph) -> str:
    """Serialise a graph (including coordinates) to a JSON string."""
    payload = {
        "n": graph.num_vertices,
        "edges": [[u, v, w] for u, v, w in graph.edges()],
        "coords": graph.coords.tolist() if graph.coords is not None else None,
    }
    return json.dumps(payload)


def graph_from_json(text: str) -> Graph:
    """Inverse of :func:`graph_to_json`."""
    try:
        payload = json.loads(text)
        coords = payload["coords"]
        return Graph.from_edges(
            payload["n"],
            [tuple(e) for e in payload["edges"]],
            np.asarray(coords, dtype=np.float64) if coords is not None else None,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise GraphFormatError(f"invalid graph JSON: {exc}") from exc
