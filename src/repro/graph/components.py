"""Connected-component utilities (finite-weight edges only).

Edges whose weight is ``inf`` represent logically deleted roads and do not
connect their endpoints for component purposes.
"""

from __future__ import annotations

import math
from collections import deque

from repro.graph.graph import Graph

__all__ = ["connected_components", "is_connected", "largest_component"]


def connected_components(graph: Graph) -> list[list[int]]:
    """Return the vertex lists of all connected components (BFS)."""
    n = graph.num_vertices
    seen = bytearray(n)
    components: list[list[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        seen[start] = 1
        queue = deque([start])
        comp = [start]
        while queue:
            v = queue.popleft()
            for u, w in graph.neighbors(v).items():
                if not seen[u] and math.isfinite(w):
                    seen[u] = 1
                    comp.append(u)
                    queue.append(u)
        components.append(comp)
    return components


def is_connected(graph: Graph) -> bool:
    """True when the graph has exactly one connected component."""
    if graph.num_vertices == 0:
        return True
    return len(connected_components(graph)) == 1


def largest_component(graph: Graph) -> tuple[Graph, list[int]]:
    """Induced subgraph on the largest component plus the id mapping."""
    components = connected_components(graph)
    biggest = max(components, key=len)
    return graph.induced_subgraph(sorted(biggest))
