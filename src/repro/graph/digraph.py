"""Directed weighted graph used by the Section 8 directed extension."""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.exceptions import EdgeNotFound, GraphError, VertexNotFound
from repro.graph.graph import Graph

__all__ = ["DiGraph"]

ArcTriple = tuple[int, int, float]


class DiGraph:
    """Directed weighted graph over vertices ``0..n-1``.

    Keeps both out- and in-adjacency so that reverse searches (needed for
    the backward labels of the directed DHL extension) are as cheap as
    forward ones.
    """

    __slots__ = ("_out", "_in", "_m", "coords")

    def __init__(self, n: int, coords: np.ndarray | None = None):
        if n < 0:
            raise GraphError("vertex count must be non-negative")
        self._out: list[dict[int, float]] = [{} for _ in range(n)]
        self._in: list[dict[int, float]] = [{} for _ in range(n)]
        self._m = 0
        if coords is not None:
            coords = np.asarray(coords, dtype=np.float64)
            if coords.shape != (n, 2):
                raise GraphError(f"coords must have shape ({n}, 2), got {coords.shape}")
        self.coords = coords

    @classmethod
    def from_arcs(cls, n: int, arcs: Iterable[ArcTriple]) -> "DiGraph":
        """Build from ``(u, v, w)`` arcs; duplicates keep the minimum weight."""
        g = cls(n)
        for u, v, w in arcs:
            if g.has_arc(u, v):
                if w < g.weight(u, v):
                    g.set_weight(u, v, w)
            else:
                g.add_arc(u, v, w)
        return g

    @classmethod
    def from_undirected(cls, graph: Graph) -> "DiGraph":
        """Symmetric digraph with one arc per direction of each edge."""
        g = cls(graph.num_vertices, graph.coords)
        for u, v, w in graph.edges():
            g.add_arc(u, v, w)
            g.add_arc(v, u, w)
        return g

    def copy(self) -> "DiGraph":
        """Deep copy (coordinates shared: immutable by use)."""
        g = DiGraph(self.num_vertices, self.coords)
        g._out = [dict(nbrs) for nbrs in self._out]
        g._in = [dict(nbrs) for nbrs in self._in]
        g._m = self._m
        return g

    @property
    def num_vertices(self) -> int:
        return len(self._out)

    @property
    def num_arcs(self) -> int:
        return self._m

    def __len__(self) -> int:
        return len(self._out)

    def vertices(self) -> range:
        return range(len(self._out))

    def out_neighbors(self, v: int) -> Mapping[int, float]:
        self._check_vertex(v)
        return self._out[v]

    def in_neighbors(self, v: int) -> Mapping[int, float]:
        self._check_vertex(v)
        return self._in[v]

    def arcs(self) -> Iterator[ArcTriple]:
        for u, nbrs in enumerate(self._out):
            for v, w in nbrs.items():
                yield u, v, w

    def has_arc(self, u: int, v: int) -> bool:
        self._check_vertex(u)
        self._check_vertex(v)
        return v in self._out[u]

    def weight(self, u: int, v: int) -> float:
        self._check_vertex(u)
        self._check_vertex(v)
        try:
            return self._out[u][v]
        except KeyError:
            raise EdgeNotFound(u, v) from None

    def add_arc(self, u: int, v: int, w: float) -> None:
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise GraphError(f"self-loop at vertex {u} not allowed")
        if not math.isfinite(w) or w < 0:
            raise GraphError(f"arc weight must be finite and non-negative, got {w!r}")
        if v in self._out[u]:
            raise GraphError(f"arc ({u}, {v}) already exists")
        self._out[u][v] = w
        self._in[v][u] = w
        self._m += 1

    def set_weight(self, u: int, v: int, w: float) -> float:
        """Update an existing arc's weight; returns the old weight."""
        old = self.weight(u, v)
        if w < 0 or math.isnan(w):
            raise GraphError(f"arc weight must be non-negative, got {w!r}")
        self._out[u][v] = w
        self._in[v][u] = w
        return old

    def remove_arc(self, u: int, v: int) -> float:
        """Physically remove an arc; returns its last weight.

        Used by shortcut-store compaction to make logical deletions
        permanent — most callers should prefer an infinite-weight
        :meth:`set_weight`, which the maintenance kernels understand.
        """
        old = self.weight(u, v)
        del self._out[u][v]
        del self._in[v][u]
        self._m -= 1
        return old

    def reversed(self) -> "DiGraph":
        """Return a new digraph with every arc reversed."""
        g = DiGraph(self.num_vertices, self.coords)
        for u, v, w in self.arcs():
            g.add_arc(v, u, w)
        return g

    def to_undirected(self) -> Graph:
        """Collapse to an undirected graph keeping min weight per pair."""
        g = Graph(self.num_vertices, self.coords)
        for u, v, w in self.arcs():
            if g.has_edge(u, v):
                if w < g.weight(u, v):
                    g.set_weight(u, v, w)
            else:
                g.add_edge(u, v, w)
        return g

    def is_symmetric(self) -> bool:
        """True when every arc has a reverse arc of equal weight."""
        return all(self._out[v].get(u) == w for u, v, w in self.arcs())

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        return f"DiGraph(n={self.num_vertices}, m={self.num_arcs})"

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < len(self._out):
            raise VertexNotFound(v)
