"""Breadth-first traversal helpers used by partitioning and generators."""

from __future__ import annotations

import math
from collections import deque
from typing import Sequence

from repro.graph.graph import Graph

__all__ = ["bfs_order", "bfs_distances", "eccentric_vertex"]


def bfs_order(graph: Graph, start: int) -> list[int]:
    """Vertices of *start*'s component in BFS order from *start*."""
    seen = bytearray(graph.num_vertices)
    seen[start] = 1
    order = [start]
    queue = deque([start])
    while queue:
        v = queue.popleft()
        for u, w in graph.neighbors(v).items():
            if not seen[u] and math.isfinite(w):
                seen[u] = 1
                order.append(u)
                queue.append(u)
    return order


def bfs_distances(graph: Graph, start: int) -> list[int]:
    """Hop distances from *start* (-1 for unreachable vertices)."""
    dist = [-1] * graph.num_vertices
    dist[start] = 0
    queue = deque([start])
    while queue:
        v = queue.popleft()
        for u, w in graph.neighbors(v).items():
            if dist[u] < 0 and math.isfinite(w):
                dist[u] = dist[v] + 1
                queue.append(u)
    return dist


def eccentric_vertex(graph: Graph, start: int, sweeps: int = 2) -> int:
    """Approximate peripheral vertex via repeated BFS sweeps.

    A standard double-sweep: BFS from *start*, jump to the farthest vertex,
    repeat. Peripheral vertices make good seeds for region-growing
    partitions.
    """
    current = start
    for _ in range(max(1, sweeps)):
        dist = bfs_distances(graph, current)
        current = max(range(graph.num_vertices), key=lambda v: dist[v])
    return current


def farthest_in(order: Sequence[int], dist: Sequence[int]) -> int:
    """Vertex of *order* maximising *dist* (helper for sweep variants)."""
    return max(order, key=lambda v: dist[v])
