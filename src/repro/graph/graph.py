"""Undirected weighted graph with mutable edge weights.

Vertices are the contiguous integers ``0..n-1``; adjacency is stored as one
neighbour->weight dict per vertex, which keeps weight updates O(1) and suits
the low, near-constant degrees of road networks. Optional per-vertex
coordinates support the geometric generators and the A* baseline.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.exceptions import EdgeNotFound, GraphError, VertexNotFound

__all__ = ["Graph"]

EdgeTriple = tuple[int, int, float]


class Graph:
    """Undirected weighted graph over vertices ``0..n-1``.

    Parameters
    ----------
    n:
        Number of vertices.
    coords:
        Optional ``(n, 2)`` array of planar coordinates.
    """

    __slots__ = ("_adj", "_m", "_version", "coords")

    def __init__(self, n: int, coords: np.ndarray | None = None):
        if n < 0:
            raise GraphError("vertex count must be non-negative")
        self._adj: list[dict[int, float]] = [{} for _ in range(n)]
        self._m = 0
        self._version = 0
        if coords is not None:
            coords = np.asarray(coords, dtype=np.float64)
            if coords.shape != (n, 2):
                raise GraphError(f"coords must have shape ({n}, 2), got {coords.shape}")
        self.coords = coords

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: Iterable[EdgeTriple],
        coords: np.ndarray | None = None,
    ) -> "Graph":
        """Build a graph from ``(u, v, w)`` triples.

        Duplicate edges keep the minimum weight, mirroring how parallel road
        segments collapse in distance computations. Infinite weights are
        accepted and stored as logically deleted edges.
        """
        g = cls(n, coords)
        for u, v, w in edges:
            if g.has_edge(u, v):
                if w < g.weight(u, v):
                    g.set_weight(u, v, w)
            elif math.isfinite(w):
                g.add_edge(u, v, w)
            else:  # logically deleted edge: allocate the slot, then mark
                g.add_edge(u, v, 0.0)
                g.set_weight(u, v, w)
        return g

    def copy(self) -> "Graph":
        """Deep copy (coordinates are shared: they are immutable by use)."""
        g = Graph(self.num_vertices, self.coords)
        g._adj = [dict(nbrs) for nbrs in self._adj]
        g._m = self._m
        return g

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self._m

    @property
    def version(self) -> int:
        """Mutation counter: bumped by every weight or topology change.

        Lets derived caches (e.g. the compiled engine's per-slot direct
        edge weights) detect out-of-band mutations cheaply instead of
        re-reading the adjacency.
        """
        return self._version

    def __len__(self) -> int:
        return len(self._adj)

    def vertices(self) -> range:
        return range(len(self._adj))

    def degree(self, v: int) -> int:
        self._check_vertex(v)
        return len(self._adj[v])

    def neighbors(self, v: int) -> Mapping[int, float]:
        """Read-only view of ``{neighbour: weight}`` for vertex *v*."""
        self._check_vertex(v)
        return self._adj[v]

    def edges(self) -> Iterator[EdgeTriple]:
        """Yield each undirected edge once as ``(u, v, w)`` with ``u < v``."""
        for u, nbrs in enumerate(self._adj):
            for v, w in nbrs.items():
                if u < v:
                    yield u, v, w

    def has_edge(self, u: int, v: int) -> bool:
        self._check_vertex(u)
        self._check_vertex(v)
        return v in self._adj[u]

    def weight(self, u: int, v: int) -> float:
        """Weight of edge ``(u, v)``; raises :class:`EdgeNotFound` if absent."""
        self._check_vertex(u)
        self._check_vertex(v)
        try:
            return self._adj[u][v]
        except KeyError:
            raise EdgeNotFound(u, v) from None

    def total_weight(self) -> float:
        return sum(w for _, _, w in self.edges())

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, w: float) -> None:
        """Insert edge ``(u, v)`` with weight *w* (must not already exist)."""
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise GraphError(f"self-loop at vertex {u} not allowed")
        if not math.isfinite(w) or w < 0:
            # Infinite weights are reserved for logical deletions, which go
            # through set_weight so the edge slot stays allocated.
            raise GraphError(f"edge weight must be finite and non-negative, got {w!r}")
        if v in self._adj[u]:
            raise GraphError(f"edge ({u}, {v}) already exists")
        self._adj[u][v] = w
        self._adj[v][u] = w
        self._m += 1
        self._version += 1

    def set_weight(self, u: int, v: int, w: float) -> float:
        """Update the weight of an existing edge; returns the old weight.

        ``w`` may be ``math.inf`` to represent a logically deleted road
        (Section 8 of the paper); the adjacency slot is kept so that the
        weight-independent shortcut structure remains valid.
        """
        old = self.weight(u, v)
        if w < 0 or math.isnan(w):
            raise GraphError(f"edge weight must be non-negative, got {w!r}")
        self._adj[u][v] = w
        self._adj[v][u] = w
        self._version += 1
        return old

    def remove_edge(self, u: int, v: int) -> float:
        """Physically remove edge ``(u, v)``; returns its weight."""
        w = self.weight(u, v)
        del self._adj[u][v]
        del self._adj[v][u]
        self._m -= 1
        self._version += 1
        return w

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def induced_subgraph(self, vertices: Iterable[int]) -> tuple["Graph", list[int]]:
        """Return the induced subgraph on *vertices* with compact local ids.

        Returns ``(subgraph, local_to_global)``; vertex ``i`` of the
        subgraph corresponds to ``local_to_global[i]`` in this graph.
        """
        local_to_global = list(vertices)
        index = {g: l for l, g in enumerate(local_to_global)}
        if len(index) != len(local_to_global):
            raise GraphError("induced_subgraph got duplicate vertices")
        coords = None
        if self.coords is not None:
            coords = self.coords[local_to_global]
        sub = Graph(len(local_to_global), coords)
        for g_u in local_to_global:
            l_u = index[g_u]
            for g_v, w in self._adj[g_u].items():
                l_v = index.get(g_v)
                if l_v is not None and l_u < l_v:
                    if math.isfinite(w):
                        sub.add_edge(l_u, l_v, w)
                    else:  # preserve logically deleted edges as deleted
                        sub.add_edge(l_u, l_v, 0.0)
                        sub.set_weight(l_u, l_v, w)
        return sub, local_to_global

    def degree_array(self) -> np.ndarray:
        return np.fromiter((len(nbrs) for nbrs in self._adj), dtype=np.int64, count=len(self._adj))

    def weights_are_integral(self) -> bool:
        """True when every finite edge weight is an integer value.

        Integer weights guarantee exact equality of path sums, which the
        increase-side maintenance algorithms rely on for pruning.
        """
        return all(
            (not math.isfinite(w)) or float(w).is_integer() for _, _, w in self.edges()
        )

    def validate(self) -> None:
        """Check internal symmetry invariants; raises GraphError on failure."""
        count = 0
        for u, nbrs in enumerate(self._adj):
            for v, w in nbrs.items():
                if u == v:
                    raise GraphError(f"self-loop stored at {u}")
                if self._adj[v].get(u) != w:
                    raise GraphError(f"asymmetric edge ({u}, {v})")
                count += 1
        if count != 2 * self._m:
            raise GraphError(f"edge count mismatch: counted {count // 2}, stored {self._m}")

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        return f"Graph(n={self.num_vertices}, m={self.num_edges})"

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < len(self._adj):
            raise VertexNotFound(v)
