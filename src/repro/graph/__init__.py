"""Graph substrate: data structures, IO, generators and traversals.

The library models a road network as an undirected weighted graph with
vertices ``0..n-1`` and mutable edge weights (:class:`Graph`), matching the
paper's dynamic-road-network model in which structure is stable and only
weights change. A directed variant (:class:`DiGraph`) backs the Section 8
extension.
"""

from repro.graph.graph import Graph
from repro.graph.digraph import DiGraph
from repro.graph.csr import CSRGraph
from repro.graph.components import connected_components, is_connected, largest_component
from repro.graph.generators import (
    grid_network,
    delaunay_network,
    highway_network,
    random_connected_graph,
)
from repro.graph.io import (
    read_dimacs,
    write_dimacs,
    read_edge_list,
    write_edge_list,
    graph_to_json,
    graph_from_json,
)
from repro.graph.traversal import bfs_order, bfs_distances, eccentric_vertex
from repro.graph.metrics import NetworkMetrics, network_metrics, approximate_diameter

__all__ = [
    "Graph",
    "DiGraph",
    "CSRGraph",
    "connected_components",
    "is_connected",
    "largest_component",
    "grid_network",
    "delaunay_network",
    "highway_network",
    "random_connected_graph",
    "read_dimacs",
    "write_dimacs",
    "read_edge_list",
    "write_edge_list",
    "graph_to_json",
    "graph_from_json",
    "bfs_order",
    "bfs_distances",
    "eccentric_vertex",
    "NetworkMetrics",
    "network_metrics",
    "approximate_diameter",
]
