"""Synthetic road-network generators.

The paper evaluates on nine DIMACS USA road networks plus PTV's Western
Europe network; neither is bundled here and this environment has no network
access, so these generators produce *synthetic equivalents*: planar-ish
graphs with road-like degree distributions (|E|/|V| around 1.2-1.5
undirected), integer travel-time weights and tuneable geometry. See
DESIGN.md section 3 for the substitution rationale.

All generators return connected graphs with coordinates attached, so the
geometric partitioners and the A* baseline work out of the box.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.spatial import Delaunay

from repro.exceptions import GraphError
from repro.graph.graph import Graph
from repro.utils.disjoint_set import DisjointSet
from repro.utils.rng import make_rng

__all__ = [
    "grid_network",
    "delaunay_network",
    "highway_network",
    "random_connected_graph",
]

#: Multiplier converting unit-square distances to integer travel times.
_WEIGHT_SCALE = 10_000.0


def _integer_weight(length: float, factor: float) -> float:
    """Convert a geometric length into a positive integer travel time.

    Uses ceiling so that ``weight >= _WEIGHT_SCALE * length`` whenever
    ``factor >= 1`` — this keeps the scaled Euclidean distance an
    *admissible* A* heuristic (see :mod:`repro.baselines.astar`).
    """
    return float(max(1, math.ceil(length * factor * _WEIGHT_SCALE)))


def grid_network(
    rows: int,
    cols: int,
    seed: int | np.random.Generator | None = 0,
    diagonal_fraction: float = 0.1,
    weight_jitter: float = 0.5,
) -> Graph:
    """Rectangular grid network with jittered weights and a few diagonals.

    Grids are the classic worst-case-ish planar benchmark: they have
    large balanced separators relative to their size, which stresses the
    partitioner. ``diagonal_fraction`` of the cells gain one diagonal
    shortcut, mimicking irregular city blocks.
    """
    if rows < 1 or cols < 1:
        raise GraphError("grid dimensions must be positive")
    rng = make_rng(seed)
    n = rows * cols
    coords = np.zeros((n, 2), dtype=np.float64)
    step_x = 1.0 / max(1, cols - 1) if cols > 1 else 1.0
    step_y = 1.0 / max(1, rows - 1) if rows > 1 else 1.0

    def vid(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            coords[vid(r, c)] = (c * step_x, r * step_y)

    g = Graph(n, coords)
    for r in range(rows):
        for c in range(cols):
            v = vid(r, c)
            jitter = 1.0 + weight_jitter * float(rng.random())
            if c + 1 < cols:
                g.add_edge(v, vid(r, c + 1), _integer_weight(step_x, jitter))
            jitter = 1.0 + weight_jitter * float(rng.random())
            if r + 1 < rows:
                g.add_edge(v, vid(r + 1, c), _integer_weight(step_y, jitter))
            if (
                c + 1 < cols
                and r + 1 < rows
                and rng.random() < diagonal_fraction
            ):
                diag = math.hypot(step_x, step_y)
                jitter = 1.0 + weight_jitter * float(rng.random())
                g.add_edge(v, vid(r + 1, c + 1), _integer_weight(diag, jitter))
    return g


def _sample_points(
    n: int, rng: np.random.Generator, style: str
) -> np.ndarray:
    """Sample *n* points in the unit square shaped by *style*."""
    if style == "uniform":
        return rng.random((n, 2))
    if style == "city":
        # Density decays from a downtown core: mixture of a tight Gaussian
        # core and a uniform suburban field.
        core = rng.normal(0.5, 0.12, size=(n, 2))
        field = rng.random((n, 2))
        pick = rng.random(n) < 0.6
        pts = np.where(pick[:, None], core, field)
        return np.clip(pts, 0.0, 1.0)
    if style == "bay":
        # Uniform points with a circular bay (water) removed, forcing the
        # network to wrap around an obstacle like the San Francisco Bay.
        pts = np.empty((0, 2))
        while len(pts) < n:
            cand = rng.random((2 * n, 2))
            keep = np.hypot(cand[:, 0] - 0.35, cand[:, 1] - 0.5) > 0.18
            pts = np.vstack([pts, cand[keep]])
        return pts[:n]
    if style == "continental":
        # Two dense landmasses joined by a sparse corridor (western Europe
        # style): most mass in two clusters, a thin band between them.
        k = n // 2
        a = np.column_stack([rng.normal(0.22, 0.10, k), rng.normal(0.5, 0.16, k)])
        b = np.column_stack(
            [rng.normal(0.78, 0.10, n - k - n // 20), rng.normal(0.5, 0.16, n - k - n // 20)]
        )
        bridge = np.column_stack(
            [rng.uniform(0.35, 0.65, n // 20), rng.normal(0.5, 0.05, n // 20)]
        )
        pts = np.vstack([a, b, bridge])
        return np.clip(pts, 0.0, 1.0)
    raise GraphError(f"unknown point style {style!r}")


def _delaunay_edges(points: np.ndarray) -> list[tuple[float, int, int]]:
    """Unique Delaunay edges as ``(length, u, v)`` triples."""
    tri = Delaunay(points)
    pairs: set[tuple[int, int]] = set()
    for simplex in tri.simplices:
        a, b, c = (int(x) for x in simplex)
        pairs.add((min(a, b), max(a, b)))
        pairs.add((min(a, c), max(a, c)))
        pairs.add((min(b, c), max(b, c)))
    edges = []
    for u, v in pairs:
        length = float(np.hypot(*(points[u] - points[v])))
        edges.append((length, u, v))
    return edges


def delaunay_network(
    n: int,
    seed: int | np.random.Generator | None = 0,
    style: str = "uniform",
    edge_factor: float = 1.35,
    weight_jitter: float = 0.4,
) -> Graph:
    """Random geometric road network from a pruned Delaunay triangulation.

    Sample points, triangulate, keep a Euclidean minimum spanning tree for
    connectivity, then add the shortest remaining Delaunay edges until the
    undirected edge count reaches ``edge_factor * n``. The result matches
    real road networks' sparsity (DIMACS networks have ~1.2-1.4 undirected
    edges per vertex) while staying planar.

    Parameters
    ----------
    style:
        Point distribution: ``uniform``, ``city``, ``bay`` or
        ``continental`` (see :func:`_sample_points`).
    """
    if n < 3:
        raise GraphError("delaunay_network needs n >= 3")
    rng = make_rng(seed)
    points = _sample_points(n, rng, style)
    edges = sorted(_delaunay_edges(points))

    target_m = min(len(edges), max(n - 1, int(round(edge_factor * n))))
    ds = DisjointSet(n)
    chosen: list[tuple[float, int, int]] = []
    extras: list[tuple[float, int, int]] = []
    for length, u, v in edges:  # Kruskal pass: tree edges first
        if ds.union(u, v):
            chosen.append((length, u, v))
        else:
            extras.append((length, u, v))
    chosen.extend(extras[: max(0, target_m - len(chosen))])

    g = Graph(n, points)
    for length, u, v in chosen:
        jitter = 1.0 + weight_jitter * float(rng.random())
        g.add_edge(u, v, _integer_weight(length, jitter))
    return g


def highway_network(
    clusters: int,
    cluster_size: int,
    seed: int | np.random.Generator | None = 0,
    highway_speedup: float = 3.0,
) -> Graph:
    """Hierarchical network: dense local clusters plus fast highways.

    Cluster centres sit on a jittered grid; each centre grows a Gaussian
    town whose internal roads come from a Delaunay triangulation. Edges
    longer than the typical town radius are treated as highways and get
    their travel time divided by ``highway_speedup``, reproducing the
    highway hierarchy that makes contraction-based methods shine.
    """
    if clusters < 2 or cluster_size < 3:
        raise GraphError("need at least 2 clusters of size >= 3")
    rng = make_rng(seed)
    side = max(1, int(round(math.sqrt(clusters))))
    centres = []
    for i in range(clusters):
        cx = (i % side + 0.5) / side
        cy = (i // side + 0.5) / side
        centres.append((cx + rng.normal(0, 0.05), cy + rng.normal(0, 0.05)))
    radius = 0.25 / side
    pts = []
    for cx, cy in centres:
        local = rng.normal((cx, cy), radius, size=(cluster_size, 2))
        pts.append(local)
    points = np.clip(np.vstack(pts), 0.0, 1.0)
    n = len(points)

    edges = sorted(_delaunay_edges(points))
    ds = DisjointSet(n)
    chosen: list[tuple[float, int, int]] = []
    extras: list[tuple[float, int, int]] = []
    for length, u, v in edges:
        if ds.union(u, v):
            chosen.append((length, u, v))
        else:
            extras.append((length, u, v))
    target_m = int(round(1.3 * n))
    chosen.extend(extras[: max(0, target_m - len(chosen))])

    g = Graph(n, points)
    highway_cutoff = 2.5 * radius
    for length, u, v in chosen:
        jitter = 1.0 + 0.3 * float(rng.random())
        factor = jitter / highway_speedup if length > highway_cutoff else jitter
        g.add_edge(u, v, _integer_weight(length, factor))
    return g


def random_connected_graph(
    n: int,
    extra_edges: int = 0,
    seed: int | np.random.Generator | None = 0,
    max_weight: int = 100,
) -> Graph:
    """Random connected multigraph-free graph for tests and fuzzing.

    A random spanning tree (uniform attachment) plus ``extra_edges``
    random non-duplicate edges, all with integer weights in
    ``[1, max_weight]``. Not road-like; used as an adversarial input.
    """
    if n < 1:
        raise GraphError("n must be positive")
    rng = make_rng(seed)
    g = Graph(n)
    order = rng.permutation(n)
    for i in range(1, n):
        u = int(order[i])
        v = int(order[rng.integers(0, i)])
        g.add_edge(u, v, float(rng.integers(1, max_weight + 1)))
    attempts = 0
    added = 0
    max_extra = n * (n - 1) // 2 - (n - 1)
    extra_edges = min(extra_edges, max_extra)
    while added < extra_edges and attempts < 50 * extra_edges + 100:
        attempts += 1
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v, float(rng.integers(1, max_weight + 1)))
            added += 1
    return g
