"""Multilevel balanced bisection (METIS-style, from scratch).

Pipeline: heavy-edge coarsening down to ~100 vertices, a portfolio of
initial partitions on the coarsest graph (greedy graph growing from
several seeds, BFS layering, spectral), Fiduccia-Mattheyses refinement,
then projection back up the levels with refinement at each step.

The objective is the number of crossing *original* edges (multiplicities),
since the query hierarchy's label sizes are driven by separator sizes,
which Koenig's theorem bounds by the cut size.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import PartitionError
from repro.partition.coarsen import coarsen_to_size
from repro.partition.fm import fm_refine, rebalance
from repro.partition.initial import (
    bfs_halves,
    component_packing,
    components,
    greedy_growing,
)
from repro.partition.spectral import spectral_bisection
from repro.partition.types import Bipartition, PartitionGraph
from repro.utils.rng import make_rng

__all__ = ["multilevel_bisection"]


def _bisect_component(
    pgraph: PartitionGraph,
    members: list[int],
    beta: float,
    rng: np.random.Generator,
    coarsest_size: int,
    growing_trials: int,
    use_spectral: bool,
) -> tuple[PartitionGraph, np.ndarray]:
    """Bisect the induced subgraph on *members* (a connected component)."""
    index = {v: i for i, v in enumerate(members)}
    adj: list[dict[int, float]] = [{} for _ in members]
    for v in members:
        lv = index[v]
        for u, w in pgraph.adj[v].items():
            lu = index.get(u)
            if lu is not None:
                adj[lv][lu] = w
    sub = PartitionGraph(adj, [pgraph.vweight[v] for v in members])
    bip = multilevel_bisection(
        sub,
        beta=beta,
        seed=rng,
        coarsest_size=coarsest_size,
        growing_trials=growing_trials,
        use_spectral=use_spectral,
    )
    return sub, bip.side


def _cut_weight(pgraph: PartitionGraph, side: np.ndarray) -> float:
    return sum(w for v, u, w in pgraph.edges() if side[v] != side[u])


def _max_side_weight(total: int, beta: float) -> int:
    """Balance bound: each side at most (1 - beta) of the total weight."""
    bound = int(math.floor((1.0 - beta) * total))
    return max(bound, (total + 1) // 2)  # never infeasible


def multilevel_bisection(
    pgraph: PartitionGraph,
    beta: float = 0.2,
    seed: int | np.random.Generator | None = 0,
    coarsest_size: int = 120,
    growing_trials: int = 4,
    use_spectral: bool = True,
) -> Bipartition:
    """Balanced bisection of *pgraph* minimising crossing multiplicity.

    Both sides of the result weigh at most ``(1 - beta)`` of the total
    vertex weight (Definition 4.1's balance parameter).
    """
    if not 0.0 < beta <= 0.5:
        raise PartitionError(f"beta must be in (0, 0.5], got {beta}")
    n = pgraph.num_vertices
    if n < 2:
        raise PartitionError("cannot bisect a graph with fewer than 2 vertices")
    rng = make_rng(seed)
    total = pgraph.total_vweight()
    max_side = _max_side_weight(total, beta)

    # Disconnected graphs: whole components usually pack into a free
    # zero cut. When one giant component alone exceeds the balance bound,
    # bisect *it* with the full pipeline and pack the crumbs around it —
    # naive packing + rebalancing would destroy hundreds of edges.
    comps = components(pgraph)
    if len(comps) > 1:
        giant_weight, giant = max(comps, key=lambda c: c[0])
        if giant_weight <= max_side:
            packed = component_packing(pgraph)
            assert packed is not None
            packed = rebalance(pgraph, packed, max_side)
            packed = fm_refine(pgraph, packed, max_side)
            return Bipartition.compute_cut(pgraph, packed)
        sub, local_sides = _bisect_component(
            pgraph, giant, beta, rng, coarsest_size, growing_trials, use_spectral
        )
        side = np.zeros(n, dtype=np.int8)
        side_weight = [0, 0]
        for local, v in enumerate(giant):
            side[v] = local_sides[local]
            side_weight[local_sides[local]] += pgraph.vweight[v]
        rest = sorted(
            (c for c in comps if c[1] is not giant), reverse=True
        )
        for weight, members in rest:
            target = 0 if side_weight[0] <= side_weight[1] else 1
            side_weight[target] += weight
            for v in members:
                side[v] = target
        side = rebalance(pgraph, side, max_side)
        return Bipartition.compute_cut(pgraph, side)

    levels = coarsen_to_size(pgraph, coarsest_size, rng)
    coarsest = levels[-1].graph if levels else pgraph
    coarse_total = coarsest.total_vweight()
    coarse_max_side = _max_side_weight(coarse_total, beta)

    candidates: list[np.ndarray] = []
    for _ in range(max(1, growing_trials)):
        candidates.append(greedy_growing(coarsest, rng))
    candidates.append(bfs_halves(coarsest, rng))

    best_side: np.ndarray | None = None
    best_cut = math.inf

    def consider(cand: np.ndarray) -> None:
        nonlocal best_side, best_cut
        cand = rebalance(coarsest, cand, coarse_max_side)
        cand = fm_refine(coarsest, cand, coarse_max_side)
        cut = _cut_weight(coarsest, cand)
        if cut < best_cut:
            best_cut = cut
            best_side = cand

    for cand in candidates:
        consider(cand)
    # Spectral is the most expensive candidate; only bother when the
    # combinatorial ones left room for improvement.
    if use_spectral and best_cut > 4.0:
        spectral = spectral_bisection(coarsest)
        if spectral is not None:
            consider(spectral)
    assert best_side is not None

    # Project back to the finest level, refining at each step.
    side = best_side
    for k in range(len(levels) - 1, -1, -1):
        fine_graph = levels[k - 1].graph if k > 0 else pgraph
        side = side[levels[k].fine_to_coarse]
        fine_max_side = _max_side_weight(fine_graph.total_vweight(), beta)
        side = rebalance(fine_graph, side, fine_max_side)
        side = fm_refine(fine_graph, side, fine_max_side)

    side = rebalance(pgraph, side, max_side)
    return Bipartition.compute_cut(pgraph, side)
