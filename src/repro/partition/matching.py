"""Hopcroft-Karp maximum bipartite matching.

Used to turn edge cuts into minimum vertex separators via Koenig's theorem
(see :mod:`repro.partition.separator`). Runs in O(E * sqrt(V)).
"""

from __future__ import annotations

from collections import deque

__all__ = ["hopcroft_karp"]

_INF = float("inf")


def hopcroft_karp(
    left_count: int,
    right_count: int,
    adjacency: list[list[int]],
) -> tuple[int, list[int], list[int]]:
    """Maximum matching in a bipartite graph.

    Parameters
    ----------
    left_count, right_count:
        Sizes of the two vertex classes (ids ``0..count-1`` each).
    adjacency:
        ``adjacency[l]`` lists the right-side neighbours of left vertex l.

    Returns
    -------
    ``(size, match_left, match_right)`` where ``match_left[l]`` is the
    right partner of ``l`` (or -1) and vice versa.
    """
    match_left = [-1] * left_count
    match_right = [-1] * right_count
    dist = [0.0] * left_count

    def bfs() -> bool:
        queue: deque[int] = deque()
        for l in range(left_count):
            if match_left[l] == -1:
                dist[l] = 0.0
                queue.append(l)
            else:
                dist[l] = _INF
        found_free = False
        while queue:
            l = queue.popleft()
            for r in adjacency[l]:
                nxt = match_right[r]
                if nxt == -1:
                    found_free = True
                elif dist[nxt] == _INF:
                    dist[nxt] = dist[l] + 1
                    queue.append(nxt)
        return found_free

    def dfs(l: int) -> bool:
        for r in adjacency[l]:
            nxt = match_right[r]
            if nxt == -1 or (dist[nxt] == dist[l] + 1 and dfs(nxt)):
                match_left[l] = r
                match_right[r] = l
                return True
        dist[l] = _INF
        return False

    size = 0
    while bfs():
        for l in range(left_count):
            if match_left[l] == -1 and dfs(l):
                size += 1
    return size, match_left, match_right
