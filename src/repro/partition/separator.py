"""Minimum vertex separators from edge cuts (Koenig's theorem).

Given a balanced edge cut, the smallest set of vertices whose removal
destroys every cut edge is a minimum vertex cover of the bipartite "cut
graph" whose two classes are the cut-edge endpoints on either side. By
Koenig's theorem that cover has the size of a maximum matching and can be
constructed from one. The resulting separator is what a query-hierarchy
tree node owns.
"""

from __future__ import annotations

from collections import deque

from repro.partition.matching import hopcroft_karp

__all__ = ["minimum_vertex_separator", "koenig_cover"]


def koenig_cover(
    left_count: int,
    right_count: int,
    adjacency: list[list[int]],
) -> tuple[list[int], list[int]]:
    """Minimum vertex cover of a bipartite graph via Koenig's construction.

    Returns ``(cover_left, cover_right)`` — indices of covered vertices in
    each class. The cover consists of left vertices *not* reachable and
    right vertices reachable by alternating paths from unmatched left
    vertices.
    """
    _, match_left, match_right = hopcroft_karp(left_count, right_count, adjacency)

    visited_left = [False] * left_count
    visited_right = [False] * right_count
    queue: deque[int] = deque()
    for l in range(left_count):
        if match_left[l] == -1:
            visited_left[l] = True
            queue.append(l)
    while queue:
        l = queue.popleft()
        for r in adjacency[l]:
            if not visited_right[r] and match_left[l] != r:
                visited_right[r] = True
                nxt = match_right[r]
                if nxt != -1 and not visited_left[nxt]:
                    visited_left[nxt] = True
                    queue.append(nxt)

    cover_left = [l for l in range(left_count) if not visited_left[l]]
    cover_right = [r for r in range(right_count) if visited_right[r]]
    return cover_left, cover_right


def minimum_vertex_separator(cut_edges: list[tuple[int, int]]) -> set[int]:
    """Minimum set of endpoints covering every cut edge.

    ``cut_edges`` contains ``(a, b)`` pairs with ``a`` on side 0 and ``b``
    on side 1 (vertex ids in any consistent namespace). Returns the
    separator as a set of vertex ids.
    """
    if not cut_edges:
        return set()
    left_ids = sorted({a for a, _ in cut_edges})
    right_ids = sorted({b for _, b in cut_edges})
    left_index = {v: i for i, v in enumerate(left_ids)}
    right_index = {v: i for i, v in enumerate(right_ids)}
    adjacency: list[list[int]] = [[] for _ in left_ids]
    seen: set[tuple[int, int]] = set()
    for a, b in cut_edges:
        key = (left_index[a], right_index[b])
        if key not in seen:
            seen.add(key)
            adjacency[key[0]].append(key[1])
    cover_left, cover_right = koenig_cover(len(left_ids), len(right_ids), adjacency)
    separator = {left_ids[l] for l in cover_left}
    separator.update(right_ids[r] for r in cover_right)
    return separator
