"""Fiduccia-Mattheyses (FM) bipartition refinement.

Classic single-vertex-move local search: repeatedly move the best-gain
unlocked vertex whose move keeps both sides within the balance bound,
remember the best prefix of the move sequence, and roll back to it. A few
passes converge; each pass is O(E log V) with the lazy-heap gain queue.
"""

from __future__ import annotations

import numpy as np

from repro.partition.types import PartitionGraph
from repro.utils.priority_queue import LazyHeap

__all__ = ["fm_refine", "rebalance"]


def _gain(pgraph: PartitionGraph, side: np.ndarray, v: int) -> float:
    """Cut reduction achieved by moving *v* to the other side."""
    internal = external = 0.0
    sv = side[v]
    for u, w in pgraph.adj[v].items():
        if side[u] == sv:
            internal += w
        else:
            external += w
    return external - internal


def fm_refine(
    pgraph: PartitionGraph,
    side: np.ndarray,
    max_side_weight: int,
    max_passes: int = 8,
) -> np.ndarray:
    """Refine *side* in place-ish; returns the refined side array.

    ``max_side_weight`` is the balance bound: after every accepted prefix
    both sides weigh at most this much. The input partition may violate the
    bound; :func:`rebalance` should be called first in that case.

    Only boundary vertices are seeded into the gain queue; interior
    vertices enter lazily when a neighbour moves (the only event that can
    make them attractive), which keeps a pass O(boundary) instead of O(n).
    """
    n = pgraph.num_vertices
    side = side.copy()
    weights = pgraph.vweight
    adj = pgraph.adj
    side_weight = [0, 0]
    for v in range(n):
        side_weight[side[v]] += weights[v]

    boundary = [
        v
        for v in range(n)
        if any(side[u] != side[v] for u in adj[v])
    ]
    if not boundary:
        return side  # zero cut: nothing to refine

    gains = [0.0] * n
    for _ in range(max_passes):
        locked = bytearray(n)
        have_gain = bytearray(n)
        heap: LazyHeap[int] = LazyHeap()
        for v in boundary:
            gains[v] = _gain(pgraph, side, v)
            have_gain[v] = 1
            heap.push(v, -gains[v])

        moves: list[int] = []
        cumulative = 0.0
        best_prefix = 0
        best_value = 0.0

        while heap:
            v, neg_gain = heap.pop()
            if locked[v]:
                continue
            if -neg_gain != gains[v]:
                # Stale entry: the LazyHeap refuses key increases, so the
                # vertex's only queued entry may be outdated. Re-queue the
                # true gain before moving on.
                heap.push(v, -gains[v])
                continue
            sv = side[v]
            target = 1 - sv
            if side_weight[target] + weights[v] > max_side_weight:
                continue  # infeasible move; drop (may be re-pushed later)
            locked[v] = 1
            side[v] = target
            side_weight[sv] -= weights[v]
            side_weight[target] += weights[v]
            cumulative += gains[v]
            moves.append(v)
            if cumulative > best_value + 1e-12:
                best_value = cumulative
                best_prefix = len(moves)
            for u, w in adj[v].items():
                if locked[u]:
                    continue
                if have_gain[u]:
                    # v changed sides: edge (u, v) flips between internal
                    # and external for u, changing its gain by +-2w.
                    gains[u] += 2.0 * w if side[u] == sv else -2.0 * w
                else:
                    # Lazy entry: fresh gain already reflects v's move.
                    gains[u] = _gain(pgraph, side, u)
                    have_gain[u] = 1
                heap.push(u, -gains[u])

        # Roll back to the best prefix.
        for v in moves[best_prefix:]:
            sv = side[v]
            side[v] = 1 - sv
            side_weight[sv] -= weights[v]
            side_weight[1 - sv] += weights[v]

        if best_prefix == 0:
            break  # pass produced no improvement; converged
        boundary = [
            v
            for v in range(n)
            if any(side[u] != side[v] for u in adj[v])
        ]
    return side


def rebalance(
    pgraph: PartitionGraph,
    side: np.ndarray,
    max_side_weight: int,
) -> np.ndarray:
    """Force both sides under the balance bound with min-damage moves.

    Greedily moves boundary vertices (best gain first, then interior
    vertices) from the overweight side until feasible. Used when an
    initial partition (e.g. component packing or spectral) is skewed.
    """
    side = side.copy()
    weights = pgraph.vweight
    side_weight = [0, 0]
    for v in range(pgraph.num_vertices):
        side_weight[side[v]] += weights[v]

    for heavy in (0, 1):
        if side_weight[heavy] <= max_side_weight:
            continue
        candidates = [v for v in range(pgraph.num_vertices) if side[v] == heavy]
        candidates.sort(key=lambda v: -_gain(pgraph, side, v))
        for v in candidates:
            if side_weight[heavy] <= max_side_weight:
                break
            side[v] = 1 - heavy
            side_weight[heavy] -= weights[v]
            side_weight[1 - heavy] += weights[v]
    return side
