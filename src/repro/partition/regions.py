"""k-way region decomposition with boundary extraction.

The recursive bisection behind H_Q splits the network with *vertex*
separators; region sharding needs the complementary view: a k-way
*vertex partition* whose parts induce edge-disjoint region subgraphs,
plus the crossing (cut) edges and the boundary vertices they touch.
Each region becomes one independently built shard index; the boundary
vertices carry the overlay that stitches the shards back together.

The split reuses the multilevel bisection pipeline: starting from one
part holding every vertex, the largest part is bisected until k parts
exist. Road networks bisect with small cuts, so the boundary stays a
tiny fraction of the graph — which is what keeps the overlay cheap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import PartitionError
from repro.graph.graph import Graph
from repro.partition.multilevel import multilevel_bisection
from repro.partition.types import PartitionGraph
from repro.utils.rng import make_rng

__all__ = ["RegionPartition", "partition_regions", "regions_from_assignment"]


@dataclass
class RegionPartition:
    """A k-way vertex partition of a graph with boundary metadata.

    Attributes
    ----------
    region_of:
        ``(n,)`` int64 array mapping each vertex to its region id.
    regions:
        Per region, the sorted global vertex ids it owns. Every vertex
        belongs to exactly one region; regions are never empty.
    boundary:
        Per region, the sorted global ids of its boundary vertices —
        the endpoints of cut edges that lie in this region.
    cut_edges:
        The crossing edges as global ``(u, v, w)`` triples with
        ``region_of[u] != region_of[v]`` (each listed once, ``u < v``).
        Logically deleted edges (infinite weight) are included: the
        overlay structure must survive later weight updates.
    """

    region_of: np.ndarray
    regions: list[list[int]]
    boundary: list[list[int]]
    cut_edges: list[tuple[int, int, float]]

    @property
    def k(self) -> int:
        return len(self.regions)

    def boundary_vertices(self) -> list[int]:
        """All boundary vertices across regions, sorted globally."""
        out: list[int] = []
        for b in self.boundary:
            out.extend(b)
        return sorted(out)

    def validate(self) -> None:
        """Check partition invariants; raises :class:`PartitionError`."""
        n = len(self.region_of)
        seen = np.zeros(n, dtype=bool)
        for rid, vertices in enumerate(self.regions):
            if not vertices:
                raise PartitionError(f"region {rid} is empty")
            for v in vertices:
                if seen[v]:
                    raise PartitionError(f"vertex {v} owned by two regions")
                seen[v] = True
                if self.region_of[v] != rid:
                    raise PartitionError(f"region_of[{v}] disagrees with region {rid}")
        if not seen.all():
            raise PartitionError("some vertices belong to no region")
        for u, v, _ in self.cut_edges:
            if self.region_of[u] == self.region_of[v]:
                raise PartitionError(f"cut edge ({u}, {v}) is intra-region")


def _split_in_order(subset: list[int]) -> tuple[list[int], list[int]]:
    """Fallback split: deterministic halves by vertex id."""
    ordered = sorted(subset)
    mid = len(ordered) // 2
    return ordered[:mid], ordered[mid:]


def _bisect_subset(
    graph: Graph,
    subset: list[int],
    beta: float,
    rng: np.random.Generator,
    coarsest_size: int,
) -> tuple[list[int], list[int]]:
    """Split *subset* into two non-empty parts along a small edge cut."""
    pgraph = PartitionGraph.from_graph(graph, subset)
    try:
        bipartition = multilevel_bisection(
            pgraph, beta=beta, seed=rng, coarsest_size=coarsest_size
        )
    except PartitionError:
        return _split_in_order(subset)
    side = bipartition.side
    left = [subset[v] for v in range(len(subset)) if side[v] == 0]
    right = [subset[v] for v in range(len(subset)) if side[v] == 1]
    if not left or not right:
        return _split_in_order(subset)
    return left, right


def partition_regions(
    graph: Graph,
    k: int,
    *,
    beta: float = 0.2,
    seed: int | np.random.Generator | None = 0,
    coarsest_size: int = 120,
) -> RegionPartition:
    """Split *graph* into *k* edge-disjoint regions with boundaries.

    The largest part is repeatedly bisected (multilevel pipeline, same
    *beta* balance guarantee as the hierarchy construction) until *k*
    parts exist. ``k`` is clamped to the vertex count; requesting one
    region returns the trivial partition with no cut edges.
    """
    if k < 1:
        raise PartitionError(f"region count must be >= 1, got {k}")
    n = graph.num_vertices
    if n == 0:
        raise PartitionError("cannot partition an empty graph")
    k = min(k, n)
    rng = make_rng(seed)

    parts: list[list[int]] = [list(graph.vertices())]
    while len(parts) < k:
        # Split the largest remaining part (ties break deterministically
        # on the smallest contained vertex id).
        target = max(range(len(parts)), key=lambda i: (len(parts[i]), -min(parts[i])))
        subset = parts.pop(target)
        left, right = _bisect_subset(graph, subset, beta, rng, coarsest_size)
        parts.append(left)
        parts.append(right)

    # Deterministic region numbering: by smallest owned vertex id.
    parts.sort(key=min)
    region_of = np.empty(n, dtype=np.int64)
    regions: list[list[int]] = []
    for rid, vertices in enumerate(parts):
        ordered = sorted(vertices)
        regions.append(ordered)
        region_of[ordered] = rid

    return _with_boundaries(graph, region_of, regions)


def regions_from_assignment(graph: Graph, region_of: np.ndarray) -> RegionPartition:
    """Reconstruct a :class:`RegionPartition` from a stored assignment.

    Cut edges and boundaries are re-derived from the graph (weights at
    their *current* values), which is how snapshots restore partitions.
    """
    region_of = np.asarray(region_of, dtype=np.int64)
    if len(region_of) != graph.num_vertices:
        raise PartitionError(
            f"assignment covers {len(region_of)} vertices, "
            f"graph has {graph.num_vertices}"
        )
    k = int(region_of.max()) + 1 if len(region_of) else 0
    if k < 1 or region_of.min() < 0:
        raise PartitionError("region ids must be contiguous and non-negative")
    regions: list[list[int]] = [[] for _ in range(k)]
    for v, rid in enumerate(region_of.tolist()):
        regions[rid].append(v)
    if any(not r for r in regions):
        raise PartitionError("stored assignment has an empty region")
    return _with_boundaries(graph, region_of, regions)


def _with_boundaries(
    graph: Graph, region_of: np.ndarray, regions: list[list[int]]
) -> RegionPartition:
    """Derive cut edges and per-region boundaries for an assignment."""
    cut_edges: list[tuple[int, int, float]] = []
    boundary_sets: list[set[int]] = [set() for _ in regions]
    for u, v, w in graph.edges():
        ru = int(region_of[u])
        rv = int(region_of[v])
        if ru != rv:
            cut_edges.append((u, v, w))
            boundary_sets[ru].add(u)
            boundary_sets[rv].add(v)
    boundary = [sorted(b) for b in boundary_sets]
    return RegionPartition(region_of, regions, boundary, cut_edges)
