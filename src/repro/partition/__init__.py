"""Balanced graph partitioning substrate.

The query hierarchy of DHL is built by "ordering vertices in terms of their
occurrences in the minimum cuts of recursive partitions of a road network"
(paper, Section 1), following the construction of HC2L [9]. This package
implements that machinery from scratch:

* a multilevel bisection pipeline (heavy-edge coarsening, greedy/spectral
  initial partitions, Fiduccia-Mattheyses refinement) in the spirit of
  METIS;
* minimum vertex separators extracted from edge cuts via Hopcroft-Karp
  matching and Koenig's theorem;
* a recursive bisection driver that emits the partition tree consumed by
  :class:`repro.hierarchy.QueryHierarchy`.
"""

from repro.partition.types import Bipartition, PartitionGraph
from repro.partition.matching import hopcroft_karp
from repro.partition.separator import minimum_vertex_separator
from repro.partition.multilevel import multilevel_bisection
from repro.partition.recursive import PartitionTreeNode, recursive_bisection
from repro.partition.regions import (
    RegionPartition,
    partition_regions,
    regions_from_assignment,
)

__all__ = [
    "Bipartition",
    "PartitionGraph",
    "hopcroft_karp",
    "minimum_vertex_separator",
    "multilevel_bisection",
    "PartitionTreeNode",
    "recursive_bisection",
    "RegionPartition",
    "partition_regions",
    "regions_from_assignment",
]
