"""Heavy-edge matching coarsening for the multilevel partitioner.

Repeatedly contracts a maximal matching that prefers heavy (high
multiplicity) edges, halving the graph while preserving its cut structure.
Each level records the fine->coarse vertex map so refined partitions can
be projected back down.
"""

from __future__ import annotations

import numpy as np

from repro.partition.types import PartitionGraph
from repro.utils.rng import make_rng

__all__ = ["coarsen_once", "coarsen_to_size", "CoarseningLevel"]


class CoarseningLevel:
    """One coarsening step: the coarse graph plus the fine->coarse map."""

    __slots__ = ("graph", "fine_to_coarse")

    def __init__(self, graph: PartitionGraph, fine_to_coarse: np.ndarray):
        self.graph = graph
        self.fine_to_coarse = fine_to_coarse


def coarsen_once(
    pgraph: PartitionGraph,
    rng: np.random.Generator,
    max_vertex_weight: int,
) -> CoarseningLevel:
    """Contract one heavy-edge matching.

    Vertices are visited in random order; each unmatched vertex pairs with
    its unmatched neighbour of maximum edge multiplicity (ties: lighter
    cluster first) unless the merged weight would exceed
    ``max_vertex_weight``, which keeps coarse vertices balanced enough for
    the later bisection to be balanceable at all.
    """
    n = pgraph.num_vertices
    match = np.full(n, -1, dtype=np.int64)
    order = rng.permutation(n)
    for v in order:
        v = int(v)
        if match[v] != -1:
            continue
        best = -1
        best_key: tuple[float, float] = (-1.0, 0.0)
        wv = pgraph.vweight[v]
        for u, w in pgraph.adj[v].items():
            if match[u] != -1 or u == v:
                continue
            if wv + pgraph.vweight[u] > max_vertex_weight:
                continue
            key = (w, -float(pgraph.vweight[u]))
            if key > best_key:
                best_key = key
                best = u
        if best >= 0:
            match[v] = best
            match[best] = v
        else:
            match[v] = v  # stays single

    fine_to_coarse = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for v in range(n):
        if fine_to_coarse[v] != -1:
            continue
        partner = int(match[v])
        fine_to_coarse[v] = next_id
        if partner != v and partner >= 0:
            fine_to_coarse[partner] = next_id
        next_id += 1

    coarse_adj: list[dict[int, float]] = [{} for _ in range(next_id)]
    coarse_vweight = [0] * next_id
    for v in range(n):
        cv = int(fine_to_coarse[v])
        coarse_vweight[cv] += pgraph.vweight[v]
        row = coarse_adj[cv]
        for u, w in pgraph.adj[v].items():
            cu = int(fine_to_coarse[u])
            if cu != cv:
                row[cu] = row.get(cu, 0.0) + w
    # Each undirected multiplicity got added from both endpoints' rows once
    # per direction, which is exactly the symmetric representation we want.
    coarse = PartitionGraph(coarse_adj, coarse_vweight)
    return CoarseningLevel(coarse, fine_to_coarse)


def coarsen_to_size(
    pgraph: PartitionGraph,
    target: int,
    rng: np.random.Generator | int | None = None,
    min_shrink: float = 0.95,
) -> list[CoarseningLevel]:
    """Coarsen until at most *target* vertices or progress stalls.

    Returns the list of levels from finest to coarsest; an empty list when
    the input is already small enough.
    """
    rng = make_rng(rng)
    levels: list[CoarseningLevel] = []
    current = pgraph
    total = current.total_vweight()
    # Cap cluster weight so the coarsest graph can still be balanced.
    max_vertex_weight = max(1, int(np.ceil(total / max(8, target / 2))))
    while current.num_vertices > target:
        level = coarsen_once(current, rng, max_vertex_weight)
        if level.graph.num_vertices >= current.num_vertices * min_shrink:
            break  # matching stalled (e.g. star graphs); stop coarsening
        levels.append(level)
        current = level.graph
    return levels
