"""Shared types for the partitioning pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.graph.graph import Graph

__all__ = ["PartitionGraph", "Bipartition"]


class PartitionGraph:
    """Working graph for the partitioner.

    Differences from :class:`~repro.graph.graph.Graph`:

    * edge weights are *cut multiplicities* (how many original edges a
      coarse edge represents), not travel times — minimising the cut of
      this graph minimises the number of original cut edges;
    * vertices carry integer weights (how many original vertices a coarse
      vertex represents) for balance accounting.
    """

    __slots__ = ("adj", "vweight")

    def __init__(self, adj: list[dict[int, float]], vweight: list[int]):
        self.adj = adj
        self.vweight = vweight

    @classmethod
    def from_graph(cls, graph: Graph, vertices: Iterable[int] | None = None) -> "PartitionGraph":
        """Build from a Graph (optionally induced on *vertices*).

        All original edges get multiplicity 1; logically deleted edges
        (infinite weight) still count — the shortcut structure is
        weight-independent, so the hierarchy must respect them.
        """
        if vertices is None:
            n = graph.num_vertices
            adj: list[dict[int, float]] = [
                {u: 1.0 for u in graph.neighbors(v)} for v in range(n)
            ]
            return cls(adj, [1] * n)
        local = list(vertices)
        index = {g: l for l, g in enumerate(local)}
        adj = [{} for _ in local]
        for g_v, l_v in index.items():
            for g_u in graph.neighbors(g_v):
                l_u = index.get(g_u)
                if l_u is not None:
                    adj[l_v][l_u] = 1.0
        return cls(adj, [1] * len(local))

    @property
    def num_vertices(self) -> int:
        return len(self.adj)

    def total_vweight(self) -> int:
        return sum(self.vweight)

    def edges(self) -> Iterator[tuple[int, int, float]]:
        for v, nbrs in enumerate(self.adj):
            for u, w in nbrs.items():
                if v < u:
                    yield v, u, w

    def degree_weight(self, v: int) -> float:
        """Total multiplicity of edges incident to *v*."""
        return sum(self.adj[v].values())


@dataclass
class Bipartition:
    """Result of bisecting a :class:`PartitionGraph`.

    ``side[v]`` is 0 or 1; ``cut_edges`` lists the crossing edges (local
    ids, u on side 0); ``cut_weight`` is their total multiplicity.
    """

    side: np.ndarray
    cut_weight: float
    cut_edges: list[tuple[int, int]] = field(default_factory=list)

    def side_weights(self, pgraph: PartitionGraph) -> tuple[int, int]:
        w0 = sum(
            wt for v, wt in enumerate(pgraph.vweight) if self.side[v] == 0
        )
        return w0, pgraph.total_vweight() - w0

    @staticmethod
    def compute_cut(pgraph: PartitionGraph, side: np.ndarray) -> "Bipartition":
        """Assemble a Bipartition from a side array, recomputing the cut."""
        cut_edges = []
        cut_weight = 0.0
        for v, u, w in pgraph.edges():
            if side[v] != side[u]:
                cut_weight += w
                a, b = (v, u) if side[v] == 0 else (u, v)
                cut_edges.append((a, b))
        return Bipartition(side=side, cut_weight=cut_weight, cut_edges=cut_edges)
