"""Spectral (Fiedler vector) bisection for small graphs.

Used as one of several initial-partition candidates on the coarsest graph
of the multilevel pipeline. Dense eigendecomposition below a size cutoff
(robust), sparse Lanczos above it (best effort, may return None).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.partition.types import PartitionGraph

__all__ = ["spectral_bisection"]

_DENSE_CUTOFF = 600


def _laplacian(pgraph: PartitionGraph) -> sp.csr_matrix:
    n = pgraph.num_vertices
    rows, cols, vals = [], [], []
    for v, u, w in pgraph.edges():
        rows += [v, u]
        cols += [u, v]
        vals += [-w, -w]
    adj = sp.csr_matrix((vals, (rows, cols)), shape=(n, n))
    degrees = -np.asarray(adj.sum(axis=1)).ravel()
    return sp.diags(degrees).tocsr() + adj


def spectral_bisection(pgraph: PartitionGraph) -> np.ndarray | None:
    """Bisect by thresholding the Fiedler vector at its weighted median.

    Returns a side array, or None when the eigensolve fails or the graph
    is too small/degenerate for a meaningful second eigenvector.
    """
    n = pgraph.num_vertices
    if n < 4:
        return None
    lap = _laplacian(pgraph)
    try:
        if n <= _DENSE_CUTOFF:
            eigvals, eigvecs = np.linalg.eigh(lap.toarray())
            fiedler = eigvecs[:, 1]
        else:
            eigvals, eigvecs = spla.eigsh(
                lap.tocsc().astype(np.float64),
                k=2,
                sigma=-1e-4,
                which="LM",
                maxiter=500,
            )
            order = np.argsort(eigvals)
            fiedler = eigvecs[:, order[1]]
    except (np.linalg.LinAlgError, spla.ArpackError, RuntimeError, ValueError):
        return None

    if np.allclose(fiedler, fiedler[0]):
        return None  # constant vector carries no split information

    # Split at the vertex-weight median of the Fiedler values.
    order = np.argsort(fiedler, kind="stable")
    weights = np.asarray(pgraph.vweight, dtype=np.float64)
    half = weights.sum() / 2.0
    side = np.ones(n, dtype=np.int8)
    grown = 0.0
    for v in order:
        if grown >= half:
            break
        side[v] = 0
        grown += weights[v]
    if side.min() == side.max():
        return None
    return side
