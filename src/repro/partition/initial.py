"""Initial partitions for the coarsest graph of the multilevel pipeline."""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.partition.types import PartitionGraph
from repro.utils.priority_queue import LazyHeap
from repro.utils.rng import make_rng

__all__ = ["greedy_growing", "component_packing", "bfs_halves"]


def components(pgraph: PartitionGraph) -> list[tuple[int, list[int]]]:
    """Connected components as ``(total_vertex_weight, members)`` pairs."""
    n = pgraph.num_vertices
    seen = bytearray(n)
    comps: list[tuple[int, list[int]]] = []
    for start in range(n):
        if seen[start]:
            continue
        seen[start] = 1
        members = [start]
        weight = pgraph.vweight[start]
        queue = deque([start])
        while queue:
            v = queue.popleft()
            for u in pgraph.adj[v]:
                if not seen[u]:
                    seen[u] = 1
                    members.append(u)
                    weight += pgraph.vweight[u]
                    queue.append(u)
        comps.append((weight, members))
    return comps


def component_packing(pgraph: PartitionGraph) -> np.ndarray | None:
    """Zero-cut partition of a *disconnected* graph, or None if connected.

    Packs whole components into two sides, largest first, always into the
    lighter side. The result may be unbalanced when one component
    dominates; :func:`repro.partition.multilevel.multilevel_bisection`
    detects that case and bisects the giant component instead.
    """
    comps = components(pgraph)
    if len(comps) <= 1:
        return None
    side = np.zeros(pgraph.num_vertices, dtype=np.int8)
    side_weight = [0, 0]
    for weight, members in sorted(comps, reverse=True):
        target = 0 if side_weight[0] <= side_weight[1] else 1
        side_weight[target] += weight
        if target == 1:
            for v in members:
                side[v] = 1
    return side


def greedy_growing(
    pgraph: PartitionGraph,
    rng: np.random.Generator | int | None = None,
    seed_vertex: int | None = None,
) -> np.ndarray:
    """Greedy graph growing: grow side 0 from a seed to half the weight.

    The frontier is prioritised by cut gain (vertices mostly surrounded by
    side 0 join first), the standard GGGP heuristic from METIS.
    """
    rng = make_rng(rng)
    n = pgraph.num_vertices
    if n == 0:
        return np.zeros(0, dtype=np.int8)
    total = pgraph.total_vweight()
    half = total / 2.0
    if seed_vertex is None:
        seed_vertex = int(rng.integers(0, n))

    side = np.ones(n, dtype=np.int8)  # everyone starts on side 1
    grown = 0
    heap: LazyHeap[int] = LazyHeap()
    gains = {seed_vertex: 0.0}
    heap.push(seed_vertex, 0.0)
    while heap and grown < half:
        v, key = heap.pop()
        if side[v] == 0 or key != gains.get(v):
            if side[v] != 0 and v in gains:
                heap.push(v, gains[v])
            continue
        side[v] = 0
        grown += pgraph.vweight[v]
        for u, w in pgraph.adj[v].items():
            if side[u] == 0:
                continue
            # Priority = external-minus-internal cost of absorbing u.
            cost = sum(
                wt if side[x] == 1 else -wt for x, wt in pgraph.adj[u].items()
            )
            gains[u] = cost
            heap.push(u, cost)
    if grown == 0 and n > 0:  # isolated seed with empty frontier
        side[seed_vertex] = 0
    return side


def bfs_halves(
    pgraph: PartitionGraph,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Plain BFS layering from a pseudo-peripheral seed, split at half weight."""
    rng = make_rng(rng)
    n = pgraph.num_vertices
    if n == 0:
        return np.zeros(0, dtype=np.int8)
    seed = int(rng.integers(0, n))
    for _ in range(2):  # double sweep towards the periphery
        dist = _bfs(pgraph, seed)
        seed = max(range(n), key=lambda v: (dist[v] if dist[v] >= 0 else -1, v))
    order = _bfs_order(pgraph, seed)
    side = np.ones(n, dtype=np.int8)
    total = pgraph.total_vweight()
    grown = 0
    for v in order:
        if grown >= total / 2.0:
            break
        side[v] = 0
        grown += pgraph.vweight[v]
    return side


def _bfs(pgraph: PartitionGraph, start: int) -> list[int]:
    dist = [-1] * pgraph.num_vertices
    dist[start] = 0
    queue = deque([start])
    while queue:
        v = queue.popleft()
        for u in pgraph.adj[v]:
            if dist[u] < 0:
                dist[u] = dist[v] + 1
                queue.append(u)
    return dist


def _bfs_order(pgraph: PartitionGraph, start: int) -> list[int]:
    seen = bytearray(pgraph.num_vertices)
    seen[start] = 1
    order = [start]
    queue = deque([start])
    while queue:
        v = queue.popleft()
        for u in pgraph.adj[v]:
            if not seen[u]:
                seen[u] = 1
                order.append(u)
                queue.append(u)
    # Disconnected remainders join in id order so every vertex is placed.
    for v in range(pgraph.num_vertices):
        if not seen[v]:
            order.append(v)
            seen[v] = 1
    return order
