"""Recursive bisection producing the partition tree behind H_Q.

Each internal tree node owns a minimum balanced vertex separator of its
subgraph; its two children recurse on the separated sides. Leaves own all
remaining vertices once a part is small enough. The resulting
:class:`PartitionTreeNode` tree is consumed by
:class:`repro.hierarchy.QueryHierarchy`, which assigns bitstrings, depths
and the vertex partial order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.graph import Graph
from repro.partition.multilevel import multilevel_bisection
from repro.partition.separator import minimum_vertex_separator
from repro.partition.types import PartitionGraph
from repro.utils.rng import make_rng

__all__ = ["PartitionTreeNode", "recursive_bisection"]


@dataclass
class PartitionTreeNode:
    """Node of the partition tree.

    ``vertices`` are the global vertex ids owned by this node, already in
    their within-node total order (the ``⪯`` of Definition 4.3).
    ``children`` has up to two entries (fewer when a side emptied out).
    """

    vertices: list[int]
    children: list["PartitionTreeNode"] = field(default_factory=list)

    @property
    def subtree_size(self) -> int:
        """Number of vertices owned by this node and its descendants."""
        return len(self.vertices) + sum(c.subtree_size for c in self.children)

    def iter_nodes(self):
        """Yield all nodes of the subtree in preorder (iterative)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))


def _order_vertices(graph: Graph, vertices: list[int]) -> list[int]:
    """Within-node total order: central (high degree) vertices first.

    Any total order is correct (Definition 4.3 allows an arbitrary one);
    putting well-connected vertices earlier makes them ancestors of more
    vertices, which empirically shortens shortcut chains slightly. Ties
    break on vertex id for determinism.
    """
    return sorted(vertices, key=lambda v: (-graph.degree(v), v))


def recursive_bisection(
    graph: Graph,
    beta: float = 0.2,
    leaf_size: int = 8,
    seed: int | np.random.Generator | None = 0,
    coarsest_size: int = 120,
) -> PartitionTreeNode:
    """Build the partition tree of *graph* by recursive balanced bisection.

    Parameters
    ----------
    beta:
        Balance parameter of Definition 4.1: every child subtree holds at
        most ``(1 - beta)`` of its parent's vertices. The paper uses 0.2.
    leaf_size:
        Parts of at most this many vertices become leaves.
    """
    rng = make_rng(seed)
    all_vertices = list(graph.vertices())
    root = PartitionTreeNode(vertices=[])
    # Work list of (node, vertex subset); children are attached in place.
    stack: list[tuple[PartitionTreeNode, list[int]]] = [(root, all_vertices)]
    while stack:
        node, subset = stack.pop()
        if len(subset) <= leaf_size:
            node.vertices = _order_vertices(graph, subset)
            continue
        pgraph = PartitionGraph.from_graph(graph, subset)
        bipartition = multilevel_bisection(
            pgraph, beta=beta, seed=rng, coarsest_size=coarsest_size
        )
        separator_local = minimum_vertex_separator(bipartition.cut_edges)
        side = bipartition.side
        left_local = [
            v for v in range(len(subset)) if side[v] == 0 and v not in separator_local
        ]
        right_local = [
            v for v in range(len(subset)) if side[v] == 1 and v not in separator_local
        ]
        if not left_local and not right_local:
            # Separator swallowed everything: stop splitting here.
            node.vertices = _order_vertices(graph, subset)
            continue
        node.vertices = _order_vertices(
            graph, [subset[v] for v in sorted(separator_local)]
        )
        for side_local in (left_local, right_local):
            if not side_local:
                continue
            child = PartitionTreeNode(vertices=[])
            node.children.append(child)
            stack.append((child, [subset[v] for v in side_local]))
    return root
