"""Union-find (disjoint-set) with path compression and union by size."""

from __future__ import annotations

__all__ = ["DisjointSet"]


class DisjointSet:
    """Disjoint-set forest over the integers ``0..n-1``.

    >>> ds = DisjointSet(4)
    >>> ds.union(0, 1)
    True
    >>> ds.connected(0, 1), ds.connected(0, 2)
    (True, False)
    """

    def __init__(self, n: int):
        if n < 0:
            raise ValueError("n must be non-negative")
        self._parent = list(range(n))
        self._size = [1] * n
        self._count = n

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def set_count(self) -> int:
        """Number of disjoint sets currently represented."""
        return self._count

    def find(self, x: int) -> int:
        """Return the canonical representative of *x*'s set."""
        parent = self._parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, parent[x]
        return root

    def union(self, x: int, y: int) -> bool:
        """Merge the sets of *x* and *y*; returns False if already merged."""
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        if self._size[rx] < self._size[ry]:
            rx, ry = ry, rx
        self._parent[ry] = rx
        self._size[rx] += self._size[ry]
        self._count -= 1
        return True

    def connected(self, x: int, y: int) -> bool:
        return self.find(x) == self.find(y)

    def size_of(self, x: int) -> int:
        """Size of the set containing *x*."""
        return self._size[self.find(x)]
