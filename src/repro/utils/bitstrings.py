"""Partition bitstrings for O(1) LCA in the query hierarchy.

Each node of the query hierarchy H_Q is identified by the sequence of
left/right (0/1) choices on the path from the root, stored as a Python
integer with a leading sentinel ``1`` bit so that leading zeros survive.
A node at depth ``d`` therefore has a bitstring of ``d`` payload bits and
an integer value in ``[2^d, 2^(d+1))``.

The depth of the lowest common ancestor of two nodes is the length of the
longest common prefix of their payload bits, computed with integer
arithmetic only (Python big-ints make this O(1) word operations for the
tree depths that occur in practice).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PartitionBitstring", "common_prefix_length"]


@dataclass(frozen=True)
class PartitionBitstring:
    """Immutable root-to-node bitstring with a sentinel leading 1 bit.

    ``value`` encodes the sentinel plus ``depth`` payload bits, so the root
    is ``PartitionBitstring(1, 0)`` and its left/right children are
    ``(0b10, 1)`` and ``(0b11, 1)``.
    """

    value: int
    depth: int

    @classmethod
    def root(cls) -> "PartitionBitstring":
        return cls(1, 0)

    def child(self, bit: int) -> "PartitionBitstring":
        """Return the bitstring of the child reached via *bit* (0 or 1)."""
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        return PartitionBitstring((self.value << 1) | bit, self.depth + 1)

    def ancestor_at(self, depth: int) -> "PartitionBitstring":
        """Return the ancestor bitstring truncated to *depth* bits."""
        if depth < 0 or depth > self.depth:
            raise ValueError(f"depth {depth} outside [0, {self.depth}]")
        return PartitionBitstring(self.value >> (self.depth - depth), depth)

    def is_prefix_of(self, other: "PartitionBitstring") -> bool:
        """True when this node is an ancestor of (or equal to) *other*."""
        if self.depth > other.depth:
            return False
        return (other.value >> (other.depth - self.depth)) == self.value

    def bits(self) -> str:
        """Human-readable payload bits (empty string for the root)."""
        return format(self.value, "b")[1:]

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return self.bits() or "<root>"


def common_prefix_length(a: PartitionBitstring, b: PartitionBitstring) -> int:
    """Depth of the lowest common ancestor of nodes *a* and *b*.

    Aligns the two payload strings to the shorter depth and counts the
    number of leading bits they share.
    """
    depth = min(a.depth, b.depth)
    va = a.value >> (a.depth - depth)
    vb = b.value >> (b.depth - depth)
    diff = va ^ vb
    if diff == 0:
        return depth
    return depth - diff.bit_length()
