"""Euler-tour + sparse-table lowest common ancestor.

Used by the H2H baseline, whose tree decompositions are arbitrary rooted
trees (unlike H_Q, where partition bitstrings give O(1) LCA directly).
Preprocessing is O(n log n); queries are O(1).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["EulerTourLCA"]


class EulerTourLCA:
    """O(1) LCA queries over a rooted forest given as a parent array.

    Parameters
    ----------
    parent:
        ``parent[v]`` is the parent of node ``v`` or ``-1`` for roots.
    """

    def __init__(self, parent: Sequence[int]):
        n = len(parent)
        children: list[list[int]] = [[] for _ in range(n)]
        roots: list[int] = []
        for v, p in enumerate(parent):
            if p < 0:
                roots.append(v)
            else:
                children[p].append(v)
        if n and not roots:
            raise ValueError("parent array has no root")

        self.depth = np.zeros(n, dtype=np.int32)
        self._first = np.full(n, -1, dtype=np.int64)
        tour: list[int] = []
        tour_depth: list[int] = []

        # Iterative Euler tour; recursion would overflow on path-like trees.
        for root in roots:
            stack: list[tuple[int, int]] = [(root, 0)]
            while stack:
                v, child_idx = stack.pop()
                if child_idx == 0:
                    self._first[v] = len(tour)
                    if parent[v] >= 0:
                        self.depth[v] = self.depth[parent[v]] + 1
                tour.append(v)
                tour_depth.append(self.depth[v])
                if child_idx < len(children[v]):
                    stack.append((v, child_idx + 1))
                    stack.append((children[v][child_idx], 0))

        self._tour = np.asarray(tour, dtype=np.int64)
        depths = np.asarray(tour_depth, dtype=np.int64)
        m = len(tour)
        levels = max(1, m.bit_length())
        # sparse[k][i] = index (into the tour) of the min-depth entry in
        # tour[i : i + 2^k].
        sparse = np.empty((levels, m), dtype=np.int64)
        sparse[0] = np.arange(m)
        for k in range(1, levels):
            span = 1 << k
            half = span >> 1
            width = m - span + 1
            if width <= 0:
                sparse[k] = sparse[k - 1]
                continue
            left = sparse[k - 1, :width]
            right = sparse[k - 1, half : half + width]
            take_right = depths[right] < depths[left]
            sparse[k, :width] = np.where(take_right, right, left)
            sparse[k, width:] = sparse[k - 1, width:]
        self._sparse = sparse
        self._depths = depths

    def __call__(self, u: int, v: int) -> int:
        """Return the lowest common ancestor of *u* and *v*."""
        lo = int(self._first[u])
        hi = int(self._first[v])
        if lo > hi:
            lo, hi = hi, lo
        span = hi - lo + 1
        k = span.bit_length() - 1
        a = self._sparse[k, lo]
        b = self._sparse[k, hi - (1 << k) + 1]
        best = a if self._depths[a] <= self._depths[b] else b
        return int(self._tour[best])
