"""Lightweight timing helpers for the experiment harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "format_duration"]


@dataclass
class Stopwatch:
    """Accumulating stopwatch, usable as a context manager.

    >>> sw = Stopwatch()
    >>> with sw:
    ...     pass
    >>> sw.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    laps: list[float] = field(default_factory=list)
    _start: float | None = None

    def start(self) -> "Stopwatch":
        if self._start is not None:
            raise RuntimeError("stopwatch already running")
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop and return the duration of the last lap in seconds."""
        if self._start is None:
            raise RuntimeError("stopwatch not running")
        lap = time.perf_counter() - self._start
        self._start = None
        self.elapsed += lap
        self.laps.append(lap)
        return lap

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def mean_lap(self) -> float:
        return self.elapsed / len(self.laps) if self.laps else 0.0


def format_duration(seconds: float) -> str:
    """Render *seconds* with a unit suited to its magnitude.

    >>> format_duration(0.0000012)
    '1.20us'
    """
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 1e-3:
        return f"{seconds * 1e6:.2f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.3f}ms"
    if seconds < 120.0:
        return f"{seconds:.3f}s"
    return f"{seconds / 60.0:.2f}min"
