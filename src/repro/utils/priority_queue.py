"""Priority queues used by the shortest-path and maintenance loops.

Two flavours are provided:

* :class:`AddressableHeap` — a binary min-heap with ``decrease_key`` by item,
  the textbook structure for Dijkstra's algorithm. Items must be hashable.
* :class:`LazyHeap` — a thin wrapper over :mod:`heapq` with lazy deletion,
  which is often faster in CPython because it avoids position bookkeeping.

Both order items by a ``(key, item)``-style comparison where only the key
matters; ties are broken by insertion order to keep behaviour deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Generic, Hashable, Iterator, TypeVar

__all__ = ["AddressableHeap", "LazyHeap"]

T = TypeVar("T", bound=Hashable)


class AddressableHeap(Generic[T]):
    """Binary min-heap supporting ``decrease_key`` addressed by item.

    >>> h = AddressableHeap()
    >>> h.push("a", 3.0); h.push("b", 1.0); h.push("c", 2.0)
    >>> h.decrease_key("a", 0.5)
    True
    >>> [h.pop() for _ in range(len(h))]
    [('a', 0.5), ('b', 1.0), ('c', 2.0)]
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, T]] = []
        self._pos: dict[T, int] = {}
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __contains__(self, item: T) -> bool:
        return item in self._pos

    def key_of(self, item: T) -> float:
        """Return the current key of *item* (KeyError if absent)."""
        return self._heap[self._pos[item]][0]

    def push(self, item: T, key: float) -> None:
        """Insert *item* with *key*; the item must not already be present."""
        if item in self._pos:
            raise ValueError(f"item {item!r} already in heap")
        entry = (key, next(self._counter), item)
        self._heap.append(entry)
        self._pos[item] = len(self._heap) - 1
        self._sift_up(len(self._heap) - 1)

    def push_or_decrease(self, item: T, key: float) -> bool:
        """Insert *item*, or lower its key if already present with a larger one.

        Returns True when the heap changed.
        """
        if item in self._pos:
            return self.decrease_key(item, key)
        self.push(item, key)
        return True

    def decrease_key(self, item: T, key: float) -> bool:
        """Lower the key of *item*; returns False when *key* is not lower."""
        i = self._pos[item]
        current = self._heap[i][0]
        if key >= current:
            return False
        self._heap[i] = (key, self._heap[i][1], item)
        self._sift_up(i)
        return True

    def pop(self) -> tuple[T, float]:
        """Remove and return ``(item, key)`` with the smallest key."""
        if not self._heap:
            raise IndexError("pop from empty heap")
        key, _, item = self._heap[0]
        last = self._heap.pop()
        del self._pos[item]
        if self._heap:
            self._heap[0] = last
            self._pos[last[2]] = 0
            self._sift_down(0)
        return item, key

    def peek(self) -> tuple[T, float]:
        """Return ``(item, key)`` with the smallest key without removing it."""
        if not self._heap:
            raise IndexError("peek at empty heap")
        key, _, item = self._heap[0]
        return item, key

    def _sift_up(self, i: int) -> None:
        heap, pos = self._heap, self._pos
        entry = heap[i]
        while i > 0:
            parent = (i - 1) >> 1
            if heap[parent] <= entry:
                break
            heap[i] = heap[parent]
            pos[heap[i][2]] = i
            i = parent
        heap[i] = entry
        pos[entry[2]] = i

    def _sift_down(self, i: int) -> None:
        heap, pos = self._heap, self._pos
        n = len(heap)
        entry = heap[i]
        while True:
            child = 2 * i + 1
            if child >= n:
                break
            right = child + 1
            if right < n and heap[right] < heap[child]:
                child = right
            if entry <= heap[child]:
                break
            heap[i] = heap[child]
            pos[heap[i][2]] = i
            i = child
        heap[i] = entry
        pos[entry[2]] = i


class LazyHeap(Generic[T]):
    """Min-heap with lazy deletion on top of :mod:`heapq`.

    ``push`` may insert the same item several times with different keys;
    ``pop`` skips entries that have been superseded or removed. Designed for
    Dijkstra-style loops where a "settled" check makes staleness harmless,
    and for the maintenance queues of Algorithms 2-5 where each (item, key)
    should be processed at most once.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, T]] = []
        self._best: dict[T, float] = {}
        self._counter = itertools.count()

    def __len__(self) -> int:
        # Upper bound: stale entries are counted until popped.
        return len(self._best)

    def __bool__(self) -> bool:
        return bool(self._best)

    def __contains__(self, item: T) -> bool:
        return item in self._best

    def push(self, item: T, key: float) -> bool:
        """Insert *item* unless it is already queued with a key <= *key*."""
        best = self._best.get(item)
        if best is not None and best <= key:
            return False
        self._best[item] = key
        heapq.heappush(self._heap, (key, next(self._counter), item))
        return True

    def pop(self) -> tuple[T, float]:
        """Remove and return the ``(item, key)`` pair with the smallest key."""
        while self._heap:
            key, _, item = heapq.heappop(self._heap)
            if self._best.get(item) == key:
                del self._best[item]
                return item, key
        raise IndexError("pop from empty heap")

    def drain(self) -> Iterator[tuple[T, float]]:
        """Yield remaining entries in key order, consuming the heap."""
        while self:
            yield self.pop()
