"""Seeded randomness helpers shared by generators, workloads and tests."""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "sample_pairs"]


def make_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce *seed* into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged so call chains can
    share one stream; passing ``None`` yields an OS-seeded generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def sample_pairs(
    n: int,
    count: int,
    rng: np.random.Generator,
    distinct: bool = True,
) -> list[tuple[int, int]]:
    """Sample *count* (s, t) vertex pairs uniformly from ``range(n)``.

    With ``distinct=True`` the two endpoints of each pair differ (requires
    ``n >= 2``). Sampling is with replacement across pairs.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if distinct and n < 2:
        raise ValueError("distinct pairs require n >= 2")
    s = rng.integers(0, n, size=count)
    t = rng.integers(0, n, size=count)
    if distinct:
        clash = s == t
        while clash.any():
            t[clash] = rng.integers(0, n, size=int(clash.sum()))
            clash = s == t
    return list(zip(s.tolist(), t.tolist()))
