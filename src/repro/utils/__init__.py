"""Shared utility data structures and helpers.

This package collects the small, self-contained building blocks used across
the library: priority queues for the many Dijkstra-like loops, partition
bitstring arithmetic for O(1) LCA in the query hierarchy, an Euler-tour RMQ
LCA used by the H2H baseline, a union-find structure, timing helpers and
seeded random-number utilities.
"""

from repro.utils.priority_queue import AddressableHeap, LazyHeap
from repro.utils.bitstrings import PartitionBitstring, common_prefix_length
from repro.utils.disjoint_set import DisjointSet
from repro.utils.lca import EulerTourLCA
from repro.utils.timing import Stopwatch, format_duration
from repro.utils.rng import make_rng, sample_pairs

__all__ = [
    "AddressableHeap",
    "LazyHeap",
    "PartitionBitstring",
    "common_prefix_length",
    "DisjointSet",
    "EulerTourLCA",
    "Stopwatch",
    "format_duration",
    "make_rng",
    "sample_pairs",
]
