"""IncH2H [25] — dynamic maintenance of the H2H index (Section 3.2).

Maintenance runs in the paper's two phases. Phase one updates the
shortcut graph with the rank-generic Algorithms 2/3. Phase two repairs
the distance arrays: because H2H labels hold *global* distances, a label
entry ``d(v, a)`` depends both on same-column entries of ancestors and —
through the mixed lookup ``d(w, a) = D[a][depth(w)]`` for ``a`` below
``w`` — on other columns of shallower rows. The worklist therefore
propagates along two dependency types:

* (a) *descend*: entry ``(v, j)`` feeds ``(u, j)`` for shortcut
  down-neighbours ``u`` of ``v``;
* (b) *peak-crossing*: entry ``(v, j)`` is ``d(v, anc_j)`` == ``d(anc_j,
  v)`` seen from below, feeding ``(x, depth(v))`` for down-neighbours
  ``x`` of ``anc_j`` lying in ``v``'s subtree.

Decrease is chaotic relaxation to the least fixpoint; increase recomputes
suspect entries in increasing tree depth (both dependency sources live at
strictly smaller depth, so they are final when read). This support-free
increase mirrors our DHL+ choice and the paper's discussion of
boundedness trade-offs.

Our reproduction note: the original IncH2H tracks support counts to skip
some recomputations; we deliberately reproduce the structure/size/shape
comparison (tall min-degree trees, global distances, larger labels), not
its exact constant factors — see DESIGN.md §3.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.h2h import H2HIndex
from repro.labelling.maintenance import (
    MaintenanceStats,
    maintain_shortcuts_decrease,
    maintain_shortcuts_increase,
)
from repro.utils.priority_queue import LazyHeap

__all__ = ["IncH2HIndex"]

WeightChange = tuple[int, int, float]


class IncH2HIndex(H2HIndex):
    """H2H index with incremental edge-weight maintenance."""

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _mixed(self, w: int, j: int, ancestors: np.ndarray) -> float:
        """``d(w, anc_j)`` for an ancestor chain: the H2H mixed lookup."""
        k = int(self.depth[w])
        if j <= k:
            return float(self.dist[w, j])
        return float(self.dist[ancestors[j], k])

    def _mixed_row(self, v: int, w: int, dv: int) -> np.ndarray:
        """Vector of ``d(w, anc_j(v))`` for ``j in [0, dv)``."""
        k = int(self.depth[w])
        out = np.empty(dv, dtype=np.float64)
        hi = min(k + 1, dv)
        out[:hi] = self.dist[w, :hi]
        if k + 1 < dv:
            below = self.anc[v, k + 1 : dv]
            out[k + 1 :] = self.dist[below, k]
        return out

    # ------------------------------------------------------------------
    # decrease
    # ------------------------------------------------------------------
    def decrease(
        self, changes: list[WeightChange], workers: int | None = None
    ) -> MaintenanceStats:
        """Edge-weight decreases: shortcut phase + label relaxation."""
        affected = maintain_shortcuts_decrease(self.sc, changes)
        stats = MaintenanceStats(
            shortcuts_changed=len(affected), affected_shortcuts=affected
        )
        depth = self.depth
        dist = self.dist
        heap: LazyHeap[tuple[int, int]] = LazyHeap()

        # Phase 1: seed from affected shortcuts (v deeper, w its ancestor).
        for (v, w), _old in affected.items():
            w_new = self.sc.wup[v][w]
            dv = int(depth[v])
            row = dist[v]
            candidate = self._mixed_row(v, w, dv) + w_new
            improved = candidate < row[:dv]
            if improved.any():
                np.minimum(row[:dv], candidate, out=row[:dv])
                stats.labels_changed += int(improved.sum())
                for j in np.nonzero(improved)[0].tolist():
                    heap.push((v, int(j)), float(depth[v]))

        # Phase 2: chaotic relaxation along both dependency types.
        while heap:
            (v, j), _ = heap.pop()
            stats.entries_processed += 1
            value = dist[v, j]
            dv = int(depth[v])
            anc_j = int(self.anc[v, j])
            # (a) descend: u below v reaches anc_j through v.
            for u in self.sc.down[v]:
                candidate = self.sc.wup[u][v] + value
                if candidate < dist[u, j]:
                    dist[u, j] = candidate
                    stats.labels_changed += 1
                    heap.push((u, j), float(depth[u]))
            # (b) peak-crossing: x below anc_j (with v on its chain)
            # reaches v through anc_j.
            for x in self.sc.down[anc_j]:
                if depth[x] > dv and self.anc[x, dv] == v:
                    candidate = self.sc.wup[x][anc_j] + value
                    if candidate < dist[x, dv]:
                        dist[x, dv] = candidate
                        stats.labels_changed += 1
                        heap.push((x, dv), float(depth[x]))
        return stats

    # ------------------------------------------------------------------
    # increase
    # ------------------------------------------------------------------
    def increase(
        self, changes: list[WeightChange], workers: int | None = None
    ) -> MaintenanceStats:
        """Edge-weight increases: shortcut phase + label recomputation."""
        affected = maintain_shortcuts_increase(self.sc, changes)
        stats = MaintenanceStats(
            shortcuts_changed=len(affected), affected_shortcuts=affected
        )
        depth = self.depth
        dist = self.dist
        heap: LazyHeap[tuple[int, int]] = LazyHeap()

        # Phase 1: entries whose value was realised through an affected
        # shortcut's old weight are suspect.
        for (v, w), old in affected.items():
            dv = int(depth[v])
            row = dist[v]
            candidate = self._mixed_row(v, w, dv) + old
            suspect = candidate == row[:dv]
            suspect |= np.isinf(candidate) & np.isinf(row[:dv])
            for j in np.nonzero(suspect)[0].tolist():
                heap.push((v, int(j)), float(depth[v]))

        # Phase 2: recompute in increasing depth; dependencies (same
        # column above, and mixed lookups into shallower rows) are final.
        while heap:
            (v, j), _ = heap.pop()
            stats.entries_processed += 1
            ancestors = self.anc[v]
            w_new = math.inf
            for w in self.sc.up[v]:
                candidate = self.sc.wup[v][w] + self._mixed(w, j, ancestors)
                if candidate < w_new:
                    w_new = candidate
            old = dist[v, j]
            if w_new > old:
                dv = int(depth[v])
                anc_j = int(ancestors[j])
                # (a) descend dependents.
                for u in self.sc.down[v]:
                    chained = self.sc.wup[u][v] + old
                    if chained == dist[u, j] or (
                        math.isinf(chained) and math.isinf(dist[u, j])
                    ):
                        heap.push((u, j), float(depth[u]))
                # (b) peak-crossing dependents.
                for x in self.sc.down[anc_j]:
                    if depth[x] > dv and self.anc[x, dv] == v:
                        chained = self.sc.wup[x][anc_j] + old
                        if chained == dist[x, dv] or (
                            math.isinf(chained) and math.isinf(dist[x, dv])
                        ):
                            heap.push((x, dv), float(depth[x]))
                stats.labels_changed += 1
            dist[v, j] = w_new
        return stats

    def update(self, changes: list[WeightChange]) -> MaintenanceStats:
        """Mixed batch: increases first, then decreases."""
        increases: list[WeightChange] = []
        decreases: list[WeightChange] = []
        for u, v, w in changes:
            current = self.graph.weight(u, v)
            if w > current:
                increases.append((u, v, w))
            elif w < current:
                decreases.append((u, v, w))
        stats = MaintenanceStats()
        if increases:
            stats = stats.merge(self.increase(increases))
        if decreases:
            stats = stats.merge(self.decrease(decreases))
        return stats

