"""H2H-Index [16] — the static hierarchical 2-hop labelling (Section 3.2).

H2H builds a tree decomposition from a contraction hierarchy: the bag of
``v`` is ``{v} ∪ N+(v)``, its parent the lowest-ranked up-neighbour. Every
vertex stores three arrays — ancestors, *global* distances to all
ancestors, and the positions of its bag inside the ancestor array. A
query finds the LCA of the two vertices and scans only the positions of
its bag (Equation 2 of the paper).

Contrast with DHL: labels here hold distances in the whole graph (an
update anywhere between a vertex and its ancestors can invalidate them),
the ancestor/position arrays roughly double the memory, and the
min-degree tree is much taller than DHL's separator tree — exactly the
costs Table 3 of the paper quantifies.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.exceptions import IndexBuildError
from repro.graph.graph import Graph
from repro.hierarchy.contraction import (
    ContractionResult,
    contract_in_order,
    min_degree_order,
)
from repro.utils.lca import EulerTourLCA

__all__ = ["H2HIndex"]


class H2HIndex:
    """Static H2H-Index over an undirected graph."""

    def __init__(self, graph: Graph, sc: ContractionResult):
        self.graph = graph
        self.sc = sc
        n = graph.num_vertices

        # Tree decomposition: parent = lowest-ranked up-neighbour.
        rank = sc.rank
        parent = np.full(n, -1, dtype=np.int64)
        for v in range(n):
            if len(sc.up[v]):
                parent[v] = min(sc.up[v], key=lambda u: rank[u])
        self.parent = parent

        depth = np.zeros(n, dtype=np.int64)
        # Roots first (decreasing rank == reverse contraction order).
        top_down = sc.order[::-1].tolist()
        for v in top_down:
            p = parent[v]
            depth[v] = 0 if p < 0 else depth[p] + 1
        self.depth = depth
        height = int(depth.max()) + 1 if n else 0

        # Padded ancestor matrix A and distance matrix D.
        self.anc = np.full((n, height), -1, dtype=np.int64)
        self.dist = np.full((n, height), math.inf, dtype=np.float64)
        for v in top_down:
            p = int(parent[v])
            dv = int(depth[v])
            if p >= 0:
                self.anc[v, :dv] = self.anc[p, : dv]
            self.anc[v, dv] = v
            self._compute_distances(v)

        # Bag positions: depths of {v} ∪ N+(v) in the ancestor array.
        self.pos: list[np.ndarray] = [
            np.sort(
                np.asarray([int(depth[w]) for w in sc.up[v]] + [int(depth[v])])
            )
            for v in range(n)
        ]
        self.lca = EulerTourLCA(parent.tolist())

    def _compute_distances(self, v: int) -> None:
        """Fill ``dist[v]`` via the H2H recurrence (mixed ancestor lookup)."""
        dv = int(self.depth[v])
        row = self.dist[v]
        row[dv] = 0.0
        ancestors = self.anc[v]
        for w in self.sc.up[v]:
            weight = self.sc.wup[v][w]
            k = int(self.depth[w])
            # Ancestors above (or at) w: use w's own distance array.
            np.minimum(row[: k + 1], weight + self.dist[w, : k + 1], out=row[: k + 1])
            # Ancestors strictly below w: d(w, a) is stored in a's array
            # at w's depth (a is deeper, so w is one of a's ancestors).
            if k + 1 < dv:
                below = ancestors[k + 1 : dv]
                np.minimum(
                    row[k + 1 : dv],
                    weight + self.dist[below, k],
                    out=row[k + 1 : dv],
                )

    @classmethod
    def build(cls, graph: Graph, order: list[int] | None = None) -> "H2HIndex":
        if graph.num_vertices == 0:
            raise IndexBuildError("cannot index an empty graph")
        if order is None:
            order = min_degree_order(graph)
        sc = contract_in_order(graph, order)
        return cls(graph, sc)

    # ------------------------------------------------------------------
    # queries (Equation 2)
    # ------------------------------------------------------------------
    def distance(self, s: int, t: int) -> float:
        if s == t:
            return 0.0
        if self.anc[s, 0] != self.anc[t, 0]:
            return math.inf  # different trees of the forest: disconnected
        x = self.lca(s, t)
        positions = self.pos[x]
        total = self.dist[s, positions] + self.dist[t, positions]
        return float(total.min())

    def distances(self, pairs: Iterable[tuple[int, int]]) -> list[float]:
        return [self.distance(s, t) for s, t in pairs]

    # ------------------------------------------------------------------
    # sizes (Table 3 comparisons); logical, not padded
    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        return int(self.depth.max()) + 1 if len(self.depth) else 0

    def label_entries(self) -> int:
        return int((self.depth + 1).sum())

    def memory_bytes(self) -> int:
        """Ancestor + distance + position arrays (ragged accounting)."""
        entries = self.label_entries()
        pos_entries = sum(len(p) for p in self.pos)
        return 8 * entries + 8 * entries + 8 * pos_entries

    def shortcut_bytes(self) -> int:
        return self.sc.memory_bytes()

    def validate_against(self, reference) -> None:
        """Cheap sanity check against any distance callable (tests)."""
        for v in range(min(5, self.graph.num_vertices)):
            for u in range(min(5, self.graph.num_vertices)):
                expected = reference(v, u)
                got = self.distance(v, u)
                assert got == expected or math.isclose(got, expected), (v, u, got, expected)
