"""Dijkstra's algorithm and variants — search baselines and test oracle.

These are the classical index-free methods of the paper's Section 2:
single-source Dijkstra, early-exit point-to-point, and bidirectional
Dijkstra [21]. Logically deleted edges (infinite weight) are skipped.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Iterable

import numpy as np

from repro.graph.graph import Graph

__all__ = [
    "dijkstra",
    "dijkstra_distance",
    "bidirectional_dijkstra",
    "dijkstra_subgraph",
]


def dijkstra(
    graph: Graph,
    source: int,
    targets: Iterable[int] | None = None,
) -> np.ndarray:
    """Single-source distances from *source* (``inf`` if unreachable).

    With *targets* given, stops once all of them are settled — the
    classic multi-target early exit.
    """
    n = graph.num_vertices
    dist = np.full(n, math.inf, dtype=np.float64)
    dist[source] = 0.0
    remaining = set(targets) if targets is not None else None
    heap: list[tuple[float, int]] = [(0.0, source)]
    settled = bytearray(n)
    while heap:
        d, v = heapq.heappop(heap)
        if settled[v]:
            continue
        settled[v] = 1
        if remaining is not None:
            remaining.discard(v)
            if not remaining:
                break
        for u, w in graph.neighbors(v).items():
            if settled[u] or math.isinf(w):
                continue
            candidate = d + w
            if candidate < dist[u]:
                dist[u] = candidate
                heapq.heappush(heap, (candidate, u))
    return dist


def dijkstra_distance(graph: Graph, source: int, target: int) -> float:
    """Point-to-point distance with early exit at *target*."""
    if source == target:
        return 0.0
    n = graph.num_vertices
    dist = np.full(n, math.inf, dtype=np.float64)
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    settled = bytearray(n)
    while heap:
        d, v = heapq.heappop(heap)
        if settled[v]:
            continue
        if v == target:
            return d
        settled[v] = 1
        for u, w in graph.neighbors(v).items():
            if settled[u] or math.isinf(w):
                continue
            candidate = d + w
            if candidate < dist[u]:
                dist[u] = candidate
                heapq.heappush(heap, (candidate, u))
    return math.inf


def bidirectional_dijkstra(graph: Graph, source: int, target: int) -> float:
    """Bidirectional Dijkstra [21]: alternate forward/backward searches.

    Terminates when the sum of the two frontier minima reaches the best
    meeting distance found so far.
    """
    if source == target:
        return 0.0
    n = graph.num_vertices
    dist = [
        np.full(n, math.inf, dtype=np.float64),
        np.full(n, math.inf, dtype=np.float64),
    ]
    dist[0][source] = 0.0
    dist[1][target] = 0.0
    heaps: list[list[tuple[float, int]]] = [[(0.0, source)], [(0.0, target)]]
    settled = [bytearray(n), bytearray(n)]
    best = math.inf
    side = 0
    while heaps[0] or heaps[1]:
        if not heaps[side]:
            side = 1 - side
        d, v = heapq.heappop(heaps[side])
        if settled[side][v]:
            continue
        settled[side][v] = 1
        if settled[1 - side][v]:
            best = min(best, dist[0][v] + dist[1][v])
        for u, w in graph.neighbors(v).items():
            if math.isinf(w):
                continue
            candidate = d + w
            if candidate < dist[side][u]:
                dist[side][u] = candidate
                heapq.heappush(heaps[side], (candidate, u))
            if math.isfinite(dist[1 - side][u]):
                best = min(best, dist[side][u] + dist[1 - side][u])
        top = [h[0][0] if h else math.inf for h in heaps]
        if top[0] + top[1] >= best:
            break
        side = 1 - side
    return best


def dijkstra_subgraph(
    graph: Graph,
    source: int,
    target: int,
    allowed: Callable[[int], bool],
) -> float:
    """Point-to-point distance restricted to vertices with ``allowed(v)``.

    The oracle for Definition 4.11 (interval-subgraph distances) and
    Lemma 6.3/6.6 tests: both endpoints must satisfy *allowed*.
    """
    if source == target:
        return 0.0
    dist: dict[int, float] = {source: 0.0}
    heap: list[tuple[float, int]] = [(0.0, source)]
    settled: set[int] = set()
    while heap:
        d, v = heapq.heappop(heap)
        if v in settled:
            continue
        if v == target:
            return d
        settled.add(v)
        for u, w in graph.neighbors(v).items():
            if u in settled or math.isinf(w) or not allowed(u):
                continue
            candidate = d + w
            if candidate < dist.get(u, math.inf):
                dist[u] = candidate
                heapq.heappush(heap, (candidate, u))
    return math.inf
