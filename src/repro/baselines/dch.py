"""Dynamic Contraction Hierarchy (DCH) [17] — Section 3.1 of the paper.

DCH uses a single structure for both queries and updates: the
weight-independent shortcut graph over a min-degree total vertex order.
Queries run a bidirectional Dijkstra restricted to *upward* edges; updates
reuse the same triangle-propagation algorithms as DHL's update hierarchy
(Algorithms 2/3 are rank-generic), which is exactly the paper's point —
DCH maintains quickly but queries slowly.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterable

from repro.graph.graph import Graph
from repro.hierarchy.contraction import (
    ContractionResult,
    contract_in_order,
    min_degree_order,
)
from repro.labelling.maintenance import (
    maintain_shortcuts_decrease,
    maintain_shortcuts_increase,
)

__all__ = ["DCHIndex"]

WeightChange = tuple[int, int, float]


class DCHIndex:
    """Shortcut-based distance index with min-degree ordering."""

    def __init__(self, graph: Graph, sc: ContractionResult):
        self.graph = graph
        self.sc = sc

    @classmethod
    def build(cls, graph: Graph, order: list[int] | None = None) -> "DCHIndex":
        """Contract *graph*; the order defaults to min-degree [4]."""
        if order is None:
            order = min_degree_order(graph)
        sc = contract_in_order(graph, order)
        return cls(graph, sc)

    # ------------------------------------------------------------------
    # queries: bidirectional upward Dijkstra over the shortcut graph
    # ------------------------------------------------------------------
    def distance(self, s: int, t: int) -> float:
        """Exact distance via upward-only bidirectional search."""
        if s == t:
            return 0.0
        sc = self.sc
        dist_f: dict[int, float] = {s: 0.0}
        dist_b: dict[int, float] = {t: 0.0}
        heap_f: list[tuple[float, int]] = [(0.0, s)]
        heap_b: list[tuple[float, int]] = [(0.0, t)]
        settled_f: set[int] = set()
        settled_b: set[int] = set()
        best = math.inf

        def expand(
            heap: list[tuple[float, int]],
            dist: dict[int, float],
            settled: set[int],
            other_dist: dict[int, float],
        ) -> float:
            nonlocal best
            d, v = heapq.heappop(heap)
            if v in settled:
                return best
            settled.add(v)
            other = other_dist.get(v)
            if other is not None and d + other < best:
                best = d + other
            row = sc.wup[v]
            for u in sc.up[v]:
                candidate = d + row[u]
                if candidate < dist.get(u, math.inf):
                    dist[u] = candidate
                    heapq.heappush(heap, (candidate, u))
                    other = other_dist.get(u)
                    if other is not None and candidate + other < best:
                        best = candidate + other
            return best

        while heap_f or heap_b:
            top_f = heap_f[0][0] if heap_f else math.inf
            top_b = heap_b[0][0] if heap_b else math.inf
            if min(top_f, top_b) >= best:
                break
            if top_f <= top_b:
                expand(heap_f, dist_f, settled_f, dist_b)
            else:
                expand(heap_b, dist_b, settled_b, dist_f)
        return best

    def distances(self, pairs: Iterable[tuple[int, int]]) -> list[float]:
        return [self.distance(s, t) for s, t in pairs]

    # ------------------------------------------------------------------
    # updates: rank-generic Algorithms 2/3
    # ------------------------------------------------------------------
    def decrease(self, changes: list[WeightChange]) -> int:
        """Edge-weight decreases; returns the number of affected shortcuts."""
        return len(maintain_shortcuts_decrease(self.sc, changes))

    def increase(self, changes: list[WeightChange]) -> int:
        """Edge-weight increases; returns the number of affected shortcuts."""
        return len(maintain_shortcuts_increase(self.sc, changes))

    def update(self, changes: list[WeightChange]) -> int:
        increases = []
        decreases = []
        for u, v, w in changes:
            current = self.graph.weight(u, v)
            if w > current:
                increases.append((u, v, w))
            elif w < current:
                decreases.append((u, v, w))
        affected = 0
        if increases:
            affected += self.increase(increases)
        if decreases:
            affected += self.decrease(decreases)
        return affected

    def stats(self) -> dict[str, float]:
        return {
            "shortcuts": self.sc.num_shortcuts,
            "shortcut_bytes": self.sc.memory_bytes(),
        }
