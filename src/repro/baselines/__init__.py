"""Baseline distance oracles the paper compares against.

* :mod:`repro.baselines.dijkstra` — Dijkstra and bidirectional Dijkstra
  (search baselines and the correctness oracle for every index).
* :mod:`repro.baselines.astar` — A* with Euclidean and landmark (ALT)
  heuristics.
* :mod:`repro.baselines.dch` — Dynamic Contraction Hierarchy [17]:
  shortcut-only index, upward bidirectional search, fast maintenance.
* :mod:`repro.baselines.h2h` — static H2H-Index [16]: tree decomposition
  over a contraction hierarchy with full-graph distance labels.
* :mod:`repro.baselines.inch2h` — IncH2H [25]: dynamic maintenance of the
  H2H index (the paper's primary competitor).
"""

from repro.baselines.dijkstra import (
    dijkstra,
    dijkstra_distance,
    bidirectional_dijkstra,
    dijkstra_subgraph,
)
from repro.baselines.astar import astar_distance, ALTHeuristic
from repro.baselines.dch import DCHIndex
from repro.baselines.h2h import H2HIndex
from repro.baselines.inch2h import IncH2HIndex

__all__ = [
    "dijkstra",
    "dijkstra_distance",
    "bidirectional_dijkstra",
    "dijkstra_subgraph",
    "astar_distance",
    "ALTHeuristic",
    "DCHIndex",
    "H2HIndex",
    "IncH2HIndex",
]
