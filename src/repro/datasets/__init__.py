"""Dataset suite: synthetic stand-ins for the paper's 10 road networks.

The paper evaluates on nine DIMACS USA road networks [7] and PTV's
Western-Europe network [1]. Those files are not redistributable here and
this environment has no network access, so :mod:`repro.datasets.synthetic`
generates equivalents with matched topology statistics at a configurable
scale (default 1/1000 of the paper's vertex counts — pure-Python index
construction stays in seconds; see DESIGN.md §3). Real DIMACS files drop
in via :func:`repro.datasets.dimacs.load_dimacs_pair`.
"""

from repro.datasets.synthetic import (
    DATASETS,
    DatasetSpec,
    dataset_names,
    load_dataset,
    suite,
)
from repro.datasets.dimacs import load_dimacs_pair

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "dataset_names",
    "load_dataset",
    "suite",
    "load_dimacs_pair",
]
