"""Named synthetic datasets mirroring the paper's Table 1.

Each entry reproduces one of the paper's networks at ``scale`` times its
vertex count (default 1/1000), with a point-distribution style chosen to
echo the real geography: New York is a dense core, the Bay Area wraps an
obstacle, Europe is two landmasses with a corridor, and so on. Weights
are integer travel times.

The suite scale can be overridden globally with the ``REPRO_SCALE``
environment variable (a float multiplier on the default sizes), which the
benchmark profiles use to stay within CI budgets.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.exceptions import ReproError
from repro.graph.generators import delaunay_network
from repro.graph.graph import Graph

__all__ = ["DatasetSpec", "DATASETS", "dataset_names", "load_dataset", "suite"]


@dataclass(frozen=True)
class DatasetSpec:
    """One synthetic network: paper identity plus generator parameters."""

    name: str
    region: str
    paper_vertices: int
    paper_edges: int
    style: str
    seed: int

    def vertices_at(self, scale: float) -> int:
        return max(64, int(round(self.paper_vertices * scale)))

    def generate(self, scale: float = 1e-3) -> Graph:
        """Materialise the network at *scale* of the paper's size."""
        return delaunay_network(
            self.vertices_at(scale),
            seed=self.seed,
            style=self.style,
            edge_factor=1.35,
        )


#: Paper Table 1, in increasing-size order (paper vertex/edge counts are
#: the DIMACS numbers; DIMACS counts directed arcs, hence ~2.7 |V|).
DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec("NY", "New York City", 264_346, 733_846, "city", 101),
        DatasetSpec("BAY", "San Francisco", 321_270, 800_172, "bay", 102),
        DatasetSpec("COL", "Colorado", 435_666, 1_057_066, "uniform", 103),
        DatasetSpec("FLA", "Florida", 1_070_376, 2_712_798, "uniform", 104),
        DatasetSpec("CAL", "California", 1_890_815, 4_657_742, "city", 105),
        DatasetSpec("E", "Eastern USA", 3_598_623, 8_778_114, "uniform", 106),
        DatasetSpec("W", "Western USA", 6_262_104, 15_248_146, "uniform", 107),
        DatasetSpec("CTR", "Central USA", 14_081_816, 34_292_496, "uniform", 108),
        DatasetSpec("USA", "United States", 23_947_347, 58_333_344, "uniform", 109),
        DatasetSpec("EUR", "Western Europe", 18_010_173, 42_560_279, "continental", 110),
    ]
}


def dataset_names() -> list[str]:
    """All dataset names in the paper's Table 1 order."""
    return list(DATASETS)


def default_scale() -> float:
    """Suite scale: 1/1000 of the paper, times ``REPRO_SCALE`` if set."""
    base = 1e-3
    override = os.environ.get("REPRO_SCALE")
    if override:
        try:
            base *= float(override)
        except ValueError as exc:
            raise ReproError(f"invalid REPRO_SCALE={override!r}") from exc
    return base


def load_dataset(name: str, scale: float | None = None) -> Graph:
    """Generate dataset *name* (e.g. ``"NY"``) at the given or default scale."""
    try:
        spec = DATASETS[name]
    except KeyError:
        raise ReproError(
            f"unknown dataset {name!r}; choose from {', '.join(DATASETS)}"
        ) from None
    return spec.generate(default_scale() if scale is None else scale)


def suite(
    names: list[str] | None = None, scale: float | None = None
) -> dict[str, Graph]:
    """Generate several datasets at once; defaults to the full Table 1."""
    return {
        name: load_dataset(name, scale) for name in (names or dataset_names())
    }
