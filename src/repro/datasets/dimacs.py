"""Loader for real DIMACS road-network files (when available).

The paper's USA datasets come from the 9th DIMACS Implementation
Challenge; each network is a ``.gr`` arc file plus a ``.co`` coordinate
file. Point this loader at those files to run the full-scale experiments
on real data with zero code changes.
"""

from __future__ import annotations

from pathlib import Path

from repro.exceptions import GraphFormatError
from repro.graph.graph import Graph
from repro.graph.io import read_dimacs, read_dimacs_coordinates

__all__ = ["load_dimacs_pair"]


def load_dimacs_pair(gr_path: str | Path, co_path: str | Path | None = None) -> Graph:
    """Load a DIMACS ``.gr`` (and optional ``.co``) into a Graph.

    The graph is undirected (DIMACS lists both arc directions; they
    collapse keeping the minimum weight, as in the paper's setting).
    """
    graph = read_dimacs(gr_path, undirected=True)
    if not isinstance(graph, Graph):  # pragma: no cover - defensive
        raise GraphFormatError("expected an undirected graph")
    if co_path is not None:
        coords = read_dimacs_coordinates(co_path)
        if len(coords) != graph.num_vertices:
            raise GraphFormatError(
                f"coordinate count {len(coords)} != vertex count "
                f"{graph.num_vertices}"
            )
        graph.coords = coords
    return graph
