"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything library-specific with a single ``except`` clause while
still distinguishing the common failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "VertexNotFound",
    "EdgeNotFound",
    "GraphFormatError",
    "PartitionError",
    "HierarchyError",
    "IndexBuildError",
    "MaintenanceError",
    "StructuralFallbackRequired",
    "SerializationError",
    "SnapshotCorruptionError",
    "ServiceRuntimeError",
    "ProtocolError",
    "ProtocolTruncationError",
    "ProtocolCorruptionError",
    "ServiceOverloadError",
    "WorkerEpochError",
    "ShardUnavailableError",
    "PartialResultError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Problem with a graph's structure or an invalid graph operation."""


class VertexNotFound(GraphError, KeyError):
    """A vertex id referenced by the caller does not exist in the graph."""

    def __init__(self, vertex: int):
        super().__init__(f"vertex {vertex!r} not in graph")
        self.vertex = vertex


class EdgeNotFound(GraphError, KeyError):
    """An edge referenced by the caller does not exist in the graph."""

    def __init__(self, u: int, v: int):
        super().__init__(f"edge ({u!r}, {v!r}) not in graph")
        self.u = u
        self.v = v


class GraphFormatError(GraphError, ValueError):
    """Malformed external graph data (DIMACS, edge list, JSON...)."""


class PartitionError(ReproError):
    """A partitioning routine could not produce a valid result."""


class HierarchyError(ReproError):
    """Inconsistent query/update hierarchy state."""


class IndexBuildError(ReproError):
    """Index construction failed (bad configuration or degenerate input)."""


class MaintenanceError(ReproError):
    """A dynamic update could not be applied to an index."""


class StructuralFallbackRequired(MaintenanceError):
    """A structural fast path hit a case only a rebuild can absorb.

    Raised from inside a maintenance sweep when a finite shortcut
    candidate targets a pair that compaction removed from the store —
    the store has no slot to hold the result, so the caller must fall
    back to rebuilding the shortcut hierarchy (on the same H_Q). Pure
    weight maintenance can never trigger this; only insertion-seeded
    sweeps over a previously compacted store can.
    """


class SerializationError(ReproError):
    """Saving or loading an index failed."""


class SnapshotCorruptionError(SerializationError):
    """A snapshot directory failed its checksum manifest verification.

    Raised by :func:`repro.core.serialization.verify_snapshot` (and the
    ``load`` entry points that call it) when a file listed in a
    snapshot's ``checksums.json`` is missing or its CRC32 does not match
    what was recorded at save time — a torn copy, a partial write that
    somehow survived the atomic-rename protocol, or bit rot. The message
    names the offending file so operators know what to restore.
    """


class ServiceRuntimeError(ReproError):
    """A serving execution runtime (worker pool, shared memory) failed."""


class ProtocolError(ServiceRuntimeError):
    """A runtime protocol frame was malformed, truncated, or incompatible.

    Raised by the wire codec (:mod:`repro.service.protocol`) when a frame
    fails structural validation: bad magic, a protocol version this build
    does not speak, a length prefix that outruns the received bytes, or an
    unknown message type.
    """


class ProtocolTruncationError(ProtocolError):
    """A frame stopped early: the peer closed (or the bytes ran out)
    mid-frame. The header/buffer table that *did* arrive was coherent —
    this is "replica died mid-send", not "replica is sending garbage",
    and the supervisor treats it as a crash worth a respawn."""


class ProtocolCorruptionError(ProtocolError):
    """A complete frame failed validation: bad magic, an unparseable
    meta section, trailing bytes, an implausible length prefix, or a
    body CRC mismatch. The byte stream can no longer be trusted — the
    connection must be dropped, not retried."""


class ServiceOverloadError(ServiceRuntimeError):
    """The async frontend shed a request because its queue was full.

    Admission control, not failure: the caller should back off and retry.
    The shed is counted in ``dhl_async_shed_total``.
    """


class WorkerEpochError(ServiceRuntimeError):
    """A shard worker refused a batch stamped with an epoch it does not hold."""


class ShardUnavailableError(ServiceRuntimeError):
    """Every replica of a shard is down and its circuit breaker is open.

    Raised on the dispatch path when ``degraded_mode="error"`` (or when
    a sync cannot reach any replica); under the default ``"shed"`` mode
    the scheduler converts it into a :class:`PartialResultError` so the
    rest of the batch still answers.
    """

    def __init__(self, sid: int, message: str | None = None):
        super().__init__(
            message
            or f"no live replica left for shard {sid}; breaker is open"
        )
        self.sid = sid


class PartialResultError(ServiceRuntimeError):
    """A batch answered partially: some pairs were shed by open breakers.

    Graceful degradation, not total failure. ``distances`` holds the
    full result array with ``nan`` at every shed position, ``shed`` is
    the sorted array of shed positions, and ``open_shards`` names the
    shards whose replica pools were down. Callers that can tolerate
    holes should catch this and keep the served positions.
    """

    def __init__(self, distances, shed, open_shards):
        shards = sorted(int(s) for s in open_shards)
        super().__init__(
            f"{len(shed)} of {len(distances)} pairs shed: every replica "
            f"of shard(s) {shards} is down (breaker open)"
        )
        self.distances = distances
        self.shed = shed
        self.open_shards = tuple(shards)
