"""Exception hierarchy for the :mod:`repro` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything library-specific with a single ``except`` clause while
still distinguishing the common failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "VertexNotFound",
    "EdgeNotFound",
    "GraphFormatError",
    "PartitionError",
    "HierarchyError",
    "IndexBuildError",
    "MaintenanceError",
    "StructuralFallbackRequired",
    "SerializationError",
    "ServiceRuntimeError",
    "ProtocolError",
    "ServiceOverloadError",
    "WorkerEpochError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Problem with a graph's structure or an invalid graph operation."""


class VertexNotFound(GraphError, KeyError):
    """A vertex id referenced by the caller does not exist in the graph."""

    def __init__(self, vertex: int):
        super().__init__(f"vertex {vertex!r} not in graph")
        self.vertex = vertex


class EdgeNotFound(GraphError, KeyError):
    """An edge referenced by the caller does not exist in the graph."""

    def __init__(self, u: int, v: int):
        super().__init__(f"edge ({u!r}, {v!r}) not in graph")
        self.u = u
        self.v = v


class GraphFormatError(GraphError, ValueError):
    """Malformed external graph data (DIMACS, edge list, JSON...)."""


class PartitionError(ReproError):
    """A partitioning routine could not produce a valid result."""


class HierarchyError(ReproError):
    """Inconsistent query/update hierarchy state."""


class IndexBuildError(ReproError):
    """Index construction failed (bad configuration or degenerate input)."""


class MaintenanceError(ReproError):
    """A dynamic update could not be applied to an index."""


class StructuralFallbackRequired(MaintenanceError):
    """A structural fast path hit a case only a rebuild can absorb.

    Raised from inside a maintenance sweep when a finite shortcut
    candidate targets a pair that compaction removed from the store —
    the store has no slot to hold the result, so the caller must fall
    back to rebuilding the shortcut hierarchy (on the same H_Q). Pure
    weight maintenance can never trigger this; only insertion-seeded
    sweeps over a previously compacted store can.
    """


class SerializationError(ReproError):
    """Saving or loading an index failed."""


class ServiceRuntimeError(ReproError):
    """A serving execution runtime (worker pool, shared memory) failed."""


class ProtocolError(ServiceRuntimeError):
    """A runtime protocol frame was malformed, truncated, or incompatible.

    Raised by the wire codec (:mod:`repro.service.protocol`) when a frame
    fails structural validation: bad magic, a protocol version this build
    does not speak, a length prefix that outruns the received bytes, or an
    unknown message type.
    """


class ServiceOverloadError(ServiceRuntimeError):
    """The async frontend shed a request because its queue was full.

    Admission control, not failure: the caller should back off and retry.
    The shed is counted in ``dhl_async_shed_total``.
    """


class WorkerEpochError(ServiceRuntimeError):
    """A shard worker refused a batch stamped with an epoch it does not hold."""
