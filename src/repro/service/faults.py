"""Deterministic fault injection for the socket serving plane.

Chaos testing that is reproducible in CI: a :class:`FaultPlan` is a
scriptable schedule of faults keyed by **which replica incarnation**
and **which request number** — no wall-clock, no randomness, no sleeps.
The plan is consulted at the parent-side transport seam (inside
``_ReplicaHandle.request``, before the frame is written), which is
exactly where a real network fault would surface to the scheduler, so
every recovery path — failover, breaker trip, shed, supervisor respawn,
resync — is exercised through its production code.

Actions
-------
``kill``
    SIGTERM the replica process (and reap it) before sending. The send
    may still land in the kernel buffer; the receive then hits EOF —
    the honest shape of "the replica died mid-request", classified as
    :class:`~repro.exceptions.ProtocolTruncationError` by the codec.
``timeout``
    Raise ``socket.timeout`` as if the per-request deadline expired.
    The replica process itself stays up (a *slow* replica, not a dead
    one), but the parent abandons the connection — the supervisor
    replaces it with a fresh incarnation.
``drop``
    The request frame vanishes: raise
    :class:`~repro.exceptions.ProtocolTruncationError` without
    touching the socket.
``truncate``
    The reply arrives torn: same truncation error, same handling — a
    distinct action only so plans document *what* they simulate.
``stall_health``
    Like ``timeout`` but armed only for
    :class:`~repro.service.protocol.HealthCheck` probes, counted on
    the handle's separate health-probe clock — compute traffic passes
    untouched, so plans can test heartbeat-driven death specifically.

Events fire exactly once and are recorded in :attr:`FaultPlan.fired`
(in firing order) so tests can assert the scripted chaos actually
happened.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass

from repro.exceptions import ProtocolTruncationError
from repro.service.protocol import HealthCheck

__all__ = ["FaultEvent", "FaultPlan", "ACTIONS"]

ACTIONS = ("kill", "timeout", "drop", "truncate", "stall_health")


@dataclass(frozen=True)
class FaultEvent:
    """One scripted fault.

    ``at_request`` is the 0-based request counter of the targeted
    ``(sid, replica, incarnation)`` — for ``stall_health`` it counts
    only health probes, for every other action all requests (health
    probes included). Incarnation 0 is the replica spawned at runtime
    construction; each supervised respawn increments it, so a plan can
    kill a replica *and then its replacement*.
    """

    sid: int
    replica: int
    at_request: int
    action: str
    incarnation: int = 0

    def __post_init__(self):
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; one of {ACTIONS}"
            )


class FaultPlan:
    """An ordered, deterministic schedule of :class:`FaultEvent`.

    Pass to ``SocketShardRuntime(fault_plan=...)``; the runtime hands
    it to every replica handle (respawned incarnations included). Not
    thread-safe beyond the handle locks already serialising requests —
    each event targets exactly one handle, whose own lock is held when
    the plan is consulted.
    """

    def __init__(self, events: tuple = ()):
        self._pending: dict[tuple[int, int, int], list[FaultEvent]] = {}
        #: Events that fired, in firing order.
        self.fired: list[FaultEvent] = []
        for event in events:
            self.add(event)

    def add(self, event: FaultEvent) -> "FaultPlan":
        key = (event.sid, event.replica, event.incarnation)
        self._pending.setdefault(key, []).append(event)
        return self

    # -- convenience constructors ---------------------------------------
    def kill(self, sid, replica, *, at_request, incarnation=0):
        return self.add(FaultEvent(sid, replica, at_request, "kill", incarnation))

    def timeout(self, sid, replica, *, at_request, incarnation=0):
        return self.add(
            FaultEvent(sid, replica, at_request, "timeout", incarnation)
        )

    def drop(self, sid, replica, *, at_request, incarnation=0):
        return self.add(FaultEvent(sid, replica, at_request, "drop", incarnation))

    def truncate(self, sid, replica, *, at_request, incarnation=0):
        return self.add(
            FaultEvent(sid, replica, at_request, "truncate", incarnation)
        )

    def stall_health(self, sid, replica, *, at_request, incarnation=0):
        return self.add(
            FaultEvent(sid, replica, at_request, "stall_health", incarnation)
        )

    @property
    def exhausted(self) -> bool:
        """True once every scripted event has fired."""
        return not any(self._pending.values())

    # -- the transport seam ---------------------------------------------
    def apply(self, handle, message) -> None:
        """Advance the handle's fault clock; fire a due event if any.

        Called by ``_ReplicaHandle.request`` with the handle's lock
        held, *before* the frame is written. Raising here is
        indistinguishable from the same failure occurring on the wire —
        the handle marks itself dead and the scheduler fails over.
        """
        is_health = isinstance(message, HealthCheck)
        request_index = handle.requests
        health_index = handle.health_requests
        handle.requests += 1
        if is_health:
            handle.health_requests += 1
        key = (handle.sid, handle.replica, handle.incarnation)
        pending = self._pending.get(key)
        if not pending:
            return
        due = None
        for event in pending:
            if event.action == "stall_health":
                if is_health and event.at_request == health_index:
                    due = event
                    break
            elif event.at_request == request_index:
                due = event
                break
        if due is None:
            return
        pending.remove(due)
        self.fired.append(due)
        if due.action == "kill":
            handle.process.terminate()
            handle.process.join(10)
            # The send below may still buffer; the receive hits EOF —
            # deterministic ProtocolTruncationError on this request.
            return
        if due.action in ("timeout", "stall_health"):
            raise socket.timeout(
                f"injected {due.action} (shard {due.sid} replica "
                f"{due.replica} incarnation {due.incarnation} request "
                f"{due.at_request})"
            )
        if due.action == "drop":
            raise ProtocolTruncationError(
                f"injected drop: request frame to shard {due.sid} replica "
                f"{due.replica} vanished before the peer saw it"
            )
        raise ProtocolTruncationError(
            f"injected truncation: reply frame from shard {due.sid} "
            f"replica {due.replica} tore mid-stream"
        )

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        remaining = sum(len(v) for v in self._pending.values())
        return f"FaultPlan({remaining} pending, {len(self.fired)} fired)"
