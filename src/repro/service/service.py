"""`DistanceService` — the online serving layer over a DHL index.

Fronts :class:`~repro.core.index.DHLIndex` with the three mechanisms a
query-heavy dynamic service needs:

1. **batched queries** — a batch of pairs is answered by the engine's
   zero-copy kernel, which gathers straight from the flat CSR label
   store with numpy reductions (duplicate pairs inside a batch are
   computed once);
2. **an epoch-guarded result cache** — repeated pairs are served from an
   LRU keyed on the index maintenance epoch; invalidation is either a
   lazy O(1) watermark bump or fine-grained eviction of only the pairs
   whose endpoints/hub were touched by the update;
3. **update coalescing** — incoming weight changes buffer in an
   :class:`~repro.service.coalescer.UpdateCoalescer` and apply as one
   merged increase+decrease pass (Algorithms 2-5) when a query needs
   fresh state, the buffer hits ``flush_threshold``, or :meth:`flush`
   is called.

The service itself is backend agnostic: query execution and maintenance
are delegated to an :class:`~repro.service.runtime.ExecutionRuntime` —
in-process over any index by default, or a
:class:`~repro.service.workers.ShardWorkerRuntime` pool of
shared-memory shard worker processes for multi-core serving. Runtimes
may own processes and shared memory, so a service should be
:meth:`close`\\ d (or used as a context manager) when it goes away.

Queries always reflect every submitted update: by default the service
flushes pending changes before answering, so coalescing trades no
consistency — it only batches work between queries.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.core.backend import DistanceBackend
from repro.exceptions import PartialResultError
from repro.labelling.maintenance import MaintenanceStats
from repro.observability import (
    NULL_OBSERVABILITY,
    Observability,
    Span,
    collect_phases,
    phase,
)
from repro.service.cache import CacheStats, EpochLRUCache
from repro.service.coalescer import CoalescerStats, UpdateCoalescer
from repro.service.metrics import LatencyRecorder, LatencySummary, Timer
from repro.service.runtime import ExecutionRuntime, InProcessRuntime

__all__ = ["ServiceStats", "DistanceService"]

WeightChange = tuple[int, int, float]


@dataclass(frozen=True)
class ServiceStats:
    """Point-in-time operational snapshot of a :class:`DistanceService`."""

    epoch: int
    queries: int
    batches: int
    cache: CacheStats
    coalescer: CoalescerStats
    query_latency: LatencySummary
    update_latency: LatencySummary
    shortcuts_changed: int
    labels_changed: int
    #: Execution backend tag — ``in-process/monolithic``,
    #: ``in-process/sharded``, ``worker-pool/sharded[4 workers]`` — so
    #: bench artifacts and logs can tell runtimes apart.
    backend: str = "in-process/monolithic"
    #: Worker-pool scheduler / delta-sync counters
    #: (:meth:`~repro.service.workers.WorkerPoolStats.as_dict`) when the
    #: runtime pools workers, ``None`` for in-process backends.
    worker_pool: dict | None = None
    #: Structural flushes (batches carrying insertions or deletions).
    structural_batches: int = 0
    #: Compaction passes triggered by the dead-slot threshold (or run
    #: explicitly through the service).
    compactions: int = 0
    #: Dead shortcut slots reclaimed by those compactions.
    dead_slots_reclaimed: int = 0
    #: Bytes reclaimed (shortcut slots + label-store slack).
    bytes_reclaimed: int = 0
    #: Pairs shed by open circuit breakers (answered ``nan`` inside a
    #: :class:`~repro.exceptions.PartialResultError`).
    shed_pairs: int = 0
    #: Query batches that raised :class:`PartialResultError` — served
    #: partially because a shard's replica pool was down.
    partial_batches: int = 0

    def summary(self) -> str:
        lines = [
            f"epoch {self.epoch}: {self.queries} queries in "
            f"{self.batches} calls",
            f"  backend : {self.backend}",
            f"  queries : {self.query_latency}",
            f"  updates : {self.update_latency}",
            f"  cache   : {self.cache}",
            f"  coalesce: {self.coalescer}",
            f"  applied : {self.shortcuts_changed} shortcuts, "
            f"{self.labels_changed} label entries",
        ]
        if self.partial_batches:
            lines.append(
                f"  degraded: {self.partial_batches} partial batches, "
                f"{self.shed_pairs} pairs shed by open breakers"
            )
        if self.structural_batches or self.compactions:
            lines.append(
                f"  structural: {self.structural_batches} batches, "
                f"{self.compactions} compactions "
                f"({self.dead_slots_reclaimed} dead slots, "
                f"{self.bytes_reclaimed} B reclaimed)"
            )
        if self.worker_pool is not None:
            wp = self.worker_pool
            lines.append(
                f"  workers : {wp.get('sub_batches', 0)} sub-batches "
                f"({wp.get('intra_pairs', 0)} intra / "
                f"{wp.get('cross_pairs', 0)} cross pairs), "
                f"{wp.get('epoch_broadcasts', 0)} epoch broadcasts, "
                f"{wp.get('delta_syncs', 0)} delta syncs "
                f"({wp.get('delta_bytes', 0)} B), "
                f"{wp.get('republishes', 0)} republishes, "
                f"{wp.get('full_syncs', 0)} full syncs"
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.summary()


class DistanceService:
    """Batched, cached, update-coalescing facade over a DHL index.

    Parameters
    ----------
    backend:
        The single construction entry point: anything satisfying the
        :class:`~repro.core.backend.DistanceBackend` Protocol —
        monolithic :class:`DHLIndex`, :class:`DirectedDHLIndex`,
        region-sharded :class:`ShardedDHLIndex` — *or* an
        already-constructed
        :class:`~repro.service.runtime.ExecutionRuntime` wrapping one
        (e.g. a :class:`~repro.service.workers.ShardWorkerRuntime` or
        :class:`~repro.service.socket_runtime.SocketShardRuntime`).
        A bare backend is wrapped in an
        :class:`~repro.service.runtime.InProcessRuntime`. The service
        owns the update path (submit weight changes through the
        service, not the index, or flush manually) and, when handed a
        runtime, its lifecycle (:meth:`close` closes it). The
        ``index=`` keyword is a deprecated alias for this parameter;
        passing neither, both, or an object that is neither a backend
        nor a runtime raises ``ValueError``.
    cache_capacity:
        Maximum cached pair results (LRU beyond that).
    fine_grained_eviction:
        When True, a flush evicts only cached pairs whose endpoint or
        hub was touched by the update (``MaintenanceStats``'s affected
        label vertices and shortcut endpoints); when False, the whole
        cache is invalidated by an O(1) epoch watermark bump. Backends
        that cannot certify per-pair staleness (the sharded index, whose
        distances also depend on boundary/overlay labels) downgrade this
        to the epoch watermark automatically.
    flush_threshold:
        Auto-flush once this many distinct edges are buffered.
    auto_flush_on_query:
        Flush pending updates before answering queries so results always
        reflect submitted traffic. Disable only for workloads that
        tolerate bounded staleness between flushes.
    workers:
        Thread count forwarded to the parallel maintenance variants.
    observability:
        An :class:`~repro.observability.Observability` bundle (metrics
        registry + request tracer + slow log). Defaults to the null
        bundle, which makes every instrumentation point a no-op call —
        zero overhead unless a caller opts in with
        ``Observability.enabled(...)``.
    """

    def __init__(
        self,
        backend: DistanceBackend | ExecutionRuntime | None = None,
        *,
        index: DistanceBackend | ExecutionRuntime | None = None,
        cache_capacity: int = 65_536,
        fine_grained_eviction: bool = False,
        flush_threshold: int = 256,
        auto_flush_on_query: bool = True,
        workers: int | None = None,
        observability: Observability | None = None,
    ):
        if backend is not None and index is not None:
            raise ValueError(
                "DistanceService received both backend= and index=; "
                "index= is a deprecated alias for backend=, pass one only"
            )
        if index is not None:
            warnings.warn(
                "DistanceService(index=...) is deprecated; "
                "pass backend= (positionally or by keyword) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            backend = index
        if backend is None:
            raise ValueError(
                "DistanceService needs a backend: a built index satisfying "
                "DistanceBackend, or an ExecutionRuntime wrapping one"
            )
        if isinstance(backend, ExecutionRuntime):
            self.runtime = backend
        elif isinstance(backend, DistanceBackend):
            self.runtime = InProcessRuntime(backend)
        else:
            raise ValueError(
                "backend must satisfy the DistanceBackend Protocol or be an "
                f"ExecutionRuntime; got {type(backend).__name__}"
            )
        self.index = self.runtime.index
        self._closed = False
        self.observability = observability or NULL_OBSERVABILITY
        # The runtime traces its scheduler/worker round-trips under the
        # service's request spans and is counted in the same registry.
        self.runtime.observability = self.observability
        registry = self.observability.registry
        self._m_queries = registry.counter(
            "dhl_queries_total", "Pair queries answered"
        )
        self._m_batches = registry.counter(
            "dhl_query_batches_total", "Service query calls (a batch is one)"
        )
        self._m_query_seconds = registry.histogram(
            "dhl_query_seconds", "Per-call query latency in seconds"
        )
        self._m_flushes = registry.counter(
            "dhl_flushes_total", "Coalesced update flushes applied"
        )
        self._m_flush_seconds = registry.histogram(
            "dhl_flush_seconds", "Coalesced update flush latency in seconds"
        )
        self._m_flush_edges = registry.counter(
            "dhl_flush_edges_total", "Net weight changes applied by flushes"
        )
        self._m_slow_queries = registry.counter(
            "dhl_slow_queries_total", "Query calls over the slow-query threshold"
        )
        self._m_slow_flushes = registry.counter(
            "dhl_slow_flushes_total", "Flushes over the slow-flush threshold"
        )
        self._m_shed_pairs = registry.counter(
            "dhl_shed_pairs_total",
            "Pairs shed (answered nan) because a shard's breaker was open",
        )
        self._m_partial_batches = registry.counter(
            "dhl_partial_batches_total",
            "Query batches degraded to a PartialResultError",
        )
        self.cache = EpochLRUCache(cache_capacity)
        self.coalescer = UpdateCoalescer()
        self.fine_grained_eviction = (
            fine_grained_eviction and self.runtime.supports_fine_grained_eviction
        )
        self.flush_threshold = max(1, flush_threshold)
        self.auto_flush_on_query = auto_flush_on_query
        self.workers = workers
        self.query_latency = LatencyRecorder()
        self.update_latency = LatencyRecorder()
        self._queries = 0
        self._batches = 0
        self._shortcuts_changed = 0
        self._labels_changed = 0
        self._structural_batches = 0
        self._compactions = 0
        self._dead_slots_reclaimed = 0
        self._bytes_reclaimed = 0
        self._shed_pairs = 0
        self._partial_batches = 0
        # Last index epoch this service reconciled its cache against.
        # Updates applied directly on the index (structural ops, another
        # caller) advance the epoch without telling us which pairs moved,
        # so any drift forces a conservative full invalidation.
        self._synced_epoch = self.index.epoch

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        return self.index.epoch

    def distance(self, s: int, t: int) -> float:
        """Single-pair distance through the cache."""
        self._pre_query()
        with self.observability.tracer.trace("distance", s=s, t=t):
            with Timer() as timer:
                value = self._cached_distance(s, t)
        self._queries += 1
        self._batches += 1
        self.query_latency.record(timer.seconds, 1)
        self._note_query(timer.seconds, 1)
        return value

    def distances(self, pairs: Sequence[tuple[int, int]]) -> np.ndarray:
        """Batch distances: cache lookups, then one vectorised miss pass."""
        pairs = list(pairs)
        self._pre_query()
        with self.observability.tracer.trace("distances", pairs=len(pairs)):
            with Timer() as timer:
                out = self._batch(pairs)
        self._queries += len(pairs)
        self._batches += 1
        self.query_latency.record(timer.seconds, max(1, len(pairs)))
        self._note_query(timer.seconds, len(pairs))
        return out

    def _note_query(self, seconds: float, pairs: int) -> None:
        self._m_queries.inc(pairs)
        self._m_batches.inc()
        self._m_query_seconds.observe(seconds)
        if self.observability.slow_log.note_query(
            seconds, pairs=pairs, epoch=self.index.epoch
        ):
            self._m_slow_queries.inc()

    def _cached_distance(self, s: int, t: int) -> float:
        if s == t:
            return 0.0
        key = (s, t) if s <= t else (t, s)
        entry = self.cache.get(key)
        if entry is not None:
            return entry[0]
        # Hubs only earn their cost when fine-grained eviction reads them.
        if self.fine_grained_eviction:
            value, hub = self.runtime.distance_with_hub(s, t)
        else:
            value, hub = self.runtime.distance(s, t), -1
        self.cache.put(key, value, hub, self.index.epoch)
        return value

    def _batch(self, pairs: list[tuple[int, int]]) -> np.ndarray:
        tracer = self.observability.tracer
        out = np.empty(len(pairs), dtype=np.float64)
        cache = self.cache
        # Positions needing computation, grouped by normalised key so a
        # hotspot pair repeated inside one batch is computed only once.
        miss_positions: dict[tuple[int, int], list[int]] = {}
        with tracer.trace("cache_scan"):
            for idx, (s, t) in enumerate(pairs):
                if s == t:
                    out[idx] = 0.0
                    continue
                key = (s, t) if s <= t else (t, s)
                entry = cache.get(key)
                if entry is not None:
                    out[idx] = entry[0]
                else:
                    miss_positions.setdefault(key, []).append(idx)
        if miss_positions:
            keys = list(miss_positions)
            shed_keys: set[tuple[int, int]] = set()
            open_shards: tuple[int, ...] = ()
            with tracer.trace("runtime", misses=len(keys)):
                if self.fine_grained_eviction:
                    values, hubs = self.runtime.distances_with_hubs(keys)
                    hubs = hubs.tolist()
                else:
                    try:
                        values = self.runtime.distances(keys)
                    except PartialResultError as exc:
                        # Degraded batch: the runtime answered what it
                        # could and nan'd pairs owned by breaker-open
                        # shards. Keep the served values (and cache
                        # them), then re-raise re-aligned over the
                        # caller's positions.
                        values = exc.distances
                        shed_keys = {keys[int(i)] for i in exc.shed}
                        open_shards = exc.open_shards
                    hubs = [-1] * len(keys)
            epoch = self.index.epoch
            with tracer.trace("cache_fill"):
                for key, value, hub in zip(keys, values, hubs):
                    if key not in shed_keys:
                        cache.put(key, float(value), int(hub), epoch)
                    for idx in miss_positions[key]:
                        out[idx] = value
            if shed_keys:
                shed_positions = np.array(
                    sorted(
                        idx
                        for key in shed_keys
                        for idx in miss_positions[key]
                    ),
                    dtype=np.int64,
                )
                self._partial_batches += 1
                self._shed_pairs += len(shed_positions)
                self._m_partial_batches.inc()
                self._m_shed_pairs.inc(len(shed_positions))
                raise PartialResultError(out, shed_positions, open_shards)
        return out

    def k_nearest(
        self, s: int, candidates: Sequence[int], k: int
    ) -> list[tuple[int, float]]:
        """The *k* candidates closest to *s*, through the cached batch path."""
        distances = self.distances([(s, c) for c in candidates])
        order = np.argsort(distances, kind="stable")
        out: list[tuple[int, float]] = []
        for i in order[: max(0, k)]:
            if not math.isfinite(distances[i]):
                break
            out.append((candidates[int(i)], float(distances[i])))
        return out

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def submit(self, u: int, v: int, weight: float) -> None:
        """Buffer one weight change; auto-flushes at ``flush_threshold``."""
        self.coalescer.add(u, v, weight)
        if self.coalescer.pending_edges >= self.flush_threshold:
            self.flush()

    def submit_many(self, changes: Iterable[WeightChange]) -> None:
        for u, v, w in changes:
            self.submit(u, v, w)

    def submit_insert(self, u: int, v: int, weight: float) -> None:
        """Buffer a road insertion (new-link construction).

        Coalesces against pending traffic on the same edge — inserting
        over a queued deletion folds to a weight change; a later
        :meth:`submit_delete` cancels the pair outright. Flushes route
        through the backend's structural ``apply_batch`` path.
        """
        self.coalescer.add_insert(u, v, weight)
        if self.coalescer.pending_edges >= self.flush_threshold:
            self.flush()

    def submit_delete(self, u: int, v: int) -> None:
        """Buffer a road deletion (closure); see :meth:`submit_insert`."""
        self.coalescer.add_delete(u, v)
        if self.coalescer.pending_edges >= self.flush_threshold:
            self.flush()

    @property
    def pending_updates(self) -> int:
        return self.coalescer.pending_edges

    def flush(self) -> MaintenanceStats:
        """Apply buffered changes as one coalesced batch; evict the cache."""
        self._reconcile_epoch_drift()
        if not self.coalescer:
            return MaintenanceStats()
        observability = self.observability
        if not observability.is_enabled:
            return self._flush_pending()[0]
        # A flush gets its own trace (it may run inside _pre_query,
        # before any request span opens) and a phase collector: every
        # phase() fired below — the flush steps, the maintenance
        # kernels' inner loops, the worker delta sync — lands in the
        # per-phase latency histograms.
        with observability.tracer.trace("flush"):
            with collect_phases() as collector, Timer() as timer:
                stats, applied_edges = self._flush_pending()
        if applied_edges:
            self._m_flushes.inc()
            self._m_flush_edges.inc(applied_edges)
            self._m_flush_seconds.observe(timer.seconds)
            registry = observability.registry
            for name, dt in collector.as_dict().items():
                if name.startswith("structural."):
                    registry.histogram(
                        "dhl_structural_phase_seconds",
                        "Wall seconds per structural-update phase "
                        "(slot allocation, fast-path sweep, fallback "
                        "rebuild, compaction), per flush",
                        labels={"phase": name},
                    ).observe(dt)
                else:
                    registry.histogram(
                        "dhl_maintenance_phase_seconds",
                        "Wall seconds per maintenance/flush phase, per flush",
                        labels={"phase": name},
                    ).observe(dt)
            if observability.slow_log.note_flush(
                timer.seconds, edges=applied_edges, epoch=self.index.epoch
            ):
                self._m_slow_flushes.inc()
        return stats

    def _flush_pending(self) -> tuple[MaintenanceStats, int]:
        """Drain + apply + evict; returns (stats, net edges applied)."""
        with phase("flush.drain"):
            batch = self.coalescer.drain(self.index.graph)
        if not batch.size:
            return MaintenanceStats(), 0
        with Timer() as timer:
            if batch.is_structural:
                with phase("flush.apply_structural"):
                    result = self.runtime.apply_structural(
                        insertions=batch.insertions,
                        deletions=batch.deletions,
                        weight_changes=batch.changes(),
                        workers=self.workers,
                    )
                # StructuralStats carries its MaintenanceStats in
                # .maintenance; ShardedMaintenanceStats *is* one.
                stats = getattr(result, "maintenance", result)
                self._structural_batches += 1
            else:
                with phase("flush.apply"):
                    stats = self.runtime.apply_update(
                        batch.changes(), self.workers
                    )
        self.update_latency.record(timer.seconds, batch.size)
        self._shortcuts_changed += stats.shortcuts_changed
        self._labels_changed += stats.labels_changed
        with phase("flush.cache_evict"):
            if self.fine_grained_eviction:
                affected = set(stats.affected_labels)
                for v, w in stats.affected_shortcuts:
                    affected.add(v)
                    affected.add(w)
                self.cache.evict_vertices(affected)
            else:
                self.cache.invalidate_all(self.index.epoch)
        self._synced_epoch = self.index.epoch
        if batch.deletions:
            self._maybe_compact()
        return stats, batch.size

    def _maybe_compact(self) -> None:
        """Compact the shortcut/label stores once deletions have pushed
        the dead-slot fraction over ``config.compaction_threshold``.

        Only runs after flushes that carried deletions — those are the
        only source of new dead slots — so the O(slots) fraction scan
        never taxes pure weight-change traffic. A threshold of 1.0
        disables auto-compaction entirely.
        """
        threshold = getattr(self.index.config, "compaction_threshold", 1.0)
        if threshold >= 1.0:
            return
        if getattr(self.index, "dead_fraction", 0.0) < threshold:
            return
        result = self.runtime.compact()
        self._compactions += 1
        self._dead_slots_reclaimed += result.dead_slots_reclaimed
        self._bytes_reclaimed += result.bytes_reclaimed
        # Compaction bumps the index epoch; the cache watermark must
        # follow even though queried distances are unchanged, because
        # fine-grained state (hubs, slot ids) may have been re-packed.
        self.cache.invalidate_all(self.index.epoch)
        self._synced_epoch = self.index.epoch

    def compact(self) -> None:
        """Force a compaction pass regardless of the dead-slot fraction."""
        result = self.runtime.compact()
        self._compactions += 1
        self._dead_slots_reclaimed += result.dead_slots_reclaimed
        self._bytes_reclaimed += result.bytes_reclaimed
        self.cache.invalidate_all(self.index.epoch)
        self._synced_epoch = self.index.epoch

    def _pre_query(self) -> None:
        if self.auto_flush_on_query and self.coalescer:
            self.flush()
        self._reconcile_epoch_drift()

    def _reconcile_epoch_drift(self) -> None:
        # An epoch advance this service did not perform means someone
        # updated the index directly; we cannot know which pairs moved,
        # so the whole cache is conservatively invalidated. Runs at the
        # top of flush() too — fine-grained eviction only covers the
        # service's own batch and must not absorb foreign updates.
        epoch = self.index.epoch
        if epoch != self._synced_epoch:
            self.cache.invalidate_all(epoch)
            self._synced_epoch = epoch

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the runtime's resources (worker processes, shared
        memory segments, sockets); idempotent across every runtime —
        in-process runtimes own nothing, so this is free, and repeated
        calls (context-manager exit after an explicit close, shared
        teardown paths) are no-ops."""
        if self._closed:
            return
        self._closed = True
        self.runtime.close()

    def __enter__(self) -> "DistanceService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        pool = self.runtime.pool_stats()
        return ServiceStats(
            epoch=self.index.epoch,
            queries=self._queries,
            batches=self._batches,
            cache=self.cache.stats(),
            coalescer=self.coalescer.stats(),
            query_latency=self.query_latency.summary(),
            update_latency=self.update_latency.summary(),
            shortcuts_changed=self._shortcuts_changed,
            labels_changed=self._labels_changed,
            backend=self.runtime.backend,
            worker_pool=pool.as_dict() if pool is not None else None,
            structural_batches=self._structural_batches,
            compactions=self._compactions,
            dead_slots_reclaimed=self._dead_slots_reclaimed,
            bytes_reclaimed=self._bytes_reclaimed,
            shed_pairs=self._shed_pairs,
            partial_batches=self._partial_batches,
        )

    def metrics(self) -> dict[str, dict]:
        """Current registry snapshot, ``{"name{labels}": values}``.

        Empty when observability is disabled. Mirror counters (cache,
        coalescer, worker pool, epoch) are synced from their stats
        objects first, so the snapshot is self-contained.
        """
        self._sync_registry()
        return self.observability.registry.snapshot()

    def dump_metrics(self, path, *, fmt: str = "jsonl") -> Path:
        """Write the registry to *path* as JSON-lines or Prometheus text."""
        if fmt not in ("jsonl", "prometheus"):
            raise ValueError(f"unknown metrics format {fmt!r}")
        self._sync_registry()
        registry = self.observability.registry
        text = registry.to_prometheus() if fmt == "prometheus" else registry.to_jsonl()
        path = Path(path)
        path.write_text(text)
        return path

    def last_trace(self) -> Span | None:
        """Most recently finished sampled request span tree, if any."""
        return self.observability.tracer.last_trace()

    def _sync_registry(self) -> None:
        """Mirror the frontend stats objects into registry instruments.

        The hot paths maintain their own cheap counters (the cache and
        coalescer predate the registry); rather than double-count per
        operation, their totals are copied into registry gauges at
        export time.
        """
        registry = self.observability.registry
        if not registry.enabled:
            return
        registry.gauge("dhl_epoch", "Index maintenance epoch").set(
            self.index.epoch
        )
        registry.gauge(
            "dhl_pending_updates", "Distinct edges buffered in the coalescer"
        ).set(self.coalescer.pending_edges)
        cache = self.cache.stats()
        for field_name in (
            "hits",
            "misses",
            "size",
            "capacity",
            "lru_evictions",
            "invalidated",
        ):
            registry.gauge(
                f"dhl_cache_{field_name}", f"Result cache {field_name}"
            ).set(getattr(cache, field_name))
        coalescer = self.coalescer.stats()
        for field_name in (
            "submitted",
            "merged_duplicates",
            "noops_dropped",
            "flushes",
            "cancelled_pairs",
            "structural_submitted",
        ):
            registry.gauge(
                f"dhl_coalescer_{field_name}", f"Update coalescer {field_name}"
            ).set(getattr(coalescer, field_name))
        for field_name, value in (
            ("structural_batches", self._structural_batches),
            ("compactions", self._compactions),
            ("dead_slots_reclaimed", self._dead_slots_reclaimed),
            ("bytes_reclaimed", self._bytes_reclaimed),
        ):
            registry.gauge(
                f"dhl_{field_name}", f"Structural updates: {field_name}"
            ).set(value)
        registry.gauge(
            "dhl_shed_pairs", "Pairs shed by open circuit breakers"
        ).set(self._shed_pairs)
        registry.gauge(
            "dhl_partial_batches", "Query batches degraded to partial results"
        ).set(self._partial_batches)
        registry.gauge(
            "dhl_shortcuts_changed", "Shortcut mutations applied"
        ).set(self._shortcuts_changed)
        registry.gauge(
            "dhl_labels_changed", "Label entry mutations applied"
        ).set(self._labels_changed)
        pool = self.runtime.pool_stats()
        if pool is not None:
            for field_name, value in pool.as_dict().items():
                registry.gauge(
                    f"dhl_worker_{field_name}",
                    f"Worker-pool scheduler {field_name}",
                ).set(value)

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        return (
            f"DistanceService(epoch={self.index.epoch}, "
            f"backend={self.runtime.backend}, "
            f"cached={len(self.cache)}, pending={self.pending_updates})"
        )
