"""Shared-memory shard workers: the multiprocess execution runtime.

:class:`ShardWorkerRuntime` hosts each region shard of a
:class:`~repro.core.sharded.ShardedDHLIndex` in a long-lived worker
process. At startup the parent *publishes* every shard's packed flat
label buffers (``label_values`` float64 + ``label_offsets`` int64 — the
same two-array layout the v3 snapshots write to disk) into
``multiprocessing.shared_memory`` segments; each worker attaches them
and re-binds a :class:`~repro.labelling.labels.HierarchicalLabelling`
onto the shared buffers, so the big label payload crosses the process
boundary exactly once and queries gather from it zero-copy.

**Protocol.** Parent and worker speak the typed runtime protocol of
:mod:`repro.service.protocol`: every request/reply is a versioned
dataclass serialised by the length-framed binary codec and carried as
one ``send_bytes``/``recv_bytes`` frame per message (the pipe already
preserves frame boundaries, so no extra length prefix). The only pickle
left is inside the startup :class:`~repro.service.protocol.SpecRequest`
— compute, delta and republish traffic is struct + JSON header + raw
numpy buffers. The worker-side state machine is
:class:`ShardExecutor`, shared verbatim with the TCP transport in
:mod:`repro.service.socket_runtime` — the two runtimes differ only in
how frames travel and how label buffers sync.

**Batch scheduling** lives in the shared
:class:`~repro.service.runtime.RegionPairScheduler` base: pair batches
split by ``(source region, target region)`` exactly like the in-process
sharded engine; each group becomes typed
:class:`~repro.service.protocol.SubQuery` messages dispatched
concurrently (one I/O thread per worker, workers truly parallel across
cores). The parent runs the overlay min-plus combine over returned
fans — the overlay index itself never leaves the parent.

**Epoch broadcast.** ``apply_update`` runs maintenance in the parent
(where the authoritative shards live), then re-publishes only what
moved: for each touched shard the parent copies the *changed label
slots* — driven by ``MaintenanceStats.affected_labels`` — into the
shared segment in place and broadcasts the shard's new epoch. Workers
stamp-check every batch and refuse one carrying a newer epoch than they
hold (a missed broadcast), so a stale worker can never serve silently
wrong distances. Only a label-layout change (an extended label slot, a
store rebuild) falls back to publishing fresh segments.

Worker processes are started with the ``spawn`` method — no fork-only
assumptions — and every segment is unlinked by :meth:`close` (or the
runtime's context manager), including on construction failure.
"""

from __future__ import annotations

import pickle
import threading
from multiprocessing import get_context, shared_memory
from typing import Iterable

import numpy as np

from repro.exceptions import ServiceRuntimeError, WorkerEpochError
from repro.observability import Span, maybe_child
from repro.service.protocol import (
    AckReply,
    ByeReply,
    ComputeBatch,
    ComputeReply,
    EpochDelta,
    ErrorReply,
    HealthCheck,
    HealthReply,
    Message,
    ReadyReply,
    Republish,
    Shutdown,
    SpecRequest,
    StaleReply,
    SubQuery,
    SubResult,
    TraceEnvelope,
    decode_frame,
    encode_frame,
)
from repro.service.runtime import RegionPairScheduler, WorkerPoolStats

__all__ = ["ShardExecutor", "ShardWorkerRuntime", "WorkerPoolStats"]

_STARTUP_TIMEOUT = 120.0
_SHUTDOWN_TIMEOUT = 5.0


# ---------------------------------------------------------------------------
# shared-memory helpers
# ---------------------------------------------------------------------------

def _attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without adopting its lifetime.

    The parent owns every segment (it created them and unlinks them in
    ``close``); an attaching worker must not register the segment with
    the resource tracker — spawned children share the *parent's*
    tracker process, so a worker-side registration (or unregistration)
    corrupts the parent's bookkeeping and can unlink live segments.
    Python 3.13 has ``track=False`` for exactly this; older
    interpreters suppress the registration call instead. The patch
    window is safe: workers are single-threaded when attaching.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # py<3.13: no track parameter
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def skip_shared_memory(rname, rtype):
            if rtype != "shared_memory":  # pragma: no cover - not hit here
                original(rname, rtype)

        resource_tracker.register = skip_shared_memory
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class _Segment:
    """A parent-owned shared-memory segment and its numpy view."""

    def __init__(self, shm: shared_memory.SharedMemory, array: np.ndarray):
        self.shm = shm
        self.array = array

    @property
    def meta(self) -> tuple[str, int]:
        return self.shm.name, len(self.array)

    def destroy(self) -> None:
        self.array = None
        self.shm.close()
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def _publish_array(array: np.ndarray, dtype) -> _Segment:
    """Create a segment sized for *array* and copy the data in."""
    array = np.ascontiguousarray(array, dtype=dtype)
    shm = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
    view = np.ndarray(array.shape, dtype=dtype, buffer=shm.buf)
    view[...] = array
    return _Segment(shm, view)


# ---------------------------------------------------------------------------
# the worker-side state machine (transport independent)
# ---------------------------------------------------------------------------

class ShardExecutor:
    """One shard's protocol state machine, independent of transport.

    Both worker mains — the pipe worker below and the TCP worker in
    :mod:`repro.service.socket_runtime` — decode frames and hand the
    messages here. The executor owns the shard structure, the bound
    label buffers, the held epoch and the cached overlay block; it
    answers every message with the matching reply dataclass and never
    touches a byte stream, which is what makes the compute path
    testable in-process and reusable across transports.
    """

    def __init__(self):
        self.index = None
        self.boundary_local = None
        self.epoch = 0
        self.served = 0
        self.values: np.ndarray | None = None
        self.offsets: np.ndarray | None = None
        self._block: np.ndarray | None = None
        self._block_epoch = -1

    # -- lifecycle ------------------------------------------------------
    def setup(self, spec: SpecRequest, values, offsets) -> ReadyReply:
        """Unpickle the shard structure, bind the label buffers."""
        payload = pickle.loads(spec.payload)
        self.index = payload["index"]
        self.boundary_local = payload["boundary_local"]
        self.epoch = spec.epoch
        self.bind(values, offsets)
        return ReadyReply(
            num_vertices=self.index.graph.num_vertices, epoch=self.epoch
        )

    def bind(self, values: np.ndarray, offsets: np.ndarray) -> None:
        """Rebind the labelling + query engine onto fresh buffers."""
        from repro.labelling.labels import HierarchicalLabelling
        from repro.labelling.query import QueryEngine

        self.values = values
        self.offsets = offsets
        labels = HierarchicalLabelling.from_shared_buffers(
            values, offsets, self.index.hq.tau
        )
        self.index.labels = labels
        # Resolve the engine in the worker process: the compiled package
        # probes (and warms) locally, so a numba-less worker downgrades
        # cleanly even if the parent compiled.
        self.index._engine = QueryEngine(
            self.index.hq, labels, engine=self.index.config.resolve_engine()
        )

    # -- maintenance ----------------------------------------------------
    def apply_delta(self, delta: EpochDelta) -> AckReply:
        """Adopt the epoch; splice inline label deltas first if present.

        The shared-memory transport ships ``vertices=None`` (the parent
        already wrote the values into the segment in place); the socket
        transport ships the changed label arrays inline and the
        executor splices them into its private writable buffers using
        its own offsets.
        """
        if delta.vertices is not None:
            values, offsets = self.values, self.offsets
            payload = delta.payload
            pos = 0
            for v in delta.vertices:
                start = int(offsets[v])
                length = int(offsets[v + 1]) - start
                values[start : start + length] = payload[pos : pos + length]
                pos += length
        self.epoch = delta.epoch
        return AckReply()

    # -- compute --------------------------------------------------------
    def compute(self, batch: ComputeBatch) -> ComputeReply | StaleReply:
        """Answer one batch's worth of shard-local work at its epoch.

        A batch stamped with a different epoch than held is refused
        without touching the buffers — the consistency contract that
        keeps a worker that missed a broadcast from serving silently
        wrong distances.
        """
        if batch.epoch != self.epoch:
            return StaleReply(held=self.epoch, stamped=batch.epoch)
        self.served += 1
        from repro.sharding.engine import boundary_fan, min_plus_compact

        worker_span = Span("shard_compute") if batch.want_trace else None
        engine = self.index.engine
        results: list[SubResult] = []
        for sub_index, sub in enumerate(batch.subs):
            sub_span = (
                worker_span.child(f"sub[{sub_index}]")
                if worker_span is not None
                else None
            )
            block = self._resolve_block(sub)
            intra = ds = dt = None
            if sub.s is not None:
                with maybe_child(sub_span, "intra_kernel"):
                    intra = engine.distances_arrays(sub.s, sub.t)
            if sub.fan_src is not None:
                with maybe_child(sub_span, "fan_src"):
                    ds = boundary_fan(
                        engine, sub.fan_src.vertices, self.boundary_local,
                        compact=True,
                    )
            if sub.fan_dst is not None:
                with maybe_child(sub_span, "fan_dst"):
                    dt = boundary_fan(
                        engine, sub.fan_dst.vertices, self.boundary_local,
                        compact=True,
                    )
            if block is not None:
                # Intra-shard sub: fold the boundary route here, return
                # the final array instead of two fan matrices.
                with maybe_child(sub_span, "min_plus"):
                    best = min_plus_compact(ds[0], ds[1], block, dt[0], dt[1])
                    if intra is not None:
                        best = np.minimum(intra, best)
                results.append(SubResult(final=best))
            elif intra is not None:
                results.append(SubResult(final=intra))
            else:
                results.append(
                    SubResult(
                        ds=ds[0] if ds is not None else None,
                        ds_inverse=ds[1] if ds is not None else None,
                        dt=dt[0] if dt is not None else None,
                        dt_inverse=dt[1] if dt is not None else None,
                    )
                )
            if sub_span is not None:
                sub_span.finish()
        trace = (
            TraceEnvelope(spans=worker_span.finish().to_dict())
            if worker_span is not None
            else None
        )
        return ComputeReply(results=results, trace=trace)

    def _resolve_block(self, sub: SubQuery) -> np.ndarray | None:
        """The sub's overlay block: shipped inline, or held from before.

        The scheduler elides a block only when it believes this target
        holds the stamped overlay epoch; a mismatch here means the
        parent's bookkeeping diverged, which must surface, not silently
        use stale overlay distances.
        """
        if sub.block is not None:
            self._block = sub.block
            self._block_epoch = sub.block_epoch
            return sub.block
        if sub.block_cached:
            if self._block is None or self._block_epoch != sub.block_epoch:
                raise RuntimeError("no cached overlay block held")
            return self._block
        return None

    # -- health ---------------------------------------------------------
    def health(self, probe: HealthCheck) -> HealthReply:
        """Answer a liveness probe without touching the label buffers."""
        return HealthReply(
            nonce=probe.nonce, epoch=self.epoch, served=self.served
        )


# ---------------------------------------------------------------------------
# the worker process (pipe transport)
# ---------------------------------------------------------------------------

def _attach_views(message) -> tuple[list, np.ndarray, np.ndarray]:
    """Attach the segments a :class:`SpecRequest`/:class:`Republish`
    names; returns read-only numpy views over them.

    The parent is the only writer; a worker-side write would silently
    diverge from the authoritative store, so it raises instead.
    """
    values_shm = _attach_shm(message.shm_values)
    offsets_shm = _attach_shm(message.shm_offsets)
    values = np.ndarray(
        (message.values_len,), dtype=np.float64, buffer=values_shm.buf
    )
    offsets = np.ndarray(
        (message.offsets_len,), dtype=np.int64, buffer=offsets_shm.buf
    )
    values.flags.writeable = False
    offsets.flags.writeable = False
    return [values_shm, offsets_shm], values, offsets


def _worker_main(conn) -> None:
    """One shard worker: attach buffers, answer frames until shutdown.

    Runs as the target of a spawned process (module-level, so it is
    importable under any start method). Each pipe message is one
    protocol frame; the :class:`ShardExecutor` holds all state. Worker
    exceptions become :class:`~repro.service.protocol.ErrorReply`
    frames instead of hanging the parent.
    """
    executor = ShardExecutor()
    shms: list = []
    try:
        while True:
            try:
                frame = conn.recv_bytes()
            except (EOFError, OSError):
                break
            try:
                message = decode_frame(frame)
                if isinstance(message, SpecRequest):
                    shms, values, offsets = _attach_views(message)
                    reply: Message = executor.setup(message, values, offsets)
                elif isinstance(message, ComputeBatch):
                    reply = executor.compute(message)
                elif isinstance(message, EpochDelta):
                    reply = executor.apply_delta(message)
                elif isinstance(message, HealthCheck):
                    reply = executor.health(message)
                elif isinstance(message, Republish):
                    old = shms
                    shms, values, offsets = _attach_views(message)
                    executor.bind(values, offsets)
                    executor.epoch = message.epoch
                    # Ack *before* the parent unlinks the old segments;
                    # detach our old mappings now that the swap is done.
                    for shm in old:
                        shm.close()
                    reply = AckReply()
                elif isinstance(message, Shutdown):
                    conn.send_bytes(encode_frame(ByeReply()))
                    break
                else:  # pragma: no cover - future message types
                    reply = ErrorReply(
                        message=f"unhandled {type(message).__name__}"
                    )
            except Exception as exc:  # surface instead of hanging the parent
                reply = ErrorReply(message=f"{type(exc).__name__}: {exc}")
            conn.send_bytes(encode_frame(reply))
    finally:
        for shm in shms:
            try:
                shm.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass
        conn.close()


# ---------------------------------------------------------------------------
# parent-side worker handle
# ---------------------------------------------------------------------------

class _WorkerHandle:
    """Parent-side endpoint of one shard worker.

    Owns the shard's shared segments and the duplex pipe. All traffic
    goes through :meth:`request`, serialised by a lock — within one
    batch the scheduler already funnels a worker's requests through a
    single I/O thread, the lock guards cross-batch races.
    """

    def __init__(self, ctx, sid: int, index):
        self.sid = sid
        self.process = None
        self.conn = None
        self.segments: list[_Segment] = []
        self._lock = threading.Lock()
        try:
            values, offsets = index.shard_buffers(sid)
            self.values_seg = _publish_array(values, np.float64)
            self.segments.append(self.values_seg)
            self.offsets_seg = _publish_array(offsets, np.int64)
            self.segments.append(self.offsets_seg)
            self.conn, child_conn = ctx.Pipe()
            self.process = ctx.Process(
                target=_worker_main,
                args=(child_conn,),
                name=f"dhl-shard-worker-{sid}",
                daemon=True,
            )
            self.process.start()
            child_conn.close()
            self.conn.send_bytes(
                encode_frame(
                    SpecRequest(
                        payload=index.shard_worker_payload(sid),
                        shm_values=self.values_seg.meta[0],
                        shm_offsets=self.offsets_seg.meta[0],
                        values_len=self.values_seg.meta[1],
                        offsets_len=self.offsets_seg.meta[1],
                    )
                )
            )
            reply = self.request_reply(timeout=_STARTUP_TIMEOUT)
            if not isinstance(reply, ReadyReply):
                raise ServiceRuntimeError(
                    f"shard worker {sid} failed to start: {reply!r}"
                )
        except BaseException:
            self.destroy()
            raise

    def request_reply(self, timeout: float | None = None) -> Message:
        if timeout is not None and not self.conn.poll(timeout):
            raise ServiceRuntimeError(
                f"shard worker {self.sid} did not answer within {timeout}s"
            )
        return decode_frame(self.conn.recv_bytes())

    def request(self, message: Message, timeout: float | None = None) -> Message:
        """Send one request frame and decode the worker's reply."""
        with self._lock:
            try:
                self.conn.send_bytes(encode_frame(message))
                reply = self.request_reply(timeout)
            except (BrokenPipeError, EOFError, OSError) as exc:
                raise ServiceRuntimeError(
                    f"shard worker {self.sid} is gone ({exc!r}); "
                    "the runtime must be closed"
                ) from exc
        if isinstance(reply, ErrorReply):
            raise ServiceRuntimeError(f"shard worker {self.sid}: {reply.message}")
        if isinstance(reply, StaleReply):
            raise WorkerEpochError(
                f"shard worker {self.sid} holds epoch {reply.held} but the "
                f"batch is stamped {reply.stamped}"
                + (
                    " (missed epoch broadcast)"
                    if reply.stamped > reply.held
                    else ""
                )
            )
        return reply

    # -- delta publication ----------------------------------------------
    def delta_applicable(self, labels) -> bool:
        """True when the live store still fits the published layout."""
        return bool(
            np.array_equal(np.diff(self.offsets_seg.array), labels.lengths)
        )

    def write_full(self, labels) -> int:
        """Copy the whole value buffer into the segment, in place.

        Used when the parent index moved without telling the runtime
        which labels changed (a direct ``index.update`` bypassing
        ``apply_update``); requires :meth:`delta_applicable`.
        """
        values, _ = labels.export_buffers()
        self.values_seg.array[...] = values
        return int(values.nbytes)

    def write_deltas(self, labels, affected: Iterable[int]) -> int:
        """Copy changed label slots into the shared segment, in place.

        Returns bytes written. Only valid when :meth:`delta_applicable`;
        the worker sees the new values immediately (same pages), the
        epoch broadcast afterwards makes the cut-over explicit.
        """
        offsets = self.offsets_seg.array
        values = self.values_seg.array
        shipped = 0
        for v in affected:
            start = int(offsets[v])
            length = int(offsets[v + 1]) - start
            values[start : start + length] = labels.view(v)
            shipped += 8 * length
        return shipped

    def republish(self, labels, new_epoch: int) -> int:
        """Publish fresh segments (layout changed) and swap the worker over."""
        values, offsets = labels.export_buffers()
        old = self.segments
        self.values_seg = _publish_array(values, np.float64)
        self.offsets_seg = _publish_array(offsets, np.int64)
        self.segments = [self.values_seg, self.offsets_seg]
        try:
            self.request(
                Republish(
                    epoch=new_epoch,
                    shm_values=self.values_seg.meta[0],
                    shm_offsets=self.offsets_seg.meta[0],
                    values_len=self.values_seg.meta[1],
                    offsets_len=self.offsets_seg.meta[1],
                )
            )
        finally:
            # Unlink the old pair whether the worker acked re-attachment
            # or died mid-swap — a failed request must not strand the
            # (large) previous label segments in /dev/shm.
            for segment in old:
                segment.destroy()
        return int(self.values_seg.array.nbytes + self.offsets_seg.array.nbytes)

    # -- teardown --------------------------------------------------------
    def destroy(self) -> None:
        """Join the worker and unlink every owned segment; idempotent."""
        if self.process is not None and self.process.is_alive():
            try:
                with self._lock:
                    self.conn.send_bytes(encode_frame(Shutdown()))
                    self.request_reply(timeout=_SHUTDOWN_TIMEOUT)
            except Exception:
                pass
            self.process.join(_SHUTDOWN_TIMEOUT)
            if self.process.is_alive():  # pragma: no cover - stuck worker
                self.process.terminate()
                self.process.join(_SHUTDOWN_TIMEOUT)
        if self.conn is not None:
            self.conn.close()
            self.conn = None
        self.process = None
        for segment in self.segments:
            segment.destroy()
        self.segments = []


# ---------------------------------------------------------------------------
# the runtime
# ---------------------------------------------------------------------------

class ShardWorkerRuntime(RegionPairScheduler):
    """Serve a sharded index from one worker process per region shard.

    Parameters
    ----------
    index:
        A built :class:`~repro.core.sharded.ShardedDHLIndex`. The
        parent keeps the authoritative copy (updates apply here); the
        workers hold attached label buffers for query execution.
    start_method:
        ``multiprocessing`` start method; ``spawn`` by default and the
        only method the runtime is tested with (fork would work on
        Linux but inherits arbitrary parent state).
    """

    kind = "worker-pool"

    def __init__(self, index, *, start_method: str = "spawn"):
        super().__init__(index)
        # Overlay epoch at which each worker last received its intra
        # boundary block (-1: never shipped).
        self._block_epochs = [-1] * index.k
        self._workers: list[_WorkerHandle] = []
        ctx = get_context(start_method)
        try:
            # Spawn + handshake concurrently: interpreter boot dominates
            # worker startup, so k workers come up in ~one boot.
            futures = [
                self._pool.submit(_WorkerHandle, ctx, sid, index)
                for sid in range(index.k)
            ]
            errors = []
            for future in futures:
                try:
                    self._workers.append(future.result())
                except BaseException as exc:
                    errors.append(exc)
            if errors:
                raise errors[0]
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # ExecutionRuntime surface
    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        return f"worker-pool/sharded[{len(self._workers)} workers]"

    @property
    def worker_count(self) -> int:
        return len(self._workers)

    # ------------------------------------------------------------------
    # transport hooks
    # ------------------------------------------------------------------
    def _dispatch(
        self,
        requests: dict[int, list[tuple[tuple[int, int], SubQuery]]],
        request_span: Span | None = None,
    ) -> dict[tuple[int, int], SubResult]:
        """Ship each worker its sub-queries in one frame, concurrently.

        One pipe round trip per worker per batch (the I/O threads only
        wait on their worker, so the k shard processes compute in
        parallel). Overlay blocks the worker already holds are elided
        per target. With *request_span*, each round trip gets a
        ``worker[sid]`` child span and the worker is asked to ship its
        own subtree back, which is grafted under that child — the spans
        are finished even when the worker refuses the batch as stale,
        so an aborted trace still shows the round trip that failed.
        """

        def run(sid: int, items):
            handle = self._workers[sid]
            held = self._block_epochs[sid]
            shipped = -1
            subs = []
            for _, sub in items:
                if sub.block is not None:
                    if sub.block_epoch == held:
                        sub = sub.without_block()
                    else:
                        shipped = sub.block_epoch
                subs.append(sub)
            worker_span = None
            if request_span is not None:
                worker_span = request_span.child(f"worker[{sid}]")
                worker_span.annotate(subs=len(subs))
            try:
                reply = handle.request(
                    ComputeBatch(
                        epoch=self._epochs[sid],
                        subs=subs,
                        want_trace=worker_span is not None,
                    )
                )
            finally:
                if worker_span is not None:
                    worker_span.finish()
            if worker_span is not None and reply.trace is not None:
                worker_span.graft(reply.trace.spans)
            if shipped >= 0:
                # Only a delivered block counts as held worker-side; a
                # failed dispatch re-ships next batch.
                self._block_epochs[sid] = shipped
            return [
                (slot, result)
                for (slot, _), result in zip(items, reply.results)
            ]

        futures = [
            self._pool.submit(run, sid, items) for sid, items in requests.items()
        ]
        replies: dict[tuple[int, int], SubResult] = {}
        for future in futures:
            for slot, result in future.result():
                replies[slot] = result
        return replies

    def _sync_shard(self, sid: int, affected: Iterable[int]) -> None:
        handle = self._workers[sid]
        labels = self.index.shards[sid].labels
        if handle.delta_applicable(labels):
            self.stats.delta_bytes += handle.write_deltas(labels, affected)
            handle.request(EpochDelta(epoch=self._epochs[sid]))
            self.stats.delta_syncs += 1
        else:  # label layout moved: publish fresh buffers
            self.stats.republish_bytes += handle.republish(
                labels, self._epochs[sid]
            )
            self.stats.republishes += 1

    def _full_sync(self, sid: int) -> None:
        handle = self._workers[sid]
        labels = self.index.shards[sid].labels
        if handle.delta_applicable(labels):
            handle.write_full(labels)
            handle.request(EpochDelta(epoch=self._epochs[sid]))
        else:
            self.stats.republish_bytes += handle.republish(
                labels, self._epochs[sid]
            )
            self.stats.republishes += 1

    def _close_transport(self) -> None:
        for handle in self._workers:
            try:
                handle.destroy()
            except Exception:  # pragma: no cover - teardown best effort
                pass
        self._workers = []

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        state = "closed" if self._closed else f"{len(self._workers)} workers"
        return f"ShardWorkerRuntime(k={self.index.k}, {state})"
