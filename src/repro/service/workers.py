"""Shared-memory shard workers: the multiprocess execution runtime.

:class:`ShardWorkerRuntime` hosts each region shard of a
:class:`~repro.core.sharded.ShardedDHLIndex` in a long-lived worker
process. At startup the parent *publishes* every shard's packed flat
label buffers (``label_values`` float64 + ``label_offsets`` int64 — the
same two-array layout the v3 snapshots write to disk) into
``multiprocessing.shared_memory`` segments; each worker attaches them
and re-binds a :class:`~repro.labelling.labels.HierarchicalLabelling`
onto the shared buffers, so the big label payload crosses the process
boundary exactly once and queries gather from it zero-copy.

**Batch scheduling.** An incoming pair batch is grouped by
``(source region, target region)`` exactly like the in-process sharded
engine; each group becomes worker requests dispatched concurrently
(one I/O thread per worker, workers truly parallel across cores):
intra-shard groups ask the owning worker for the shard-kernel distances
plus both boundary fans in one round trip, cross-shard groups ask the
two owning workers for one fan each. The parent then runs the overlay
min-plus combine over the returned fans — the overlay index itself
never leaves the parent.

**Epoch broadcast.** ``apply_update`` runs maintenance in the parent
(where the authoritative shards live), then re-publishes only what
moved: for each touched shard the parent copies the *changed label
slots* — driven by ``MaintenanceStats.affected_labels`` — into the
shared segment in place and broadcasts the shard's new epoch. Workers
stamp-check every batch and refuse one carrying a newer epoch than they
hold (a missed broadcast), so a stale worker can never serve silently
wrong distances. Only a label-layout change (an extended label slot, a
store rebuild) falls back to publishing fresh segments.

Worker processes are started with the ``spawn`` method — no fork-only
assumptions — and every segment is unlinked by :meth:`close` (or the
runtime's context manager), including on construction failure.
"""

from __future__ import annotations

import pickle
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context, shared_memory
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import ServiceRuntimeError, WorkerEpochError
from repro.observability import Span, maybe_child, phase
from repro.service.runtime import ExecutionRuntime
from repro.sharding.engine import (
    boundary_fan,
    min_plus_compact,
    region_pair_groups,
)
from repro.sharding.stats import ShardedMaintenanceStats

__all__ = ["ShardWorkerRuntime", "WorkerPoolStats"]

WeightChange = tuple[int, int, float]

_STARTUP_TIMEOUT = 120.0
_SHUTDOWN_TIMEOUT = 5.0


# ---------------------------------------------------------------------------
# shared-memory helpers
# ---------------------------------------------------------------------------

def _attach_shm(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without adopting its lifetime.

    The parent owns every segment (it created them and unlinks them in
    ``close``); an attaching worker must not register the segment with
    the resource tracker — spawned children share the *parent's*
    tracker process, so a worker-side registration (or unregistration)
    corrupts the parent's bookkeeping and can unlink live segments.
    Python 3.13 has ``track=False`` for exactly this; older
    interpreters suppress the registration call instead. The patch
    window is safe: workers are single-threaded when attaching.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # py<3.13: no track parameter
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def skip_shared_memory(rname, rtype):
            if rtype != "shared_memory":  # pragma: no cover - not hit here
                original(rname, rtype)

        resource_tracker.register = skip_shared_memory
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


@dataclass
class _Segment:
    """A parent-owned shared-memory segment and its numpy view."""

    shm: shared_memory.SharedMemory
    array: np.ndarray

    @property
    def meta(self) -> tuple[str, int]:
        return self.shm.name, len(self.array)

    def destroy(self) -> None:
        self.array = None
        self.shm.close()
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


def _publish_array(array: np.ndarray, dtype) -> _Segment:
    """Create a segment sized for *array* and copy the data in."""
    array = np.ascontiguousarray(array, dtype=dtype)
    shm = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
    view = np.ndarray(array.shape, dtype=dtype, buffer=shm.buf)
    view[...] = array
    return _Segment(shm, view)


# ---------------------------------------------------------------------------
# the worker process
# ---------------------------------------------------------------------------

def _worker_attach(index, values_meta, offsets_meta) -> list:
    """Bind *index*'s labelling onto the published segments (zero-copy)."""
    from repro.labelling.labels import HierarchicalLabelling
    from repro.labelling.query import QueryEngine

    values_shm = _attach_shm(values_meta[0])
    offsets_shm = _attach_shm(offsets_meta[0])
    values = np.ndarray((values_meta[1],), dtype=np.float64, buffer=values_shm.buf)
    offsets = np.ndarray((offsets_meta[1],), dtype=np.int64, buffer=offsets_shm.buf)
    # The parent is the only writer; a worker-side write would silently
    # diverge from the authoritative store, so make it raise instead.
    values.flags.writeable = False
    offsets.flags.writeable = False
    labels = HierarchicalLabelling.from_shared_buffers(values, offsets, index.hq.tau)
    index.labels = labels
    index._engine = QueryEngine(index.hq, labels)
    return [values_shm, offsets_shm]


def _worker_main(conn) -> None:
    """One shard worker: attach buffers, answer requests until shutdown.

    Runs as the target of a spawned process (module-level, so it is
    importable under any start method). The protocol is one pickled
    tuple per request, answered in order:

    ``("spec", payload, values_meta, offsets_meta)``
        First message. Unpickle the shard structure, attach the shared
        label buffers, reply ``("ready", num_vertices)``.
    ``("compute", epoch, subs[, want_trace])``
        Answer one batch's worth of shard-local work at *epoch* — all
        of this worker's sub-batches travel in one message, so a batch
        costs one pipe round trip per worker. Each sub is
        ``(s, t, fan_src, fan_dst, block)``: batch distances for the
        ``s``/``t`` local-id arrays (or ``None``), boundary fans for
        the ``fan_src``/``fan_dst`` arrays (or ``None``), and — for
        intra-shard sub-batches — the overlay boundary block, so the
        worker runs the min-plus combine itself and ships back one
        final array instead of two fan matrices. The block only
        changes with overlay maintenance, so the parent ships it once
        per overlay epoch and sends the marker string ``"cached"``
        afterwards; the worker keeps the last received block. Fans are
        returned in deduplicated ``(unique_matrix, inverse)`` form, so
        pipe bytes scale with unique endpoints, not raw pair count.
        Replies ``("ok", [(best_or_intra, ds, dt), ...], span_dict)`` —
        ``span_dict`` is the worker-side span tree (dict form) when the
        optional ``want_trace`` flag was sent truthy, else ``None`` —
        or ``("stale", held, stamped)`` without touching the buffers
        when the epoch does not match.
    ``("epoch", new_epoch)``
        The parent finished an in-place delta publish; adopt the epoch.
    ``("republish", new_epoch, values_meta, offsets_meta)``
        The label layout changed: detach, attach the new segments,
        adopt the epoch. Replies ``("ok",)`` *before* the parent unlinks
        the old segments.
    ``("shutdown",)``
        Reply ``("bye",)``, detach everything, exit.
    """
    index = None
    boundary_local = None
    shms: list = []
    epoch = 0
    cached_block = None
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            op = message[0]
            try:
                if op == "spec":
                    payload = pickle.loads(message[1])
                    index = payload["index"]
                    boundary_local = payload["boundary_local"]
                    shms = _worker_attach(index, message[2], message[3])
                    reply = ("ready", index.graph.num_vertices)
                elif op == "compute":
                    stamped = message[1]
                    if stamped != epoch:
                        reply = ("stale", epoch, stamped)
                    else:
                        # Optional trailing flag: a sampled parent trace
                        # wants this worker's span subtree shipped back.
                        want_trace = len(message) > 3 and bool(message[3])
                        worker_span = Span("shard_compute") if want_trace else None
                        engine = index.engine
                        results = []
                        for sub_index, (s, t, fan_src, fan_dst, block) in (
                            enumerate(message[2])
                        ):
                            sub_span = (
                                worker_span.child(f"sub[{sub_index}]")
                                if worker_span is not None
                                else None
                            )
                            if isinstance(block, str):  # "cached" marker
                                if cached_block is None:
                                    raise RuntimeError(
                                        "no cached overlay block held"
                                    )
                                block = cached_block
                            elif block is not None:
                                cached_block = block
                            intra = ds = dt = None
                            if s is not None:
                                with maybe_child(sub_span, "intra_kernel"):
                                    intra = engine.distances_arrays(s, t)
                            if fan_src is not None:
                                with maybe_child(sub_span, "fan_src"):
                                    ds = boundary_fan(
                                        engine,
                                        fan_src,
                                        boundary_local,
                                        compact=True,
                                    )
                            if fan_dst is not None:
                                with maybe_child(sub_span, "fan_dst"):
                                    dt = boundary_fan(
                                        engine,
                                        fan_dst,
                                        boundary_local,
                                        compact=True,
                                    )
                            if block is not None:
                                # Intra-shard sub: fold the boundary
                                # route here, return the final array.
                                with maybe_child(sub_span, "min_plus"):
                                    best = min_plus_compact(
                                        ds[0], ds[1], block, dt[0], dt[1]
                                    )
                                    if intra is not None:
                                        best = np.minimum(intra, best)
                                results.append((best, None, None))
                            else:
                                results.append((intra, ds, dt))
                            if sub_span is not None:
                                sub_span.finish()
                        reply = (
                            "ok",
                            results,
                            worker_span.finish().to_dict()
                            if worker_span is not None
                            else None,
                        )
                elif op == "epoch":
                    epoch = message[1]
                    reply = ("ok",)
                elif op == "republish":
                    old = shms
                    shms = _worker_attach(index, message[2], message[3])
                    for shm in old:
                        shm.close()
                    epoch = message[1]
                    reply = ("ok",)
                elif op == "shutdown":
                    conn.send(("bye",))
                    break
                else:
                    reply = ("error", f"unknown op {op!r}")
            except Exception as exc:  # surface instead of hanging the parent
                reply = ("error", f"{type(exc).__name__}: {exc}")
            conn.send(reply)
    finally:
        for shm in shms:
            try:
                shm.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass
        conn.close()


# ---------------------------------------------------------------------------
# parent-side worker handle
# ---------------------------------------------------------------------------

class _WorkerHandle:
    """Parent-side endpoint of one shard worker.

    Owns the shard's shared segments and the duplex pipe. All traffic
    goes through :meth:`request`, serialised by a lock — within one
    batch the scheduler already funnels a worker's requests through a
    single I/O thread, the lock guards cross-batch races.
    """

    def __init__(self, ctx, sid: int, index):
        self.sid = sid
        self.process = None
        self.conn = None
        self.segments: list[_Segment] = []
        self._lock = threading.Lock()
        try:
            values, offsets = index.shard_buffers(sid)
            self.values_seg = _publish_array(values, np.float64)
            self.segments.append(self.values_seg)
            self.offsets_seg = _publish_array(offsets, np.int64)
            self.segments.append(self.offsets_seg)
            self.conn, child_conn = ctx.Pipe()
            self.process = ctx.Process(
                target=_worker_main,
                args=(child_conn,),
                name=f"dhl-shard-worker-{sid}",
                daemon=True,
            )
            self.process.start()
            child_conn.close()
            self.conn.send(
                (
                    "spec",
                    index.shard_worker_payload(sid),
                    self.values_seg.meta,
                    self.offsets_seg.meta,
                )
            )
            reply = self.request_reply(timeout=_STARTUP_TIMEOUT)
            if reply[0] != "ready":
                raise ServiceRuntimeError(
                    f"shard worker {sid} failed to start: {reply!r}"
                )
        except BaseException:
            self.destroy()
            raise

    def request_reply(self, timeout: float | None = None):
        if timeout is not None and not self.conn.poll(timeout):
            raise ServiceRuntimeError(
                f"shard worker {self.sid} did not answer within {timeout}s"
            )
        return self.conn.recv()

    def request(self, message: tuple, timeout: float | None = None):
        """Send one request and decode the worker's reply."""
        with self._lock:
            try:
                self.conn.send(message)
                reply = self.request_reply(timeout)
            except (BrokenPipeError, EOFError, OSError) as exc:
                raise ServiceRuntimeError(
                    f"shard worker {self.sid} is gone ({exc!r}); "
                    "the runtime must be closed"
                ) from exc
        if reply[0] == "error":
            raise ServiceRuntimeError(f"shard worker {self.sid}: {reply[1]}")
        if reply[0] == "stale":
            held, stamped = reply[1], reply[2]
            raise WorkerEpochError(
                f"shard worker {self.sid} holds epoch {held} but the batch "
                f"is stamped {stamped}"
                + (" (missed epoch broadcast)" if stamped > held else "")
            )
        return reply

    # -- delta publication ----------------------------------------------
    def delta_applicable(self, labels) -> bool:
        """True when the live store still fits the published layout."""
        return bool(
            np.array_equal(np.diff(self.offsets_seg.array), labels.lengths)
        )

    def write_full(self, labels) -> int:
        """Copy the whole value buffer into the segment, in place.

        Used when the parent index moved without telling the runtime
        which labels changed (a direct ``index.update`` bypassing
        ``apply_update``); requires :meth:`delta_applicable`.
        """
        values, _ = labels.export_buffers()
        self.values_seg.array[...] = values
        return int(values.nbytes)

    def write_deltas(self, labels, affected: Iterable[int]) -> int:
        """Copy changed label slots into the shared segment, in place.

        Returns bytes written. Only valid when :meth:`delta_applicable`;
        the worker sees the new values immediately (same pages), the
        epoch broadcast afterwards makes the cut-over explicit.
        """
        offsets = self.offsets_seg.array
        values = self.values_seg.array
        shipped = 0
        for v in affected:
            start = int(offsets[v])
            length = int(offsets[v + 1]) - start
            values[start : start + length] = labels.view(v)
            shipped += 8 * length
        return shipped

    def republish(self, labels, new_epoch: int) -> int:
        """Publish fresh segments (layout changed) and swap the worker over."""
        values, offsets = labels.export_buffers()
        old = self.segments
        self.values_seg = _publish_array(values, np.float64)
        self.offsets_seg = _publish_array(offsets, np.int64)
        self.segments = [self.values_seg, self.offsets_seg]
        try:
            self.request(
                ("republish", new_epoch, self.values_seg.meta, self.offsets_seg.meta)
            )
        finally:
            # Unlink the old pair whether the worker acked re-attachment
            # or died mid-swap — a failed request must not strand the
            # (large) previous label segments in /dev/shm.
            for segment in old:
                segment.destroy()
        return int(self.values_seg.array.nbytes + self.offsets_seg.array.nbytes)

    # -- teardown --------------------------------------------------------
    def destroy(self) -> None:
        """Join the worker and unlink every owned segment; idempotent."""
        if self.process is not None and self.process.is_alive():
            try:
                with self._lock:
                    self.conn.send(("shutdown",))
                    self.request_reply(timeout=_SHUTDOWN_TIMEOUT)
            except Exception:
                pass
            self.process.join(_SHUTDOWN_TIMEOUT)
            if self.process.is_alive():  # pragma: no cover - stuck worker
                self.process.terminate()
                self.process.join(_SHUTDOWN_TIMEOUT)
        if self.conn is not None:
            self.conn.close()
            self.conn = None
        self.process = None
        for segment in self.segments:
            segment.destroy()
        self.segments = []


# ---------------------------------------------------------------------------
# the runtime
# ---------------------------------------------------------------------------

@dataclass
class WorkerPoolStats:
    """Scheduler and epoch-broadcast counters of a worker-pool runtime.

    ``sub_batches`` counts worker requests (the split granularity),
    ``intra_pairs``/``cross_pairs`` how the traffic divided, and the
    broadcast counters certify the delta path: after N flushes,
    ``delta_syncs + republishes == shards touched across those flushes``
    and ``delta_bytes`` stays far below N full buffer copies.
    """

    batches: int = 0
    pairs: int = 0
    intra_pairs: int = 0
    cross_pairs: int = 0
    sub_batches: int = 0
    epoch_broadcasts: int = 0
    delta_syncs: int = 0
    delta_bytes: int = 0
    republishes: int = 0
    republish_bytes: int = 0
    #: Whole-buffer re-syncs forced by maintenance that bypassed
    #: ``apply_update`` (direct index updates; epoch drift).
    full_syncs: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


class ShardWorkerRuntime(ExecutionRuntime):
    """Serve a sharded index from one worker process per region shard.

    Parameters
    ----------
    index:
        A built :class:`~repro.core.sharded.ShardedDHLIndex`. The
        parent keeps the authoritative copy (updates apply here); the
        workers hold attached label buffers for query execution.
    start_method:
        ``multiprocessing`` start method; ``spawn`` by default and the
        only method the runtime is tested with (fork would work on
        Linux but inherits arbitrary parent state).
    """

    kind = "worker-pool"
    # Sharded distances have no per-pair hub certificate (see
    # ShardedDHLIndex); the cache must use epoch invalidation.
    supports_fine_grained_eviction = False

    def __init__(self, index, *, start_method: str = "spawn"):
        from repro.core.sharded import ShardedDHLIndex

        if not isinstance(index, ShardedDHLIndex):
            raise TypeError(
                "ShardWorkerRuntime requires a ShardedDHLIndex; got "
                f"{type(index).__name__} (use InProcessRuntime instead)"
            )
        self.index = index
        self.stats = WorkerPoolStats()
        self._epochs = [0] * index.k
        # Overlay epoch at which each worker last received its intra
        # boundary block (-1: never shipped).
        self._block_epochs = [-1] * index.k
        self._index_epoch = index.epoch
        self._workers: list[_WorkerHandle] = []
        self._pool: ThreadPoolExecutor | None = None
        self._closed = False
        ctx = get_context(start_method)
        try:
            self._pool = ThreadPoolExecutor(
                max_workers=index.k, thread_name_prefix="shard-io"
            )
            # Spawn + handshake concurrently: interpreter boot dominates
            # worker startup, so k workers come up in ~one boot.
            futures = [
                self._pool.submit(_WorkerHandle, ctx, sid, index)
                for sid in range(index.k)
            ]
            errors = []
            for future in futures:
                try:
                    self._workers.append(future.result())
                except BaseException as exc:
                    errors.append(exc)
            if errors:
                raise errors[0]
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # ExecutionRuntime surface
    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        return f"worker-pool/sharded[{len(self._workers)} workers]"

    @property
    def worker_count(self) -> int:
        return len(self._workers)

    def distances(self, pairs: Sequence[tuple[int, int]]) -> np.ndarray:
        pairs = list(pairs)
        if not pairs:
            return np.empty(0, dtype=np.float64)
        arr = np.asarray(pairs, dtype=np.int64)
        return self.distances_arrays(arr[:, 0], arr[:, 1])

    def distances_arrays(self, s: np.ndarray, t: np.ndarray) -> np.ndarray:
        """Batch distances via the region-pair-aware batch scheduler."""
        if self._closed:
            raise ServiceRuntimeError("runtime is closed")
        self._reconcile_index_epoch()
        # Attach scheduler/worker spans under the caller's open request
        # span (None when the request was not sampled or tracing is off).
        request_span = self.observability.tracer.current
        owner = self.index
        s = np.asarray(s, dtype=np.int64)
        t = np.asarray(t, dtype=np.int64)
        if not len(s):
            return np.empty(0, dtype=np.float64)
        out = np.full(len(s), np.inf, dtype=np.float64)
        rs = owner.region_of[s]
        rt = owner.region_of[t]
        local_s = owner.local_of[s]
        local_t = owner.local_of[t]
        has_overlay = owner.overlay is not None
        overlay_epoch = owner.overlay.epoch if has_overlay else 0

        groups: list[tuple[np.ndarray, int, int]] = []
        requests: dict[int, list[tuple[tuple[int, int], tuple]]] = {}
        shipped_blocks: dict[int, int] = {}

        def enqueue(sid: int, slot: tuple[int, int], sub: tuple) -> None:
            requests.setdefault(sid, []).append((slot, sub))
            self.stats.sub_batches += 1

        def intra_block(i: int):
            # The worker keeps the last block it saw; only an overlay
            # maintenance epoch forces a fresh ship.
            if self._block_epochs[i] == overlay_epoch:
                return "cached"
            shipped_blocks[i] = overlay_epoch
            return engine.overlay_block(i, i)

        engine = owner.engine  # overlay blocks + their epoch cache
        # Same (region_s, region_t) split as the in-process sharded
        # engine, but each group becomes worker sub-batches.
        with maybe_child(request_span, "scheduler"):
            for g, (idx, i, j) in enumerate(region_pair_groups(rs, rt, owner.k)):
                groups.append((idx, i, j))
                s_local = local_s[idx]
                t_local = local_t[idx]
                fan = (
                    has_overlay
                    and len(owner.boundary_local[i])
                    and len(owner.boundary_local[j])
                )
                if i == j:
                    self.stats.intra_pairs += len(idx)
                    # The (tiny, epoch-cached) overlay block travels with
                    # the sub-batch: the owning worker folds the boundary
                    # route itself and ships back one final array.
                    enqueue(
                        i,
                        (g, "final"),
                        (
                            s_local,
                            t_local,
                            s_local if fan else None,
                            t_local if fan else None,
                            intra_block(i) if fan else None,
                        ),
                    )
                else:
                    self.stats.cross_pairs += len(idx)
                    if fan:
                        engine.overlay_block(i, j)  # warm the cache serially
                        enqueue(i, (g, "src"), (None, None, s_local, None, None))
                        enqueue(j, (g, "dst"), (None, None, None, t_local, None))

        replies = self._dispatch(requests, request_span)
        # Only a delivered block counts as held worker-side; a failed
        # dispatch re-ships next batch.
        for sid, stamp in shipped_blocks.items():
            self._block_epochs[sid] = stamp

        # Cross-shard combines need both workers' fans, so they run in
        # the parent — spread across the I/O threads (numpy releases
        # the GIL for the large intermediates).
        combines = []
        for g, (idx, i, j) in enumerate(groups):
            if i == j:
                out[idx] = replies[(g, "final")][0]
            elif (g, "src") in replies:
                combines.append((g, idx, i, j))

        def combine(item):
            g, idx, i, j = item
            ds, ds_inv = replies[(g, "src")][1]
            dt, dt_inv = replies[(g, "dst")][2]
            out[idx] = min_plus_compact(
                ds, ds_inv, engine.overlay_block(i, j), dt, dt_inv
            )

        with maybe_child(request_span, "min_plus_combine") as combine_span:
            if combine_span is not None:
                combine_span.annotate(groups=len(combines))
            if len(combines) > 1:
                list(self._pool.map(combine, combines))
            elif combines:
                combine(combines[0])
        out[s == t] = 0.0
        self.stats.batches += 1
        self.stats.pairs += len(s)
        return out

    def _dispatch(
        self,
        requests: dict[int, list[tuple[tuple[int, int], tuple]]],
        request_span: Span | None = None,
    ) -> dict[tuple[int, int], tuple]:
        """Ship each worker its sub-batches in one message, concurrently.

        One pipe round trip per worker per batch (the I/O threads only
        wait on their worker, so the k shard processes compute in
        parallel); replies map scheduler slots to ``(intra, ds, dt)``
        triples. With *request_span*, each round trip gets a
        ``worker[sid]`` child span and the worker is asked to ship its
        own subtree back, which is grafted under that child — the spans
        are finished even when the worker refuses the batch as stale,
        so an aborted trace still shows the round trip that failed.
        """

        def run(sid: int, items):
            handle = self._workers[sid]
            subs = [sub for _, sub in items]
            worker_span = None
            if request_span is not None:
                worker_span = request_span.child(f"worker[{sid}]")
                worker_span.annotate(subs=len(subs))
            try:
                reply = handle.request(
                    ("compute", self._epochs[sid], subs, worker_span is not None)
                )
            finally:
                if worker_span is not None:
                    worker_span.finish()
            if worker_span is not None and len(reply) > 2 and reply[2]:
                worker_span.graft(reply[2])
            return [(slot, result) for (slot, _), result in zip(items, reply[1])]

        futures = [
            self._pool.submit(run, sid, items) for sid, items in requests.items()
        ]
        replies: dict[tuple[int, int], tuple] = {}
        for future in futures:
            for slot, reply in future.result():
                replies[slot] = reply
        return replies

    def distance(self, s: int, t: int) -> float:
        return float(
            self.distances_arrays(
                np.array([s], dtype=np.int64), np.array([t], dtype=np.int64)
            )[0]
        )

    # ------------------------------------------------------------------
    # maintenance + epoch broadcast
    # ------------------------------------------------------------------
    def apply_update(
        self, changes: Iterable[WeightChange], workers: int | None = None
    ) -> ShardedMaintenanceStats:
        """Apply the batch in the parent, then broadcast shard deltas.

        Overlay maintenance needs no broadcast (the overlay index lives
        only in the parent); a touched shard gets its changed label
        slots copied into the shared segment plus an epoch bump — or a
        full republish if maintenance changed the label layout.
        """
        if self._closed:
            raise ServiceRuntimeError("runtime is closed")
        self._reconcile_index_epoch()
        stats = self.index.update(changes, workers)
        self._index_epoch = self.index.epoch
        with phase("flush.delta_sync"):
            for sid in stats.touched_shards:
                handle = self._workers[sid]
                labels = self.index.shards[sid].labels
                self._epochs[sid] += 1
                if handle.delta_applicable(labels):
                    self.stats.delta_bytes += handle.write_deltas(
                        labels, stats.per_shard[sid].affected_labels
                    )
                    handle.request(("epoch", self._epochs[sid]))
                    self.stats.delta_syncs += 1
                else:  # label layout moved: publish fresh buffers
                    self.stats.republish_bytes += handle.republish(
                        labels, self._epochs[sid]
                    )
                    self.stats.republishes += 1
                self.stats.epoch_broadcasts += 1
        return stats

    def pool_stats(self) -> WorkerPoolStats:
        return self.stats

    def _reconcile_index_epoch(self) -> None:
        """Re-sync workers after maintenance that bypassed this runtime.

        A direct ``index.update(...)`` (structural op, another caller)
        advances the index epoch without telling us which labels moved;
        the only safe answer is a whole-buffer publish per shard —
        in place when the layout still fits, fresh segments otherwise.
        """
        if self.index.epoch == self._index_epoch:
            return
        for sid, handle in enumerate(self._workers):
            labels = self.index.shards[sid].labels
            self._epochs[sid] += 1
            if handle.delta_applicable(labels):
                handle.write_full(labels)
                handle.request(("epoch", self._epochs[sid]))
            else:
                self.stats.republish_bytes += handle.republish(
                    labels, self._epochs[sid]
                )
                self.stats.republishes += 1
            self.stats.full_syncs += 1
            self.stats.epoch_broadcasts += 1
        self._index_epoch = self.index.epoch

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Join every worker and unlink every shared segment; idempotent."""
        if self._closed:
            return
        self._closed = True
        for handle in self._workers:
            try:
                handle.destroy()
            except Exception:  # pragma: no cover - teardown best effort
                pass
        self._workers = []
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __del__(self):  # pragma: no cover - safety net
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        state = "closed" if self._closed else f"{len(self._workers)} workers"
        return f"ShardWorkerRuntime(k={self.index.k}, {state})"
