"""TCP shard replicas: the first remote transport on the runtime protocol.

:class:`SocketShardRuntime` serves each region shard of a
:class:`~repro.core.sharded.ShardedDHLIndex` from **N replica
processes**, each listening on its own loopback TCP endpoint and
speaking the length-framed protocol of :mod:`repro.service.protocol` —
the exact frames the shared-memory pipe transport uses, length-prefixed
for the byte stream. Nothing about the scheduler changes: the
:class:`~repro.service.runtime.RegionPairScheduler` base emits the same
typed :class:`~repro.service.protocol.SubQuery` batches; this module
only implements how frames travel and how label buffers sync when
shared memory is not available (each replica holds a private writable
copy, kept current by inline
:class:`~repro.service.protocol.EpochDelta` frames).

**Replicas + failover.** Reads round-robin across a shard's replicas.
A request that times out or loses its connection marks the replica
dead (its process exits on disconnect) and is retried on a sibling
replica — counted in ``pool_stats().failovers``. Because every retry
re-sends the full :class:`~repro.service.protocol.ComputeBatch`
(overlay blocks are elided per replica, re-shipped when the sibling
holds none), a replica kill mid-batch loses zero requests.

**Supervision + respawn.** Dead replicas no longer stay dead: the
:class:`ReplicaSupervisor` (driven opportunistically at batch
dispatch, or explicitly via :meth:`ReplicaSupervisor.poll`) probes
live replicas with :class:`~repro.service.protocol.HealthCheck`
frames, marks unresponsive ones dead (``heartbeat_timeouts``), and
respawns dead ones with exponential backoff + deterministic jitter
(:class:`~repro.service.runtime.RetryPolicy`). A respawned replica
handshakes with the shard's *current* label buffers stamped at the
*current* epoch — a full resync by construction — and any later
divergence heals through the existing ``StaleReply`` → ``Republish``
path. Respawns are counted (``respawns`` / ``respawn_failures``) and
their downtime is observed in the ``dhl_recovery_ms`` histogram.

**Circuit breakers + degraded serving.** Each shard has a
:class:`~repro.service.runtime.CircuitBreaker`. When the last replica
of a shard dies mid-batch the breaker trips open and, instead of
hard-failing the whole batch, the scheduler *sheds* that shard's pairs
and raises a typed :class:`~repro.exceptions.PartialResultError`
carrying the served distances (``degraded_mode="shed"``, the
default); ``degraded_mode="overlay"`` fills the holes with parent-side
boundary-route answers instead (exact for cross-region pairs, upper
bounds for intra), and ``degraded_mode="error"`` restores the strict
pre-supervisor behavior (:class:`~repro.exceptions
.ShardUnavailableError`). A successful respawn moves the breaker to
half-open; the first served batch closes it.

**Fault injection.** Every parent-side request passes through an
optional :class:`~repro.service.faults.FaultPlan` — a deterministic,
scriptable schedule of kills, timeouts, and torn frames keyed by
``(shard, replica, incarnation, request#)`` — so every recovery path
above is testable without flaky sleeps.

**Consistency.** Updates broadcast an inline ``EpochDelta`` (changed
label arrays, spliced worker-side) to *every* replica of a touched
shard, reusing the exact epoch-stamp contract of the shared-memory
transport: a replica holding the wrong epoch refuses the batch with a
:class:`~repro.service.protocol.StaleReply`. The parent resolves a
refusal from a *behind* replica by pushing a full
:class:`~repro.service.protocol.Republish` and retrying once — counted
in ``pool_stats().resyncs`` — so a replica that missed a broadcast
(e.g. its delta send failed) heals instead of being torn down; a
refusal that persists surfaces as
:class:`~repro.exceptions.WorkerEpochError` ("missed epoch
broadcast"), same as the pipe transport.

The processes bind ``127.0.0.1`` port 0 and report the chosen port over
a one-shot bootstrap pipe; the runtime is a faithful local stand-in for
a multi-host deployment (per-request timeouts, reconnectless failover,
explicit buffer shipping) while staying runnable in CI.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
from multiprocessing import get_context
from typing import Callable, Iterable

import numpy as np

from repro.exceptions import (
    ServiceRuntimeError,
    ShardUnavailableError,
    WorkerEpochError,
)
from repro.observability import Span
from repro.service.protocol import (
    AckReply,
    ByeReply,
    ComputeBatch,
    EpochDelta,
    ErrorReply,
    HealthCheck,
    HealthReply,
    Message,
    ReadyReply,
    Republish,
    Shutdown,
    SpecRequest,
    StaleReply,
    SubQuery,
    SubResult,
    recv_message,
    send_message,
)
from repro.service.runtime import CircuitBreaker, RegionPairScheduler, RetryPolicy
from repro.service.workers import ShardExecutor

__all__ = ["SocketShardRuntime", "ReplicaSupervisor"]

_STARTUP_TIMEOUT = 120.0
_SHUTDOWN_TIMEOUT = 5.0
_DEGRADED_MODES = ("shed", "overlay", "error")


# ---------------------------------------------------------------------------
# the replica process
# ---------------------------------------------------------------------------

def _socket_worker_main(bootstrap) -> None:
    """One shard replica: bind a loopback port, serve its one client.

    The replica accepts exactly one connection (its parent runtime) and
    answers protocol frames until a :class:`Shutdown` frame or
    disconnect — a vanished parent, or a parent that abandoned this
    replica after a failover, must not leave an orphan process behind.
    The port is reported over the one-shot *bootstrap* pipe, then all
    traffic is TCP. State lives in the shared
    :class:`~repro.service.workers.ShardExecutor`; label buffers arrive
    inline and are kept as private writable arrays so
    :class:`EpochDelta` splices apply locally.
    """
    executor = ShardExecutor()
    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        bootstrap.send(server.getsockname()[1])
        bootstrap.close()
        server.settimeout(_STARTUP_TIMEOUT)
        conn, _ = server.accept()
    except Exception:
        server.close()
        raise
    server.close()
    try:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        while True:
            try:
                message = recv_message(conn)
            except Exception:
                # Disconnect (or an unframeable stream) ends the
                # replica: the parent never reuses a broken connection.
                break
            try:
                if isinstance(message, SpecRequest):
                    # Private writable copies: deltas splice in place.
                    reply: Message = executor.setup(
                        message,
                        np.array(message.values, dtype=np.float64),
                        np.array(message.offsets, dtype=np.int64),
                    )
                elif isinstance(message, ComputeBatch):
                    reply = executor.compute(message)
                elif isinstance(message, EpochDelta):
                    reply = executor.apply_delta(message)
                elif isinstance(message, HealthCheck):
                    reply = executor.health(message)
                elif isinstance(message, Republish):
                    executor.bind(
                        np.array(message.values, dtype=np.float64),
                        np.array(message.offsets, dtype=np.int64),
                    )
                    executor.epoch = message.epoch
                    reply = AckReply()
                elif isinstance(message, Shutdown):
                    send_message(conn, ByeReply())
                    break
                else:  # pragma: no cover - future message types
                    reply = ErrorReply(
                        message=f"unhandled {type(message).__name__}"
                    )
            except Exception as exc:  # surface instead of hanging the parent
                reply = ErrorReply(message=f"{type(exc).__name__}: {exc}")
            try:
                send_message(conn, reply)
            except OSError:  # pragma: no cover - parent went away mid-reply
                break
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# parent-side replica handle
# ---------------------------------------------------------------------------

class _ReplicaHandle:
    """Parent-side endpoint of one shard replica over TCP.

    Owns the process and the connected socket. :meth:`request` applies
    the per-request timeout; any timeout or socket error marks the
    handle dead (the transport's failover unit is the whole replica —
    no reconnects to a broken connection, matching how a remote host
    would be drained). A dead handle is *replaced*, not revived: the
    supervisor spawns a fresh process with ``incarnation + 1``. A lock
    serialises cross-batch races, as in the pipe transport.
    """

    def __init__(
        self,
        ctx,
        sid: int,
        replica: int,
        index,
        *,
        timeout: float,
        epoch: int = 0,
        incarnation: int = 0,
        faults=None,
    ):
        self.sid = sid
        self.replica = replica
        self.timeout = timeout
        self.epoch = epoch
        self.incarnation = incarnation
        self.faults = faults
        #: Requests issued through this handle (the fault-plan clock).
        self.requests = 0
        #: Health probes issued through this handle.
        self.health_requests = 0
        self.process = None
        self.sock: socket.socket | None = None
        self.alive = False
        #: Overlay epoch of the intra block this replica holds (-1: none).
        self.block_epoch = -1
        self._lock = threading.Lock()
        bootstrap, child_bootstrap = ctx.Pipe()
        try:
            self.process = ctx.Process(
                target=_socket_worker_main,
                args=(child_bootstrap,),
                name=f"dhl-socket-shard-{sid}-r{replica}-i{incarnation}",
                daemon=True,
            )
            self.process.start()
            child_bootstrap.close()
            if not bootstrap.poll(_STARTUP_TIMEOUT):
                raise ServiceRuntimeError(
                    f"shard {sid} replica {replica} never reported its port"
                )
            port = bootstrap.recv()
            self.sock = socket.create_connection(
                ("127.0.0.1", port), timeout=_STARTUP_TIMEOUT
            )
            self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            values, offsets = index.shard_buffers(sid)
            send_message(
                self.sock,
                SpecRequest(
                    payload=index.shard_worker_payload(sid),
                    epoch=epoch,
                    values=values,
                    offsets=offsets,
                ),
            )
            reply = recv_message(self.sock)
            if not isinstance(reply, ReadyReply):
                raise ServiceRuntimeError(
                    f"shard {sid} replica {replica} failed to start: {reply!r}"
                )
            self.sock.settimeout(timeout)
            self.alive = True
        except BaseException:
            self.destroy()
            raise
        finally:
            bootstrap.close()

    def request(self, message: Message) -> Message:
        """One framed round trip; timeout/socket failure kills the handle."""
        with self._lock:
            if not self.alive:
                raise ServiceRuntimeError(
                    f"shard {self.sid} replica {self.replica} is dead"
                )
            try:
                if self.faults is not None:
                    self.faults.apply(self, message)
                send_message(self.sock, message)
                reply = recv_message(self.sock)
            except Exception as exc:
                # Timeout, reset, or a torn frame: this replica is done.
                self.alive = False
                raise ServiceRuntimeError(
                    f"shard {self.sid} replica {self.replica} failed "
                    f"({type(exc).__name__}: {exc})"
                ) from exc
        if isinstance(reply, ErrorReply):
            raise ServiceRuntimeError(
                f"shard {self.sid} replica {self.replica}: {reply.message}"
            )
        return reply

    def destroy(self) -> None:
        """Close the connection and reap the process; idempotent."""
        if self.sock is not None:
            if self.alive:
                try:
                    with self._lock:
                        send_message(self.sock, Shutdown())
                        self.sock.settimeout(_SHUTDOWN_TIMEOUT)
                        recv_message(self.sock)
                except Exception:
                    pass
            self.alive = False
            try:
                self.sock.close()
            except OSError:  # pragma: no cover - already closed
                pass
            self.sock = None
        if self.process is not None:
            self.process.join(_SHUTDOWN_TIMEOUT)
            if self.process.is_alive():  # pragma: no cover - stuck replica
                self.process.terminate()
                self.process.join(_SHUTDOWN_TIMEOUT)
            self.process = None


# ---------------------------------------------------------------------------
# the replica supervisor
# ---------------------------------------------------------------------------

class ReplicaSupervisor:
    """Detects dead replicas and brings them back.

    The supervisor is deliberately *pull-based and deterministic*: it
    owns no thread. :meth:`poll` is driven opportunistically at batch
    dispatch (rate-limited by ``interval`` against the injectable
    *clock*) or explicitly by tests/operators with ``force=True`` — so
    recovery behavior is reproducible without sleeps.

    One poll does two things per shard:

    * **Health checks.** Every live replica gets a
      :class:`~repro.service.protocol.HealthCheck` with a fresh nonce;
      a timeout, error, or wrong echo marks it dead
      (``heartbeat_timeouts``). A healthy replica reporting a stale
      epoch is resynced through the existing republish path
      (``resyncs``).
    * **Respawns.** Every dead slot past its backoff deadline
      (``policy.delay(attempt)``, deterministic jitter) is replaced by
      a fresh process with ``incarnation + 1``, handshaking with the
      shard's current buffers at the current epoch. Success counts a
      ``respawn``, records downtime in ``recovery_ms`` (and the
      ``dhl_recovery_ms`` histogram), and moves the shard's breaker to
      half-open; failure counts a ``respawn_failure`` and backs off
      further, giving up after ``policy.attempts`` tries.
    """

    def __init__(
        self,
        runtime: "SocketShardRuntime",
        *,
        policy: RetryPolicy,
        interval: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.runtime = runtime
        self.policy = policy
        self.interval = interval
        self.clock = clock
        self._next_poll = clock()
        #: Respawn attempt counter per (sid, replica) slot.
        self._attempts: dict[tuple[int, int], int] = {}
        #: Earliest clock reading the next respawn of a slot may run.
        self._not_before: dict[tuple[int, int], float] = {}
        #: When each slot was first seen dead (downtime measurement).
        self._down_since: dict[tuple[int, int], float] = {}
        self._nonce = itertools.count(1)
        #: Downtime of every successful respawn, milliseconds.
        self.recovery_ms: list[float] = []

    # ------------------------------------------------------------------
    def poll(self, force: bool = False) -> dict:
        """One supervision cycle; returns what it did.

        Rate-limited: a call before ``interval`` elapsed is a no-op
        unless *force* is set. The summary maps ``checked`` /
        ``timeouts`` / ``respawned`` / ``failed`` / ``gave_up`` to
        counts (plus ``skipped=True`` for the rate-limited no-op).
        """
        now = self.clock()
        if not force and now < self._next_poll:
            return {"skipped": True}
        self._next_poll = now + self.interval
        runtime = self.runtime
        summary = {
            "checked": 0,
            "timeouts": 0,
            "respawned": 0,
            "failed": 0,
            "gave_up": 0,
        }
        for sid, group in enumerate(runtime._groups):
            for slot, handle in enumerate(group):
                if handle.alive:
                    summary["checked"] += 1
                    if not self._health_check(handle):
                        summary["timeouts"] += 1
                        self._mark_down((sid, slot), now)
            # Second pass: respawn every dead slot whose backoff elapsed
            # (including slots that just failed their health check —
            # those come back next cycle once their delay passes).
            for slot, handle in enumerate(group):
                if handle.alive:
                    continue
                key = (sid, slot)
                self._mark_down(key, now)
                attempt = self._attempts.get(key, 0)
                if attempt >= self.policy.attempts:
                    summary["gave_up"] += 1
                    continue
                if now < self._not_before.get(key, now):
                    continue
                if self._respawn(key, handle, now):
                    summary["respawned"] += 1
                else:
                    summary["failed"] += 1
        return summary

    # ------------------------------------------------------------------
    def _mark_down(self, key: tuple[int, int], now: float) -> None:
        if key not in self._down_since:
            self._down_since[key] = now
            self._not_before[key] = now + self.policy.delay(0)

    def _health_check(self, handle: _ReplicaHandle) -> bool:
        """Probe one live replica; marks it dead on any failure."""
        runtime = self.runtime
        nonce = next(self._nonce)
        try:
            reply = handle.request(HealthCheck(nonce=nonce))
        except ServiceRuntimeError:
            handle.alive = False
            runtime.stats.heartbeat_timeouts += 1
            return False
        if not isinstance(reply, HealthReply) or reply.nonce != nonce:
            handle.alive = False
            runtime.stats.heartbeat_timeouts += 1
            return False
        if reply.epoch != runtime._epochs[handle.sid]:
            # Alive but behind (a delta send it missed): heal through
            # the existing republish path rather than killing it.
            try:
                runtime._resync_replica(handle)
            except ServiceRuntimeError:
                return False
        return True

    def _respawn(
        self, key: tuple[int, int], dead: _ReplicaHandle, now: float
    ) -> bool:
        """Replace one dead handle with a fresh process; True on success."""
        runtime = self.runtime
        sid, slot = key
        attempt = self._attempts.get(key, 0)
        self._attempts[key] = attempt + 1
        try:
            dead.destroy()
        except Exception:  # pragma: no cover - reaping best effort
            pass
        started = time.monotonic()
        try:
            fresh = _ReplicaHandle(
                runtime._ctx,
                sid,
                dead.replica,
                runtime.index,
                timeout=runtime.request_timeout,
                epoch=runtime._epochs[sid],
                incarnation=dead.incarnation + 1,
                faults=runtime.fault_plan,
            )
        except ServiceRuntimeError:
            runtime.stats.respawn_failures += 1
            self._not_before[key] = now + self.policy.delay(attempt + 1)
            return False
        runtime._groups[sid][slot] = fresh
        # The handshake shipped current buffers at the current epoch, so
        # the published-layout bookkeeping holds for this replica too.
        runtime.stats.respawns += 1
        self._attempts[key] = 0
        self._down_since.pop(key, None)
        self._not_before.pop(key, None)
        downtime_ms = (time.monotonic() - started) * 1000.0
        self.recovery_ms.append(downtime_ms)
        runtime.observability.registry.histogram(
            "dhl_recovery_ms",
            "Downtime of a supervised replica respawn, milliseconds",
            bounds=(1.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0),
        ).observe(downtime_ms)
        runtime._breakers[sid].probation()
        return True


# ---------------------------------------------------------------------------
# the runtime
# ---------------------------------------------------------------------------

class SocketShardRuntime(RegionPairScheduler):
    """Serve a sharded index from N TCP replica processes per shard.

    Parameters
    ----------
    index:
        A built :class:`~repro.core.sharded.ShardedDHLIndex`; the
        parent keeps the authoritative copy, replicas hold private
        label buffers synced by inline protocol frames.
    replicas:
        Replica processes per shard. One gives the socket equivalent of
        the pipe transport; two or more add read capacity and failover.
    request_timeout:
        Per-request socket timeout in seconds; an expired request fails
        over to a sibling replica.
    start_method:
        ``multiprocessing`` start method (``spawn`` by default).
    degraded_mode:
        What a batch does when a shard's every replica is down:
        ``"shed"`` (default) answers the rest and raises a typed
        :class:`~repro.exceptions.PartialResultError`, ``"overlay"``
        fills the holes with parent-side boundary-route answers, and
        ``"error"`` hard-fails with
        :class:`~repro.exceptions.ShardUnavailableError`.
    retry_policy:
        Backoff schedule for supervised respawns
        (:class:`~repro.service.runtime.RetryPolicy`; a sensible
        default when ``None``).
    supervise_interval:
        Seconds between opportunistic supervisor polls at batch
        dispatch; ``0.0`` polls every batch. Explicit
        ``runtime.supervisor.poll(force=True)`` always runs.
    clock:
        Injectable monotonic clock for the supervisor (tests drive
        recovery deterministically by advancing a fake clock).
    fault_plan:
        Optional :class:`~repro.service.faults.FaultPlan` applied to
        every parent-side request — the deterministic chaos harness.
    """

    kind = "socket-pool"

    def __init__(
        self,
        index,
        *,
        replicas: int = 2,
        request_timeout: float = 30.0,
        start_method: str = "spawn",
        degraded_mode: str = "shed",
        retry_policy: RetryPolicy | None = None,
        supervise_interval: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
        fault_plan=None,
    ):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        if degraded_mode not in _DEGRADED_MODES:
            raise ValueError(
                f"degraded_mode must be one of {_DEGRADED_MODES}, "
                f"got {degraded_mode!r}"
            )
        super().__init__(index)
        self.replicas = replicas
        self.request_timeout = request_timeout
        self.degraded_mode = degraded_mode
        self.fault_plan = fault_plan
        self._groups: list[list[_ReplicaHandle]] = [[] for _ in range(index.k)]
        self._rr = [itertools.count() for _ in range(index.k)]
        self._breakers = [
            CircuitBreaker(sid, self.stats) for sid in range(index.k)
        ]
        # Label layout each shard's replicas hold (the ``delta_applicable``
        # check of the shared-memory transport): a delta may only be
        # spliced while the live store still fits the shipped offsets.
        self._published_offsets = [
            np.array(index.shard_buffers(sid)[1], dtype=np.int64)
            for sid in range(index.k)
        ]
        self._ctx = get_context(start_method)
        self.supervisor = ReplicaSupervisor(
            self,
            policy=retry_policy or RetryPolicy(),
            interval=supervise_interval,
            clock=clock,
        )
        try:
            futures = [
                self._pool.submit(
                    _ReplicaHandle, self._ctx, sid, r, index,
                    timeout=request_timeout,
                    faults=fault_plan,
                )
                for sid in range(index.k)
                for r in range(replicas)
            ]
            errors = []
            for future in futures:
                try:
                    handle = future.result()
                    self._groups[handle.sid].append(handle)
                except BaseException as exc:
                    errors.append(exc)
            if errors:
                raise errors[0]
            for group in self._groups:
                group.sort(key=lambda handle: handle.replica)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # ExecutionRuntime surface
    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        return (
            f"socket-pool/sharded[{self.index.k}x{self.replicas} replicas]"
        )

    @property
    def worker_count(self) -> int:
        return sum(len(group) for group in self._groups)

    def alive_replicas(self, sid: int) -> list[_ReplicaHandle]:
        return [handle for handle in self._groups[sid] if handle.alive]

    # ------------------------------------------------------------------
    # transport hooks
    # ------------------------------------------------------------------
    def _pick(self, sid: int, exclude=()) -> _ReplicaHandle:
        """Round-robin over the shard's live replicas.

        Trips the shard's circuit breaker (and raises the typed
        :class:`~repro.exceptions.ShardUnavailableError`) when *no*
        replica is live at all; raises a plain error when live replicas
        exist but all already failed this batch (an epoch bug, not an
        availability event).
        """
        group = [
            handle
            for handle in self._groups[sid]
            if handle.alive and handle not in exclude
        ]
        if not group:
            if not self.alive_replicas(sid):
                self._breakers[sid].trip()
                raise ShardUnavailableError(
                    sid,
                    f"no live replica left for shard {sid}; breaker open "
                    "until the supervisor respawns one",
                )
            raise ServiceRuntimeError(
                f"every live replica of shard {sid} already failed "
                "this batch"
            )
        return group[next(self._rr[sid]) % len(group)]

    def _dispatch(
        self,
        requests: dict[int, list[tuple[tuple[int, int], SubQuery]]],
        request_span: Span | None = None,
    ) -> dict[tuple[int, int], SubResult]:
        """One framed round trip per shard, with one-retry failover.

        The chosen replica gets the whole batch; on timeout or
        connection loss the identical work (blocks re-elided against
        the *sibling's* held state) is retried once on another live
        replica — the request set is immutable, so a replica killed
        mid-batch loses nothing. A ``StaleReply`` from a behind replica
        triggers a full republish + one retry before giving up.
        """

        def send_to(handle: _ReplicaHandle, items, want_trace: bool):
            shipped = -1
            subs = []
            for _, sub in items:
                if sub.block is not None:
                    if sub.block_epoch == handle.block_epoch:
                        sub = sub.without_block()
                    else:
                        shipped = sub.block_epoch
                subs.append(sub)
            reply = handle.request(
                ComputeBatch(
                    epoch=self._epochs[handle.sid],
                    subs=subs,
                    want_trace=want_trace,
                )
            )
            if isinstance(reply, StaleReply):
                reply = self._handle_stale(handle, reply, subs, want_trace)
            if shipped >= 0:
                handle.block_epoch = shipped
            return reply

        def run(sid: int, items):
            worker_span = None
            if request_span is not None:
                worker_span = request_span.child(f"worker[{sid}]")
                worker_span.annotate(subs=len(items))
            want_trace = worker_span is not None
            try:
                try:
                    attempt = self._pick(sid)
                    tried = [attempt]
                    while True:
                        try:
                            reply = send_to(attempt, items, want_trace)
                            break
                        except ShardUnavailableError:
                            raise
                        except ServiceRuntimeError:
                            # The replica timed out or dropped: fail over
                            # to a sibling not yet tried this batch (which
                            # may need the blocks re-sent). _pick raises
                            # once no live sibling remains.
                            self.stats.failovers += 1
                            if worker_span is not None:
                                worker_span.annotate(failover=True)
                            attempt = self._pick(sid, exclude=tried)
                            tried.append(attempt)
                except ShardUnavailableError:
                    # Every replica is down and the breaker tripped.
                    # Under a degraded mode the shard's slots are simply
                    # not answered — the scheduler sheds (or
                    # overlay-answers) the affected groups; "error"
                    # restores the strict hard failure.
                    if self.degraded_mode == "error":
                        raise
                    if worker_span is not None:
                        worker_span.annotate(shed=True)
                    return []
            finally:
                if worker_span is not None:
                    worker_span.finish()
            self._breakers[sid].record_success()
            if worker_span is not None and reply.trace is not None:
                worker_span.graft(reply.trace.spans)
            return [
                (slot, result)
                for (slot, _), result in zip(items, reply.results)
            ]

        # Opportunistic supervision: dead replicas come back (and
        # wedged ones are detected) as part of serving traffic, without
        # a background thread. Rate-limited by the supervisor interval.
        self.supervisor.poll()
        futures = [
            self._pool.submit(run, sid, items) for sid, items in requests.items()
        ]
        replies: dict[tuple[int, int], SubResult] = {}
        for future in futures:
            for slot, result in future.result():
                replies[slot] = result
        return replies

    def _resync_replica(self, handle: _ReplicaHandle) -> None:
        """Push a full republish to one behind replica (the stale-resync
        path, also used by the supervisor on an epoch-skewed heartbeat)."""
        values, offsets = self.index.shards[handle.sid].labels.export_buffers()
        self._published_offsets[handle.sid] = np.array(offsets, dtype=np.int64)
        handle.request(
            Republish(
                epoch=self._epochs[handle.sid],
                values=values,
                offsets=offsets,
            )
        )
        self.stats.resyncs += 1

    def _handle_stale(
        self, handle: _ReplicaHandle, stale: StaleReply, subs, want_trace
    ):
        """Resync a behind replica with a full republish, retry once."""
        if stale.stamped > stale.held:
            self._resync_replica(handle)
            retry = handle.request(
                ComputeBatch(
                    epoch=self._epochs[handle.sid],
                    subs=subs,
                    want_trace=want_trace,
                )
            )
            if not isinstance(retry, StaleReply):
                return retry
            stale = retry
        raise WorkerEpochError(
            f"shard {handle.sid} replica {handle.replica} holds epoch "
            f"{stale.held} but the batch is stamped {stale.stamped}"
            + (" (missed epoch broadcast)" if stale.stamped > stale.held else "")
        )

    def _sync_shard(self, sid: int, affected: Iterable[int]) -> None:
        """Broadcast an inline label delta to every live replica.

        The changed label arrays are concatenated once (sorted vertex
        order) and the same frame goes to each replica, which splices
        it by its own offsets. A replica whose delta send fails is
        marked dead — the next read fails over, and the stale-resync
        path covers a replica that somehow diverges.
        """
        labels = self.index.shards[sid].labels
        if not np.array_equal(
            np.diff(self._published_offsets[sid]), labels.lengths
        ):
            # Label layout moved: a splice against the old offsets would
            # corrupt the replicas — publish fresh buffers instead.
            self._full_sync(sid)
            return
        vertices = np.array(sorted(set(int(v) for v in affected)), dtype=np.int64)
        if len(vertices):
            payload = np.concatenate([labels.view(v) for v in vertices])
        else:
            payload = np.empty(0, dtype=np.float64)
        delta = EpochDelta(
            epoch=self._epochs[sid], vertices=vertices, payload=payload
        )
        synced = False
        for handle in self.alive_replicas(sid):
            try:
                handle.request(delta)
                synced = True
                self.stats.delta_bytes += int(payload.nbytes)
            except ServiceRuntimeError:
                continue  # dead replica: reads will fail over past it
        if not synced:
            # Every replica is down *during maintenance*: the epoch
            # already advanced in the parent, so trip the breaker and
            # move on — a respawned replica handshakes with the current
            # buffers at the current epoch and needs no delta.
            self._breakers[sid].trip()
            if self.degraded_mode == "error":
                raise ShardUnavailableError(
                    sid,
                    f"no live replica left for shard {sid} to sync; "
                    "breaker open until the supervisor respawns one",
                )
            return
        self.stats.delta_syncs += 1

    def _full_sync(self, sid: int) -> None:
        """Republish whole buffers to every live replica."""
        values, offsets = self.index.shards[sid].labels.export_buffers()
        self._published_offsets[sid] = np.array(offsets, dtype=np.int64)
        message = Republish(
            epoch=self._epochs[sid], values=values, offsets=offsets
        )
        synced = False
        for handle in self.alive_replicas(sid):
            try:
                handle.request(message)
                synced = True
                self.stats.republish_bytes += int(
                    values.nbytes + offsets.nbytes
                )
            except ServiceRuntimeError:
                continue
        if not synced:
            self._breakers[sid].trip()
            if self.degraded_mode == "error":
                raise ShardUnavailableError(
                    sid,
                    f"no live replica left for shard {sid} to republish; "
                    "breaker open until the supervisor respawns one",
                )
            return
        self.stats.republishes += 1

    def _close_transport(self) -> None:
        for group in self._groups:
            for handle in group:
                try:
                    handle.destroy()
                except Exception:  # pragma: no cover - teardown best effort
                    pass
        self._groups = [[] for _ in range(self.index.k)]

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        state = (
            "closed"
            if self._closed
            else f"{self.worker_count}/{self.index.k * self.replicas} replicas"
        )
        return f"SocketShardRuntime(k={self.index.k}, {state})"
