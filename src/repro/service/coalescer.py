"""Update coalescing: fold a change stream into one maintenance batch.

Live traffic feeds produce redundant weight changes — the same road
segment re-reported every few seconds, congestion that clears before
anyone queried it. Applying each change individually pays the full
DHL+/DHL- propagation cost every time; coalescing folds the stream into
its *net effect* first:

* duplicate mentions of an edge collapse to the final weight (last
  write wins), merging at submission time so the buffer never grows
  beyond the number of distinct touched edges;
* changes whose final weight equals the current graph weight are
  dropped as no-ops at flush time (raise-then-restore costs nothing);
* the surviving batch splits into increase and decrease sets and runs
  through Algorithms 2-5 once, in the paper's increase-then-decrease
  order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.graph.graph import Graph

__all__ = ["CoalescerStats", "CoalescedBatch", "UpdateCoalescer"]

WeightChange = tuple[int, int, float]
EdgeKey = tuple[int, int]


@dataclass(frozen=True)
class CoalescerStats:
    submitted: int
    merged_duplicates: int
    noops_dropped: int
    flushes: int

    def __str__(self) -> str:
        return (
            f"{self.submitted} submitted, "
            f"{self.merged_duplicates} duplicates merged, "
            f"{self.noops_dropped} no-ops dropped, "
            f"{self.flushes} flushes"
        )


@dataclass
class CoalescedBatch:
    """Net effect of a drained buffer against a concrete graph state."""

    increases: list[WeightChange] = field(default_factory=list)
    decreases: list[WeightChange] = field(default_factory=list)
    noops: int = 0

    @property
    def size(self) -> int:
        return len(self.increases) + len(self.decreases)

    def changes(self) -> list[WeightChange]:
        """Increases first, then decreases (the paper's batch protocol)."""
        return [*self.increases, *self.decreases]


class UpdateCoalescer:
    """Streaming buffer of ``(u, v, new_weight)`` with per-edge merging."""

    __slots__ = ("_pending", "_submitted", "_merged", "_flushes", "_noops")

    def __init__(self) -> None:
        self._pending: dict[EdgeKey, float] = {}
        self._submitted = 0
        self._merged = 0
        self._flushes = 0
        self._noops = 0

    # -- intake ---------------------------------------------------------
    def add(self, u: int, v: int, weight: float) -> None:
        key = (u, v) if u <= v else (v, u)
        self._submitted += 1
        if key in self._pending:
            self._merged += 1
        self._pending[key] = float(weight)

    def add_many(self, changes: Iterable[WeightChange]) -> None:
        for u, v, w in changes:
            self.add(u, v, w)

    # -- drain ----------------------------------------------------------
    def drain(self, graph: Graph) -> CoalescedBatch:
        """Empty the buffer into its net batch against *graph*'s weights."""
        batch = CoalescedBatch()
        for (u, v), w in self._pending.items():
            current = graph.weight(u, v)
            if w > current:
                batch.increases.append((u, v, w))
            elif w < current:
                batch.decreases.append((u, v, w))
            else:
                batch.noops += 1
        self._pending.clear()
        self._noops += batch.noops
        self._flushes += 1
        return batch

    # -- introspection --------------------------------------------------
    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)

    @property
    def pending_edges(self) -> int:
        return len(self._pending)

    def stats(self) -> CoalescerStats:
        return CoalescerStats(
            submitted=self._submitted,
            merged_duplicates=self._merged,
            noops_dropped=self._noops,
            flushes=self._flushes,
        )
