"""Update coalescing: fold a change stream into one maintenance batch.

Live traffic feeds produce redundant weight changes — the same road
segment re-reported every few seconds, congestion that clears before
anyone queried it. Applying each change individually pays the full
DHL+/DHL- propagation cost every time; coalescing folds the stream into
its *net effect* first:

* duplicate mentions of an edge collapse to the final weight (last
  write wins), merging at submission time so the buffer never grows
  beyond the number of distinct touched edges;
* changes whose final weight equals the current graph weight are
  dropped as no-ops at flush time (raise-then-restore costs nothing);
* the surviving batch splits into increase and decrease sets and runs
  through Algorithms 2-5 once, in the paper's increase-then-decrease
  order.

The buffer also coalesces *structural* traffic (road closures,
construction) through a per-edge operation state machine:

* insert-then-delete cancels outright — the road never existed as far
  as the index is concerned;
* delete-then-restore folds to a plain weight change when the edge
  still exists at flush time;
* weight reports on a road queued for insertion fold into the
  insertion's weight.

Drained structural batches flow through the backend's ``apply_batch``
(insert/delete fast paths, fallback rebuilds) instead of the pure
weight-maintenance kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.graph.graph import Graph

__all__ = ["CoalescerStats", "CoalescedBatch", "UpdateCoalescer"]

WeightChange = tuple[int, int, float]
EdgeKey = tuple[int, int]

# Per-edge pending operations: the op tag orders the state machine.
_WEIGHT = "weight"
_INSERT = "insert"
_DELETE = "delete"


@dataclass(frozen=True)
class CoalescerStats:
    submitted: int
    merged_duplicates: int
    noops_dropped: int
    flushes: int
    #: insert-then-delete pairs that annihilated before ever flushing.
    cancelled_pairs: int = 0
    #: structural submissions (inserts + deletes) accepted.
    structural_submitted: int = 0

    def __str__(self) -> str:
        return (
            f"{self.submitted} submitted, "
            f"{self.merged_duplicates} duplicates merged, "
            f"{self.noops_dropped} no-ops dropped, "
            f"{self.cancelled_pairs} insert/delete pairs cancelled, "
            f"{self.flushes} flushes"
        )


@dataclass
class CoalescedBatch:
    """Net effect of a drained buffer against a concrete graph state."""

    increases: list[WeightChange] = field(default_factory=list)
    decreases: list[WeightChange] = field(default_factory=list)
    insertions: list[WeightChange] = field(default_factory=list)
    deletions: list[EdgeKey] = field(default_factory=list)
    noops: int = 0

    @property
    def size(self) -> int:
        return (
            len(self.increases)
            + len(self.decreases)
            + len(self.insertions)
            + len(self.deletions)
        )

    @property
    def is_structural(self) -> bool:
        """True when the batch needs the structural ``apply_batch`` path."""
        return bool(self.insertions or self.deletions)

    def changes(self) -> list[WeightChange]:
        """Increases first, then decreases (the paper's batch protocol)."""
        return [*self.increases, *self.decreases]


class UpdateCoalescer:
    """Streaming buffer of weight and structural changes, merged per edge."""

    __slots__ = (
        "_pending",
        "_submitted",
        "_merged",
        "_flushes",
        "_noops",
        "_cancelled",
        "_structural",
    )

    def __init__(self) -> None:
        self._pending: dict[EdgeKey, tuple[str, float | None]] = {}
        self._submitted = 0
        self._merged = 0
        self._flushes = 0
        self._noops = 0
        self._cancelled = 0
        self._structural = 0

    # -- intake ---------------------------------------------------------
    def add(self, u: int, v: int, weight: float) -> None:
        """Buffer a weight report for edge ``(u, v)``.

        On a road queued for insertion the report folds into the
        insertion's weight; on one queued for deletion it acts as a
        restore, folding the delete back into a plain weight change.
        """
        key = (u, v) if u <= v else (v, u)
        self._submitted += 1
        prior = self._pending.get(key)
        if prior is not None:
            self._merged += 1
            if prior[0] == _INSERT:
                self._pending[key] = (_INSERT, float(weight))
                return
        self._pending[key] = (_WEIGHT, float(weight))

    def add_many(self, changes: Iterable[WeightChange]) -> None:
        for u, v, w in changes:
            self.add(u, v, w)

    def add_insert(self, u: int, v: int, weight: float) -> None:
        """Buffer a road insertion (new-link construction).

        Inserting over a queued deletion folds to a weight change — the
        edge still exists until the deletion flushes, so the net effect
        is its new weight. Whether a drained entry really is an
        insertion is decided against the graph at flush time.
        """
        key = (u, v) if u <= v else (v, u)
        self._submitted += 1
        self._structural += 1
        prior = self._pending.get(key)
        if prior is not None:
            self._merged += 1
            if prior[0] == _DELETE:
                self._pending[key] = (_WEIGHT, float(weight))
                return
        self._pending[key] = (_INSERT, float(weight))

    def add_delete(self, u: int, v: int) -> None:
        """Buffer a road deletion (closure).

        Deleting a road queued for insertion cancels both — neither ever
        reaches the index.
        """
        key = (u, v) if u <= v else (v, u)
        self._submitted += 1
        self._structural += 1
        prior = self._pending.get(key)
        if prior is not None:
            self._merged += 1
            if prior[0] == _INSERT:
                del self._pending[key]
                self._cancelled += 1
                return
        self._pending[key] = (_DELETE, None)

    # -- drain ----------------------------------------------------------
    def drain(self, graph: Graph) -> CoalescedBatch:
        """Empty the buffer into its net batch against *graph*'s weights."""
        batch = CoalescedBatch()
        has_edge = getattr(graph, "has_edge", None) or graph.has_arc
        for (u, v), (op, w) in self._pending.items():
            if op == _DELETE:
                batch.deletions.append((u, v))
                continue
            if not has_edge(u, v):
                # A weight report on a compacted-away edge is a restore:
                # it re-enters through the insertion path.
                batch.insertions.append((u, v, w))
                continue
            current = graph.weight(u, v)
            if w > current:
                batch.increases.append((u, v, w))
            elif w < current:
                batch.decreases.append((u, v, w))
            else:
                batch.noops += 1
        self._pending.clear()
        self._noops += batch.noops
        self._flushes += 1
        return batch

    # -- introspection --------------------------------------------------
    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)

    @property
    def pending_edges(self) -> int:
        return len(self._pending)

    def stats(self) -> CoalescerStats:
        return CoalescerStats(
            submitted=self._submitted,
            merged_duplicates=self._merged,
            noops_dropped=self._noops,
            flushes=self._flushes,
            cancelled_pairs=self._cancelled,
            structural_submitted=self._structural,
        )
