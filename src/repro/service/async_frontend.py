"""Asyncio frontend: micro-batching + admission control for the service.

:class:`AsyncDistanceService` puts an asyncio event loop in front of a
:class:`~repro.service.service.DistanceService`. Individual
``await``-style client calls — the natural shape of an RPC handler —
are terrible for the batch-oriented runtimes underneath (every pair
pays a full scheduler round trip); the frontend fixes this by
**micro-batching**: a dispatcher coroutine drains every request queued
while the previous batch was executing and folds them into *one*
scheduler batch, so k shard workers see one ComputeBatch per drain
instead of one per client call. Concurrency alone creates the batching
— no artificial latency timer is involved.

Execution happens on a single dedicated thread (the service, its
cache, and the runtimes are not thread-safe by design); the event loop
stays free to accept work while that thread runs. Updates submitted
through the frontend ride the same thread, strictly ordered with the
query batches around them.

**Admission control.** The frontend tracks queued-but-unanswered pairs;
a request that would push the backlog past ``max_queue_depth`` is
*shed* immediately with :class:`~repro.exceptions.ServiceOverloadError`
instead of queued — bounded memory and bounded tail latency under
overload, with the shed count surfaced as ``dhl_async_shed_total`` in
the service's metrics registry (PR 6) next to
``dhl_async_batches_total`` / ``dhl_async_requests_total``.

Use as an async context manager::

    async with AsyncDistanceService(service, max_queue_depth=4096) as svc:
        dists = await asyncio.gather(
            *(svc.distance(s, t) for s, t in pairs)
        )
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import PartialResultError, ServiceOverloadError

__all__ = ["AsyncDistanceService", "AsyncFrontendStats"]


@dataclass
class AsyncFrontendStats:
    """Micro-batching and admission-control counters.

    ``merge_ratio`` is the effectiveness of the frontend: client
    requests answered per scheduler batch (1.0 means no batching
    happened — a serial caller; >> 1 means concurrent callers were
    folded together).
    """

    offered_requests: int = 0
    answered_requests: int = 0
    shed_requests: int = 0
    batches: int = 0
    batched_pairs: int = 0
    updates: int = 0
    max_merged: int = 0
    #: Requests answered partially (their slice of a degraded batch
    #: contained breaker-shed pairs, resolved with PartialResultError).
    partial_requests: int = 0

    @property
    def merge_ratio(self) -> float:
        return self.answered_requests / self.batches if self.batches else 0.0

    def as_dict(self) -> dict[str, float]:
        out = dict(self.__dict__)
        out["merge_ratio"] = round(self.merge_ratio, 3)
        return out


@dataclass
class _QueryItem:
    pairs: list[tuple[int, int]]
    future: asyncio.Future = field(repr=False)


@dataclass
class _UpdateItem:
    changes: list[tuple[int, int, float]]
    future: asyncio.Future = field(repr=False)


_STOP = object()


class AsyncDistanceService:
    """Micro-batching asyncio facade over a :class:`DistanceService`.

    Parameters
    ----------
    service:
        The synchronous service to front. The frontend *borrows* it:
        :meth:`close` stops the dispatcher and executor but leaves the
        service (and its runtime) to its owner, so one service can be
        re-fronted or shared with synchronous callers.
    max_batch:
        Pair-count ceiling per folded scheduler batch; a drain stops
        merging past it (requests left in the queue start the next
        batch immediately).
    max_queue_depth:
        Admission limit in *pairs* queued but not yet answered. The
        request that would exceed it is refused with
        :class:`ServiceOverloadError` and counted, not queued.
    """

    def __init__(
        self,
        service,
        *,
        max_batch: int = 4096,
        max_queue_depth: int = 65_536,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        self.service = service
        self.max_batch = max_batch
        self.max_queue_depth = max_queue_depth
        self.stats = AsyncFrontendStats()
        self._queue: asyncio.Queue = asyncio.Queue()
        self._pending_pairs = 0
        self._dispatcher: asyncio.Task | None = None
        # One thread: the service/runtime stack is single-writer by
        # design; queries and updates interleave in queue order.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="dhl-async-exec"
        )
        self._closed = False
        registry = service.observability.registry
        self._m_requests = registry.counter(
            "dhl_async_requests_total", "Client requests admitted"
        )
        self._m_batches = registry.counter(
            "dhl_async_batches_total", "Scheduler batches dispatched"
        )
        self._m_shed = registry.counter(
            "dhl_async_shed_total", "Requests shed by admission control"
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "AsyncDistanceService":
        """Start the dispatcher loop (idempotent)."""
        if self._closed:
            raise ServiceOverloadError("frontend is closed")
        if self._dispatcher is None:
            self._dispatcher = asyncio.get_running_loop().create_task(
                self._dispatch_loop()
            )
        return self

    async def close(self) -> None:
        """Drain queued work, stop the dispatcher; idempotent.

        The fronted service is *not* closed — it belongs to the caller
        (and may be shared with synchronous code paths).
        """
        if self._closed:
            return
        self._closed = True
        if self._dispatcher is not None:
            await self._queue.put(_STOP)
            await self._dispatcher
            self._dispatcher = None
        self._executor.shutdown(wait=True)

    async def __aenter__(self) -> "AsyncDistanceService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # client surface
    # ------------------------------------------------------------------
    async def distances(self, pairs) -> np.ndarray:
        """Batch distances; may be folded with concurrent calls."""
        pairs = [(int(s), int(t)) for s, t in pairs]
        if not pairs:
            return np.empty(0, dtype=np.float64)
        item = _QueryItem(pairs=pairs, future=self._admit(len(pairs)))
        await self._queue.put(item)
        return await item.future

    async def distance(self, s: int, t: int) -> float:
        """Single-pair distance (the micro-batcher's bread and butter)."""
        out = await self.distances([(s, t)])
        return float(out[0])

    async def update(self, changes) -> None:
        """Apply a weight-change batch, ordered with surrounding queries."""
        changes = [(int(u), int(v), float(w)) for u, v, w in changes]
        item = _UpdateItem(changes=changes, future=self._admit(1))
        await self._queue.put(item)
        await item.future

    def frontend_stats(self) -> AsyncFrontendStats:
        return self.stats

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _admit(self, weight: int) -> asyncio.Future:
        """Admission check; returns the future a queued item resolves."""
        if self._closed or self._dispatcher is None:
            raise ServiceOverloadError(
                "frontend is not running (use `async with` or await start())"
            )
        self.stats.offered_requests += 1
        if self._pending_pairs + weight > self.max_queue_depth:
            self.stats.shed_requests += 1
            self._m_shed.inc()
            raise ServiceOverloadError(
                f"queue depth {self._pending_pairs} + {weight} exceeds "
                f"{self.max_queue_depth}; request shed"
            )
        self._pending_pairs += weight
        self._m_requests.inc()
        return asyncio.get_running_loop().create_future()

    async def _dispatch_loop(self) -> None:
        """Drain the queue into maximal same-kind runs, execute each.

        Every iteration blocks on one item, then greedily drains
        whatever else queued up meanwhile — that drain *is* the
        micro-batch. Query runs fold into one ``service.distances``
        call; an update forms its own run so ordering with neighbouring
        queries is preserved.
        """
        loop = asyncio.get_running_loop()
        stop = False
        while not stop:
            item = await self._queue.get()
            if item is _STOP:
                break
            run: list = [item]
            pair_budget = len(item.pairs) if isinstance(item, _QueryItem) else 0
            while isinstance(run[-1], _QueryItem) and pair_budget < self.max_batch:
                try:
                    nxt = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if nxt is _STOP:
                    stop = True
                    break
                if isinstance(nxt, _QueryItem):
                    run.append(nxt)
                    pair_budget += len(nxt.pairs)
                else:
                    # An update ends the query run; flush the queries
                    # first, then let the update execute as its own
                    # run — client-visible ordering is preserved.
                    await self._execute_run(loop, run)
                    run = [nxt]
                    break
            await self._execute_run(loop, run)

    async def _execute_run(self, loop, run: list) -> None:
        if not run:
            return
        if isinstance(run[0], _UpdateItem):
            item = run[0]
            self.stats.updates += 1
            try:
                await loop.run_in_executor(
                    self._executor, self._apply_update, item.changes
                )
            except BaseException as exc:
                self._resolve(item.future, exc=exc)
            else:
                self._resolve(item.future, value=None)
            finally:
                self._pending_pairs -= 1
            return
        items: list[_QueryItem] = run
        all_pairs = [pair for item in items for pair in item.pairs]
        self.stats.batches += 1
        self.stats.batched_pairs += len(all_pairs)
        self.stats.max_merged = max(self.stats.max_merged, len(items))
        self._m_batches.inc()
        try:
            out = await loop.run_in_executor(
                self._executor, self.service.distances, all_pairs
            )
        except PartialResultError as exc:
            # A degraded batch: unfold the merged result so only the
            # clients whose slice actually contains shed pairs see the
            # error — everyone else gets their (complete) answers.
            shed = set(int(i) for i in exc.shed)
            offset = 0
            for item in items:
                n = len(item.pairs)
                view = np.array(exc.distances[offset : offset + n])
                item_shed = np.array(
                    sorted(i - offset for i in shed if offset <= i < offset + n),
                    dtype=np.int64,
                )
                offset += n
                if len(item_shed):
                    self.stats.partial_requests += 1
                    self._resolve(
                        item.future,
                        exc=PartialResultError(view, item_shed, exc.open_shards),
                    )
                else:
                    self.stats.answered_requests += 1
                    self._resolve(item.future, value=view)
        except BaseException as exc:
            for item in items:
                self._resolve(item.future, exc=exc)
        else:
            offset = 0
            for item in items:
                view = np.array(out[offset : offset + len(item.pairs)])
                offset += len(item.pairs)
                self.stats.answered_requests += 1
                self._resolve(item.future, value=view)
        finally:
            self._pending_pairs -= len(all_pairs)

    def _apply_update(self, changes) -> None:
        self.service.submit_many(changes)
        self.service.flush()

    @staticmethod
    def _resolve(future: asyncio.Future, value=None, exc=None) -> None:
        if future.done():  # pragma: no cover - cancelled client
            return
        if exc is not None:
            future.set_exception(exc)
        else:
            future.set_result(value)

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        state = "closed" if self._closed else "running"
        return (
            f"AsyncDistanceService({state}, pending={self._pending_pairs}, "
            f"batches={self.stats.batches})"
        )
