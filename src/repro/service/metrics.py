"""Serving-side metrics: latency percentiles and throughput.

The serving layer reports the numbers an operator of a distance service
actually watches: per-call latency quantiles (p50/p95/p99), sustained
operation throughput, and cache effectiveness. Latencies are recorded
per *service call* (a batch of pairs is one call), while throughput is
per individual operation, so a batched engine shows both its amortised
win and its worst-case tail.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.observability.timing import Timer

__all__ = ["LatencySummary", "LatencyRecorder", "Timer"]


@dataclass(frozen=True)
class LatencySummary:
    """Aggregated view of one :class:`LatencyRecorder`."""

    calls: int
    operations: int
    total_seconds: float
    mean_seconds: float
    p50_seconds: float
    p95_seconds: float
    p99_seconds: float
    max_seconds: float

    @property
    def throughput(self) -> float:
        """Operations per second of wall time spent inside calls."""
        if self.total_seconds <= 0.0:
            return 0.0
        return self.operations / self.total_seconds

    def as_dict(self) -> dict[str, float]:
        return {
            "calls": self.calls,
            "operations": self.operations,
            "total_seconds": self.total_seconds,
            "mean_seconds": self.mean_seconds,
            "p50_seconds": self.p50_seconds,
            "p95_seconds": self.p95_seconds,
            "p99_seconds": self.p99_seconds,
            "max_seconds": self.max_seconds,
            "throughput": self.throughput,
        }

    def __str__(self) -> str:
        if not self.calls:
            return "no calls recorded"
        return (
            f"{self.calls} calls / {self.operations} ops, "
            f"{self.throughput:,.0f} ops/s, "
            f"p50 {self.p50_seconds * 1e3:.3f} ms, "
            f"p95 {self.p95_seconds * 1e3:.3f} ms, "
            f"p99 {self.p99_seconds * 1e3:.3f} ms"
        )


class LatencyRecorder:
    """Accumulates per-call latencies with their operation counts."""

    __slots__ = ("_latencies", "_operations")

    def __init__(self) -> None:
        self._latencies: list[float] = []
        self._operations = 0

    def record(self, seconds: float, operations: int = 1) -> None:
        self._latencies.append(float(seconds))
        self._operations += int(operations)

    @property
    def calls(self) -> int:
        return len(self._latencies)

    @property
    def operations(self) -> int:
        return self._operations

    def percentile(self, p: float) -> float:
        if not self._latencies:
            return 0.0
        return float(np.percentile(np.asarray(self._latencies), p))

    def summary(self) -> LatencySummary:
        if not self._latencies:
            return LatencySummary(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        arr = np.asarray(self._latencies)
        p50, p95, p99 = np.percentile(arr, [50, 95, 99])
        return LatencySummary(
            calls=len(arr),
            operations=self._operations,
            total_seconds=float(arr.sum()),
            mean_seconds=float(arr.mean()),
            p50_seconds=float(p50),
            p95_seconds=float(p95),
            p99_seconds=float(p99),
            max_seconds=float(arr.max()),
        )

    def clear(self) -> None:
        self._latencies.clear()
        self._operations = 0
