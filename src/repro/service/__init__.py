"""Online serving layer on top of the DHL index.

The paper's claim is sub-millisecond exact distances *while* absorbing a
stream of weight updates; this package turns that capability into a
service:

* :class:`DistanceService` — batched query facade with an epoch-guarded
  result cache and an update coalescer (:mod:`repro.service.service`);
  construct it with ``backend=`` — a built index satisfying
  :class:`~repro.core.backend.DistanceBackend`, or a runtime;
* :class:`AsyncDistanceService` — asyncio micro-batching frontend with
  admission control (:mod:`repro.service.async_frontend`);
* :class:`EpochLRUCache` — LRU result cache with O(1) watermark or
  fine-grained per-vertex invalidation (:mod:`repro.service.cache`);
* :class:`UpdateCoalescer` — folds redundant change streams into one
  maintenance batch (:mod:`repro.service.coalescer`);
* :class:`ExecutionRuntime` — the pluggable execution layer: queries
  and maintenance run in-process (:class:`InProcessRuntime`), across
  shared-memory shard worker processes (:class:`ShardWorkerRuntime`,
  :mod:`repro.service.workers`), or across TCP shard replicas with
  round-robin reads and failover (:class:`SocketShardRuntime`,
  :mod:`repro.service.socket_runtime`). The distributed transports
  speak the typed, versioned runtime protocol of
  :mod:`repro.service.protocol`;
* :mod:`repro.service.workload` — uniform / Zipf-hotspot / rush-hour
  traffic generators and the :func:`replay` driver;
* :mod:`repro.service.metrics` — latency percentile recorders.

Deep observability (metrics registry, request span tracing, kernel
phase profiling, slow-query log) lives in :mod:`repro.observability`;
hand :class:`DistanceService` an ``Observability.enabled(...)`` bundle
to switch it on — the default is the zero-overhead null bundle.
"""

from repro.observability import NULL_OBSERVABILITY, Observability
from repro.service.async_frontend import AsyncDistanceService, AsyncFrontendStats
from repro.service.cache import CacheStats, EpochLRUCache
from repro.service.coalescer import CoalescedBatch, CoalescerStats, UpdateCoalescer
from repro.service.faults import FaultEvent, FaultPlan
from repro.service.metrics import LatencyRecorder, LatencySummary, Timer
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ComputeBatch,
    EpochDelta,
    FanQuery,
    HealthCheck,
    HealthReply,
    SubQuery,
    TraceEnvelope,
)
from repro.service.runtime import (
    CircuitBreaker,
    ExecutionRuntime,
    InProcessRuntime,
    RegionPairScheduler,
    RetryPolicy,
    WorkerPoolStats,
)
from repro.service.service import DistanceService, ServiceStats
from repro.service.socket_runtime import ReplicaSupervisor, SocketShardRuntime
from repro.service.workers import ShardExecutor, ShardWorkerRuntime
from repro.service.workload import (
    Event,
    QueryBatch,
    ReplayReport,
    UpdateBatch,
    commute_traffic,
    replay,
    rush_hour_traffic,
    uniform_traffic,
    zipf_hotspot_traffic,
)

__all__ = [
    "Observability",
    "NULL_OBSERVABILITY",
    "AsyncDistanceService",
    "AsyncFrontendStats",
    "CacheStats",
    "EpochLRUCache",
    "CoalescedBatch",
    "CoalescerStats",
    "UpdateCoalescer",
    "LatencyRecorder",
    "LatencySummary",
    "Timer",
    "PROTOCOL_VERSION",
    "ComputeBatch",
    "EpochDelta",
    "FanQuery",
    "HealthCheck",
    "HealthReply",
    "SubQuery",
    "TraceEnvelope",
    "CircuitBreaker",
    "ExecutionRuntime",
    "FaultEvent",
    "FaultPlan",
    "InProcessRuntime",
    "RegionPairScheduler",
    "RetryPolicy",
    "WorkerPoolStats",
    "DistanceService",
    "ServiceStats",
    "ReplicaSupervisor",
    "SocketShardRuntime",
    "ShardExecutor",
    "ShardWorkerRuntime",
    "Event",
    "QueryBatch",
    "UpdateBatch",
    "ReplayReport",
    "commute_traffic",
    "replay",
    "rush_hour_traffic",
    "uniform_traffic",
    "zipf_hotspot_traffic",
]
