"""Mixed query/update traffic generators and a replay driver.

Three traffic shapes cover the serving regimes a road-network distance
service actually sees:

* :func:`uniform_traffic` — uniformly random pairs with periodic weight
  churn (the paper's Table 2/3 protocol recast as a stream);
* :func:`zipf_hotspot_traffic` — Zipf-skewed endpoints (city centres,
  airports) where a result cache should shine;
* :func:`rush_hour_traffic` — congestion cycles: arterial edges ramp up
  in consecutive bursts (exercising the coalescer), a query storm hits
  while congested, then weights clear and off-peak queries trickle;
* :func:`commute_traffic` — cross-region commutes: every query pair
  straddles a partition boundary and weight churn is biased onto the
  cut edges, the worst case for a region-sharded backend (no query is
  answerable by one shard; most updates force overlay refreshes).

Events are generated up-front against the graph's *base* weights, so a
replay is deterministic for a given seed and always ends with the graph
back in a consistent state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Union

import numpy as np

from repro.graph.graph import Graph
from repro.service.metrics import Timer
from repro.service.service import DistanceService, ServiceStats
from repro.utils.rng import make_rng, sample_pairs

__all__ = [
    "QueryBatch",
    "UpdateBatch",
    "Event",
    "uniform_traffic",
    "zipf_hotspot_traffic",
    "rush_hour_traffic",
    "commute_traffic",
    "replay",
    "ReplayReport",
]

WeightChange = tuple[int, int, float]


@dataclass(frozen=True)
class QueryBatch:
    """One service call answering a batch of (s, t) pairs."""

    pairs: tuple[tuple[int, int], ...]


@dataclass(frozen=True)
class UpdateBatch:
    """A burst of weight changes submitted to the coalescer."""

    changes: tuple[WeightChange, ...]


Event = Union[QueryBatch, UpdateBatch]


def _scaled(weight: float, factor: float) -> float:
    """Integral scaled weight (integer weights keep maintenance exact)."""
    return float(max(1, round(weight * factor)))


def _finite_edges(graph: Graph) -> list[tuple[int, int, float]]:
    return [(u, v, w) for u, v, w in graph.edges() if np.isfinite(w)]


# ---------------------------------------------------------------------------
# traffic shapes
# ---------------------------------------------------------------------------

def uniform_traffic(
    graph: Graph,
    *,
    query_batches: int = 50,
    batch_size: int = 200,
    update_every: int = 5,
    update_size: int = 16,
    seed: int | np.random.Generator | None = 0,
) -> list[Event]:
    """Uniform random pairs with periodic random weight churn."""
    rng = make_rng(seed)
    edges = _finite_edges(graph)
    events: list[Event] = []
    factors = (0.5, 0.75, 1.5, 2.0)
    for batch_no in range(query_batches):
        if update_every and batch_no and batch_no % update_every == 0:
            picks = rng.choice(len(edges), size=min(update_size, len(edges)), replace=False)
            changes = tuple(
                (edges[int(p)][0], edges[int(p)][1],
                 _scaled(edges[int(p)][2], factors[int(rng.integers(len(factors)))]))
                for p in picks
            )
            events.append(UpdateBatch(changes))
        events.append(
            QueryBatch(tuple(sample_pairs(graph.num_vertices, batch_size, rng)))
        )
    # Close the stream by restoring every touched edge to its base weight.
    events.append(
        UpdateBatch(tuple((u, v, w) for u, v, w in edges))
    )
    return events


def zipf_hotspot_traffic(
    graph: Graph,
    *,
    query_batches: int = 50,
    batch_size: int = 200,
    alpha: float = 1.2,
    update_every: int = 5,
    update_size: int = 16,
    seed: int | np.random.Generator | None = 0,
) -> list[Event]:
    """Zipf-skewed endpoints: a few hotspot vertices dominate traffic.

    Endpoints are drawn by Zipf rank over a fixed random permutation of
    the vertices, so the hottest vertex differs per seed but stays hot
    for the whole stream — the regime where an epoch-guarded cache keeps
    most queries off the label arrays.
    """
    if alpha <= 1.0:
        raise ValueError("zipf exponent alpha must exceed 1")
    rng = make_rng(seed)
    n = graph.num_vertices
    perm = rng.permutation(n)
    edges = _finite_edges(graph)
    factors = (0.5, 2.0)

    def zipf_vertices(count: int) -> np.ndarray:
        ranks = (rng.zipf(alpha, size=count) - 1) % n
        return perm[ranks]

    events: list[Event] = []
    for batch_no in range(query_batches):
        if update_every and batch_no and batch_no % update_every == 0:
            picks = rng.choice(len(edges), size=min(update_size, len(edges)), replace=False)
            changes = tuple(
                (edges[int(p)][0], edges[int(p)][1],
                 _scaled(edges[int(p)][2], factors[int(rng.integers(len(factors)))]))
                for p in picks
            )
            events.append(UpdateBatch(changes))
        s = zipf_vertices(batch_size)
        t = zipf_vertices(batch_size)
        # Redraw collisions uniformly so self-pairs stay rare but legal.
        clash = s == t
        while clash.any():
            t[clash] = rng.integers(0, n, size=int(clash.sum()))
            clash = s == t
        events.append(QueryBatch(tuple(zip(s.tolist(), t.tolist()))))
    events.append(UpdateBatch(tuple((u, v, w) for u, v, w in edges)))
    return events


def rush_hour_traffic(
    graph: Graph,
    *,
    cycles: int = 3,
    arterial_edges: int = 24,
    ramp_factors: tuple[float, ...] = (1.5, 2.0, 3.0),
    peak_batches: int = 6,
    peak_batch_size: int = 400,
    offpeak_batches: int = 4,
    offpeak_batch_size: int = 100,
    seed: int | np.random.Generator | None = 0,
) -> list[Event]:
    """Congestion cycles over sampled arterial edge sets.

    Each cycle emits the ramp as *consecutive* update bursts re-touching
    the same edges (1.5x, then 2x, then 3x base weight) — exactly the
    redundancy the coalescer folds into one maintenance pass — followed
    by a peak query storm, an instant clearing, and an off-peak lull.
    """
    rng = make_rng(seed)
    n = graph.num_vertices
    edges = _finite_edges(graph)
    size = min(arterial_edges, len(edges))
    events: list[Event] = []
    for _ in range(cycles):
        picks = [edges[int(p)] for p in rng.choice(len(edges), size=size, replace=False)]
        for factor in ramp_factors:
            events.append(
                UpdateBatch(tuple((u, v, _scaled(w, factor)) for u, v, w in picks))
            )
        for _ in range(peak_batches):
            events.append(
                QueryBatch(tuple(sample_pairs(n, peak_batch_size, rng)))
            )
        events.append(UpdateBatch(tuple((u, v, w) for u, v, w in picks)))
        for _ in range(offpeak_batches):
            events.append(
                QueryBatch(tuple(sample_pairs(n, offpeak_batch_size, rng)))
            )
    return events


def commute_traffic(
    graph: Graph,
    region_of: np.ndarray,
    *,
    boundary: "list[list[int]] | None" = None,
    query_batches: int = 50,
    batch_size: int = 200,
    update_every: int = 5,
    update_size: int = 16,
    cut_edge_bias: float = 0.5,
    seed: int | np.random.Generator | None = 0,
) -> list[Event]:
    """Cross-region commute stream over a fixed region assignment.

    Query pairs always straddle two regions (drawn via
    :func:`repro.experiments.workloads.cross_region_pairs`, boundary-
    biased when *boundary* is given); periodic weight churn picks cut
    edges with probability *cut_edge_bias* — the exact updates that
    force a sharded backend to refresh its overlay.
    """
    from repro.experiments.workloads import cross_region_pairs

    rng = make_rng(seed)
    region_of = np.asarray(region_of, dtype=np.int64)
    edges = _finite_edges(graph)
    cut = [
        (u, v, w) for u, v, w in edges if region_of[u] != region_of[v]
    ]
    factors = (0.5, 0.75, 1.5, 2.0)

    def churn() -> UpdateBatch:
        changes = []
        seen: set[tuple[int, int]] = set()
        while len(changes) < min(update_size, len(edges)):
            pool = cut if cut and rng.random() < cut_edge_bias else edges
            u, v, w = pool[int(rng.integers(len(pool)))]
            if (u, v) in seen:
                continue
            seen.add((u, v))
            factor = factors[int(rng.integers(len(factors)))]
            changes.append((u, v, _scaled(w, factor)))
        return UpdateBatch(tuple(changes))

    events: list[Event] = []
    for batch_no in range(query_batches):
        if update_every and batch_no and batch_no % update_every == 0:
            events.append(churn())
        events.append(
            QueryBatch(
                tuple(
                    cross_region_pairs(
                        region_of, batch_size, rng, boundary=boundary
                    )
                )
            )
        )
    events.append(UpdateBatch(tuple((u, v, w) for u, v, w in edges)))
    return events


# ---------------------------------------------------------------------------
# replay driver
# ---------------------------------------------------------------------------

@dataclass
class ReplayReport:
    """Outcome of replaying an event stream through a service."""

    wall_seconds: float
    query_batches: int
    update_batches: int
    queries: int
    updates_submitted: int
    distance_checksum: float
    service: ServiceStats = field(repr=False)

    @property
    def queries_per_second(self) -> float:
        return self.queries / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def summary(self) -> str:
        head = (
            f"replayed {self.query_batches} query batches "
            f"({self.queries} queries) and {self.update_batches} update "
            f"bursts ({self.updates_submitted} changes) in "
            f"{self.wall_seconds:.2f}s — {self.queries_per_second:,.0f} q/s"
        )
        return head + "\n" + self.service.summary()


def replay(service: DistanceService, events: Iterable[Event]) -> ReplayReport:
    """Drive *events* through *service*, then flush any trailing updates."""
    query_batches = update_batches = queries = submitted = 0
    checksum = 0.0
    with Timer() as timer:
        for event in events:
            if isinstance(event, QueryBatch):
                out = service.distances(event.pairs)
                finite = np.isfinite(out)
                checksum += float(out[finite].sum())
                query_batches += 1
                queries += len(event.pairs)
            else:
                service.submit_many(event.changes)
                update_batches += 1
                submitted += len(event.changes)
        service.flush()
    return ReplayReport(
        wall_seconds=timer.seconds,
        query_batches=query_batches,
        update_batches=update_batches,
        queries=queries,
        updates_submitted=submitted,
        distance_checksum=checksum,
        service=service.stats(),
    )
