"""The pluggable execution layer under :class:`DistanceService`.

The serving frontend (cache, coalescer, latency accounting) is backend
agnostic: all query execution and index maintenance is delegated to an
:class:`ExecutionRuntime`. Two implementations exist:

* :class:`InProcessRuntime` — the index's own query engine and update
  path, running in the service's process. Works with every backend
  (monolithic, directed, sharded) and is the default.
* :class:`~repro.service.workers.ShardWorkerRuntime` — each region
  shard of a :class:`~repro.core.sharded.ShardedDHLIndex` is hosted in
  a long-lived worker process that attaches the shard's flat label
  buffers over ``multiprocessing.shared_memory``; queries are split
  into per-shard sub-batches dispatched concurrently, so throughput is
  no longer capped by one interpreter's GIL.

Runtimes own operating-system resources (processes, shared-memory
segments); callers must :meth:`~ExecutionRuntime.close` them — the
service forwards its own ``close()``/context-manager exit.
"""

from __future__ import annotations

import abc
from typing import Iterable, Sequence

import numpy as np

from repro.labelling.maintenance import MaintenanceStats
from repro.observability import NULL_OBSERVABILITY

__all__ = ["ExecutionRuntime", "InProcessRuntime"]

WeightChange = tuple[int, int, float]


class ExecutionRuntime(abc.ABC):
    """Where a :class:`DistanceService` executes queries and updates.

    Implementations expose the built index as :attr:`index` (the service
    reads its epoch and graph), answer pair batches, and apply
    maintenance batches — keeping whatever execution substrate they
    manage (nothing, worker processes, remote shards) consistent with
    the index afterwards.
    """

    #: The index backend this runtime executes against.
    index = None

    #: Observability bundle, installed by the owning service (class-level
    #: null by default, so standalone runtimes trace/count nothing).
    observability = NULL_OBSERVABILITY

    @property
    @abc.abstractmethod
    def backend(self) -> str:
        """Human-readable backend tag for stats/bench artifacts.

        Examples: ``in-process/monolithic``, ``in-process/sharded``,
        ``worker-pool/sharded[4 workers]``.
        """

    @property
    def worker_count(self) -> int:
        """Worker processes serving queries (0 for in-process)."""
        return 0

    @property
    def supports_fine_grained_eviction(self) -> bool:
        """Whether per-pair hubs certify cached results on this backend."""
        return getattr(self.index, "supports_fine_grained_eviction", True)

    # -- queries --------------------------------------------------------
    @abc.abstractmethod
    def distances(self, pairs: Sequence[tuple[int, int]]) -> np.ndarray:
        """Batch distances for ``(s, t)`` global-id pairs."""

    def distances_with_hubs(
        self, pairs: Sequence[tuple[int, int]]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batch ``(distances, hubs)``; hub -1 where no hub certifies."""
        out = self.distances(pairs)
        return out, np.full(len(out), -1, dtype=np.int64)

    def distance(self, s: int, t: int) -> float:
        """Single-pair distance (batch round trip unless overridden)."""
        return float(self.distances([(s, t)])[0])

    def distance_with_hub(self, s: int, t: int) -> tuple[float, int]:
        """Single-pair ``(distance, hub)`` counterpart."""
        values, hubs = self.distances_with_hubs([(s, t)])
        return float(values[0]), int(hubs[0])

    # -- maintenance ----------------------------------------------------
    @abc.abstractmethod
    def apply_update(
        self, changes: Iterable[WeightChange], workers: int | None = None
    ) -> MaintenanceStats:
        """Apply one weight-change batch and re-sync the substrate.

        Implementations must leave every execution path (worker label
        buffers, epochs) consistent with :attr:`index` before returning.
        """

    # -- introspection --------------------------------------------------
    def pool_stats(self):
        """Scheduler / delta-sync counters for pooled runtimes.

        Returns a :class:`~repro.service.workers.WorkerPoolStats` for
        runtimes that schedule across workers, ``None`` otherwise — so
        printed summaries and metric snapshots can include the
        multiprocess backend without type-sniffing the runtime.
        """
        return None

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Release runtime-owned resources; idempotent."""

    def __enter__(self) -> "ExecutionRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class InProcessRuntime(ExecutionRuntime):
    """Execute directly on the index's engine in the calling process.

    This is the pre-runtime serving path extracted verbatim: batch
    misses hit the backend's zero-copy kernel (or the sharded routing
    engine), updates call the index's maintenance entry point. No
    resources are owned, so :meth:`close` is a no-op.
    """

    def __init__(self, index):
        self.index = index

    @property
    def backend(self) -> str:
        return f"in-process/{getattr(self.index, 'kind', 'monolithic')}"

    def distances(self, pairs: Sequence[tuple[int, int]]) -> np.ndarray:
        return self.index.engine.distances(pairs)

    def distances_with_hubs(
        self, pairs: Sequence[tuple[int, int]]
    ) -> tuple[np.ndarray, np.ndarray]:
        return self.index.engine.distances_with_hubs(pairs)

    def distance(self, s: int, t: int) -> float:
        return self.index.engine.distance(s, t)

    def distance_with_hub(self, s: int, t: int) -> tuple[float, int]:
        return self.index.engine.distance_with_hub(s, t)

    def apply_update(
        self, changes: Iterable[WeightChange], workers: int | None = None
    ) -> MaintenanceStats:
        return self.index.update(changes, workers)

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        return f"InProcessRuntime({self.backend})"
