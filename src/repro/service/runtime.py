"""The pluggable execution layer under :class:`DistanceService`.

The serving frontend (cache, coalescer, latency accounting) is backend
agnostic: all query execution and index maintenance is delegated to an
:class:`ExecutionRuntime`, typed against the
:class:`~repro.core.backend.DistanceBackend` Protocol. Three
implementations exist:

* :class:`InProcessRuntime` — the backend's own query engine and update
  path, running in the service's process. Works with every backend
  (monolithic, directed, sharded) and is the default.
* :class:`~repro.service.workers.ShardWorkerRuntime` — each region
  shard of a :class:`~repro.core.sharded.ShardedDHLIndex` is hosted in
  a long-lived worker process that attaches the shard's flat label
  buffers over ``multiprocessing.shared_memory``.
* :class:`~repro.service.socket_runtime.SocketShardRuntime` — each
  shard is served by N replica processes behind TCP endpoints speaking
  the framed protocol of :mod:`repro.service.protocol`, with
  round-robin reads and timeout failover.

The two distributed runtimes share :class:`RegionPairScheduler`: the
transport-agnostic batch scheduler that splits a pair batch by
``(source region, target region)``, builds typed
:class:`~repro.service.protocol.SubQuery` messages, and combines the
replies — transports only implement message delivery and label sync.

Runtimes own operating-system resources (processes, shared-memory
segments, sockets); callers must :meth:`~ExecutionRuntime.close` them —
the service forwards its own ``close()``/context-manager exit.
"""

from __future__ import annotations

import abc
import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.backend import DistanceBackend, WeightChange
from repro.exceptions import PartialResultError, ServiceRuntimeError
from repro.labelling.maintenance import MaintenanceStats
from repro.observability import NULL_OBSERVABILITY, Span, maybe_child, phase
from repro.service.protocol import FanQuery, SubQuery, SubResult

__all__ = [
    "ExecutionRuntime",
    "InProcessRuntime",
    "RegionPairScheduler",
    "WorkerPoolStats",
    "RetryPolicy",
    "CircuitBreaker",
]


class ExecutionRuntime(abc.ABC):
    """Where a :class:`DistanceService` executes queries and updates.

    Implementations expose the built backend as :attr:`index` (the
    service reads its epoch and graph), answer pair batches, and apply
    maintenance batches — keeping whatever execution substrate they
    manage (nothing, worker processes, remote replicas) consistent with
    the backend afterwards.
    """

    #: The distance backend this runtime executes against.
    index: DistanceBackend | None = None

    #: Observability bundle, installed by the owning service (class-level
    #: null by default, so standalone runtimes trace/count nothing).
    observability = NULL_OBSERVABILITY

    @property
    @abc.abstractmethod
    def backend(self) -> str:
        """Human-readable backend tag for stats/bench artifacts.

        Examples: ``in-process/monolithic``, ``in-process/sharded``,
        ``worker-pool/sharded[4 workers]``,
        ``socket-pool/sharded[4x2 replicas]``.
        """

    @property
    def worker_count(self) -> int:
        """Worker processes serving queries (0 for in-process)."""
        return 0

    @property
    def supports_fine_grained_eviction(self) -> bool:
        """Whether per-pair hubs certify cached results on this backend."""
        return getattr(self.index, "supports_fine_grained_eviction", True)

    # -- queries --------------------------------------------------------
    @abc.abstractmethod
    def distances(self, pairs: Sequence[tuple[int, int]]) -> np.ndarray:
        """Batch distances for ``(s, t)`` global-id pairs."""

    def distances_with_hubs(
        self, pairs: Sequence[tuple[int, int]]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batch ``(distances, hubs)``; hub -1 where no hub certifies."""
        out = self.distances(pairs)
        return out, np.full(len(out), -1, dtype=np.int64)

    def distance(self, s: int, t: int) -> float:
        """Single-pair distance (batch round trip unless overridden)."""
        return float(self.distances([(s, t)])[0])

    def distance_with_hub(self, s: int, t: int) -> tuple[float, int]:
        """Single-pair ``(distance, hub)`` counterpart."""
        values, hubs = self.distances_with_hubs([(s, t)])
        return float(values[0]), int(hubs[0])

    # -- maintenance ----------------------------------------------------
    @abc.abstractmethod
    def apply_update(
        self, changes: Iterable[WeightChange], workers: int | None = None
    ) -> MaintenanceStats:
        """Apply one weight-change batch and re-sync the substrate.

        Implementations must leave every execution path (worker label
        buffers, epochs) consistent with :attr:`index` before returning.
        """

    def apply_structural(
        self,
        insertions=(),
        deletions=(),
        weight_changes=(),
        workers: int | None = None,
    ):
        """Apply one mixed structural batch (insert / delete / reweigh).

        Default: the backend's own ``apply_batch``, in the calling
        process. Pooled runtimes override to re-sync their substrate
        through the layout-change republish path afterwards.
        """
        return self.index.apply_batch(
            insertions=insertions,
            deletions=deletions,
            weight_changes=weight_changes,
            workers=workers,
        )

    def compact(self):
        """Run the backend's dead-slot compaction pass.

        Safe by default: compaction changes buffer layouts but never
        query structure, so pooled runtimes recover through the same
        republish path as :meth:`apply_structural`.
        """
        return self.index.compact()

    # -- introspection --------------------------------------------------
    def pool_stats(self):
        """Scheduler / delta-sync counters for pooled runtimes.

        Returns a :class:`WorkerPoolStats` for runtimes that schedule
        across workers, ``None`` otherwise — so printed summaries and
        metric snapshots can include the distributed backends without
        type-sniffing the runtime.
        """
        return None

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Release runtime-owned resources; idempotent."""

    def __enter__(self) -> "ExecutionRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class InProcessRuntime(ExecutionRuntime):
    """Execute directly on the backend in the calling process.

    This is the pre-runtime serving path extracted verbatim: batch
    misses hit the backend's zero-copy kernel (or the sharded routing
    engine), updates call the backend's maintenance entry point. Any
    :class:`~repro.core.backend.DistanceBackend` works — backends with
    a hub-aware engine get the certified-hub fast path, the rest fall
    back to the Protocol's plain batch surface. No resources are owned,
    so :meth:`close` is a no-op.
    """

    def __init__(self, index: DistanceBackend):
        self.index = index
        # Hub-aware engines certify cached entries; backends without one
        # (the directed index) still serve through the Protocol surface.
        self._engine = getattr(index, "engine", None)

    @property
    def backend(self) -> str:
        return f"in-process/{getattr(self.index, 'kind', 'monolithic')}"

    def distances(self, pairs: Sequence[tuple[int, int]]) -> np.ndarray:
        return self.index.distances(pairs)

    def distances_with_hubs(
        self, pairs: Sequence[tuple[int, int]]
    ) -> tuple[np.ndarray, np.ndarray]:
        if self._engine is not None:
            return self._engine.distances_with_hubs(pairs)
        return super().distances_with_hubs(pairs)

    def distance(self, s: int, t: int) -> float:
        return self.index.distance(s, t)

    def distance_with_hub(self, s: int, t: int) -> tuple[float, int]:
        if self._engine is not None:
            return self._engine.distance_with_hub(s, t)
        return super().distance_with_hub(s, t)

    def apply_update(
        self, changes: Iterable[WeightChange], workers: int | None = None
    ) -> MaintenanceStats:
        return self.index.update(changes, workers)

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        return f"InProcessRuntime({self.backend})"


# ---------------------------------------------------------------------------
# pooled-runtime counters
# ---------------------------------------------------------------------------

@dataclass
class WorkerPoolStats:
    """Scheduler and epoch-broadcast counters of a pooled runtime.

    ``sub_batches`` counts worker requests (the split granularity),
    ``intra_pairs``/``cross_pairs`` how the traffic divided, and the
    broadcast counters certify the delta path: after N flushes,
    ``delta_syncs + republishes == shards touched across those flushes``
    and ``delta_bytes`` stays far below N full buffer copies.
    ``failovers``/``resyncs`` only move on replicated transports: a
    failover is a request retried on a sibling replica after a timeout
    or connection loss, a resync a stale replica brought back with a
    full republish.
    """

    batches: int = 0
    pairs: int = 0
    intra_pairs: int = 0
    cross_pairs: int = 0
    sub_batches: int = 0
    epoch_broadcasts: int = 0
    delta_syncs: int = 0
    delta_bytes: int = 0
    republishes: int = 0
    republish_bytes: int = 0
    #: Whole-buffer re-syncs forced by maintenance that bypassed
    #: ``apply_update`` (direct index updates; epoch drift).
    full_syncs: int = 0
    #: Requests retried on a sibling replica (socket transport).
    failovers: int = 0
    #: Stale replicas recovered with a full republish (socket transport).
    resyncs: int = 0
    #: Dead replicas brought back by the supervisor (socket transport).
    respawns: int = 0
    #: Respawn attempts that themselves failed (still backed off).
    respawn_failures: int = 0
    #: Health probes that timed out or errored (replica marked dead).
    heartbeat_timeouts: int = 0
    #: Per-shard circuit-breaker transitions into the open state.
    breaker_opens: int = 0
    #: Per-shard circuit-breaker transitions back to closed.
    breaker_closes: int = 0
    #: Breakers currently open (gauge, not a counter).
    breakers_open: int = 0
    #: Pairs shed with a typed partial-result error (breaker open).
    shed_pairs: int = 0
    #: Pairs answered with overlay-only upper bounds (degraded opt-in).
    degraded_pairs: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(self.__dict__)


# ---------------------------------------------------------------------------
# fault-tolerance primitives (shared by the supervisor and the breaker)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    ``delay(attempt)`` grows ``base_delay * multiplier**attempt`` capped
    at ``max_delay``, then shaves off up to ``jitter`` of itself using a
    CRC32 hash of ``(seed, attempt)`` — decorrelated like random jitter,
    but reproducible, so recovery tests never need to tolerate timing
    slop. ``attempts`` bounds how many respawns are tried before a
    replica is written off until the next health-poll cycle.
    """

    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25
    attempts: int = 5
    seed: int = 0

    def delay(self, attempt: int) -> float:
        raw = min(
            self.base_delay * self.multiplier ** max(0, attempt),
            self.max_delay,
        )
        if not self.jitter:
            return raw
        unit = zlib.crc32(f"{self.seed}:{attempt}".encode()) / 0xFFFFFFFF
        return raw * (1.0 - self.jitter * unit)


class CircuitBreaker:
    """Per-shard availability state machine.

    ``closed`` — at least one replica serves; dispatch normally.
    ``open`` — every replica is down; requests for this shard are shed
    (or answered overlay-only) without touching the transport.
    ``half-open`` — the supervisor respawned a replica that handshook
    and resynced, but no query has proven it yet; dispatch is allowed,
    and the first success closes the breaker.

    Transitions are counted into a :class:`WorkerPoolStats` when one is
    attached (``breaker_opens`` / ``breaker_closes`` counters plus the
    ``breakers_open`` gauge).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, sid: int, stats: WorkerPoolStats | None = None):
        self.sid = sid
        self.state = self.CLOSED
        self.stats = stats

    @property
    def allows_requests(self) -> bool:
        return self.state != self.OPEN

    def trip(self) -> None:
        """Every replica down: stop dispatching to this shard."""
        if self.state != self.OPEN:
            self.state = self.OPEN
            if self.stats is not None:
                self.stats.breaker_opens += 1
                self.stats.breakers_open += 1

    def probation(self) -> None:
        """A replica came back (respawned + resynced) but is unproven."""
        if self.state == self.OPEN:
            self.state = self.HALF_OPEN

    def record_success(self) -> None:
        """A request succeeded: the shard is healthy again."""
        if self.state != self.CLOSED:
            was_counted = self.state in (self.OPEN, self.HALF_OPEN)
            self.state = self.CLOSED
            if self.stats is not None and was_counted:
                self.stats.breaker_closes += 1
                self.stats.breakers_open = max(
                    0, self.stats.breakers_open - 1
                )

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        return f"CircuitBreaker(sid={self.sid}, state={self.state!r})"


# ---------------------------------------------------------------------------
# the shared region-pair batch scheduler
# ---------------------------------------------------------------------------

class RegionPairScheduler(ExecutionRuntime):
    """Transport-agnostic batch scheduler over a sharded backend.

    Owns everything about *what* to compute: the ``(region_s,
    region_t)`` batch split, the typed :class:`SubQuery` construction
    (fans, overlay blocks, epoch stamps), the parent-side min-plus
    combine for cross-shard groups, the update→delta-broadcast flow and
    the epoch-drift reconcile. Subclasses own *how* messages travel:

    * :meth:`_dispatch` — deliver each shard's :class:`SubQuery` list
      and return :class:`SubResult` replies by scheduler slot;
    * :meth:`_sync_shard` — ship one shard's changed label slots (or
      republish) after maintenance;
    * :meth:`_full_sync` — whole-buffer re-sync for one shard after
      out-of-band maintenance;
    * :meth:`_close_transport` — release transport resources.

    Sub-queries always carry their overlay block plus its epoch stamp
    (block materialisation is an engine-cache hit for the parent);
    transports elide the block per target once they know it is held —
    so a failover retry to a sibling replica that holds nothing can
    always re-ship it from the same :class:`SubQuery`.
    """

    kind = "pooled"
    # Sharded distances have no per-pair hub certificate (see
    # ShardedDHLIndex); the cache must use epoch invalidation.
    supports_fine_grained_eviction = False
    #: What happens when a shard's every replica is down: ``"error"``
    #: hard-fails the batch (the only behavior non-replicated transports
    #: can have), ``"shed"`` answers the rest of the batch and raises a
    #: typed :class:`~repro.exceptions.PartialResultError` carrying the
    #: holes, ``"overlay"`` additionally fills the holes with
    #: parent-side boundary-route answers (exact for cross-region
    #: pairs, upper bounds for intra-region pairs).
    degraded_mode = "error"

    def __init__(self, index):
        from repro.core.sharded import ShardedDHLIndex

        if not isinstance(index, ShardedDHLIndex):
            raise TypeError(
                f"{type(self).__name__} requires a ShardedDHLIndex; got "
                f"{type(index).__name__} (use InProcessRuntime instead)"
            )
        self.index = index
        self.stats = WorkerPoolStats()
        self._epochs = [0] * index.k
        self._index_epoch = index.epoch
        self._closed = False
        self._pool: ThreadPoolExecutor | None = ThreadPoolExecutor(
            max_workers=index.k, thread_name_prefix="shard-io"
        )

    # ------------------------------------------------------------------
    # transport hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _dispatch(
        self,
        requests: dict[int, list[tuple[tuple[int, int], SubQuery]]],
        request_span: Span | None = None,
    ) -> dict[tuple[int, int], SubResult]:
        """Deliver each shard's sub-queries; map slots to results."""

    @abc.abstractmethod
    def _sync_shard(self, sid: int, affected: Iterable[int]) -> None:
        """Ship shard *sid*'s changed label slots at ``self._epochs[sid]``."""

    @abc.abstractmethod
    def _full_sync(self, sid: int) -> None:
        """Whole-buffer re-sync of shard *sid* at ``self._epochs[sid]``."""

    def _close_transport(self) -> None:
        """Release transport-owned resources (processes, sockets)."""

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def distances(self, pairs: Sequence[tuple[int, int]]) -> np.ndarray:
        pairs = list(pairs)
        if not pairs:
            return np.empty(0, dtype=np.float64)
        arr = np.asarray(pairs, dtype=np.int64)
        return self.distances_arrays(arr[:, 0], arr[:, 1])

    def distance(self, s: int, t: int) -> float:
        return float(
            self.distances_arrays(
                np.array([s], dtype=np.int64), np.array([t], dtype=np.int64)
            )[0]
        )

    def distances_arrays(self, s: np.ndarray, t: np.ndarray) -> np.ndarray:
        """Batch distances via the region-pair-aware batch scheduler."""
        if self._closed:
            raise ServiceRuntimeError("runtime is closed")
        self._reconcile_index_epoch()
        # Attach scheduler/worker spans under the caller's open request
        # span (None when the request was not sampled or tracing is off).
        request_span = self.observability.tracer.current
        owner = self.index
        s = np.asarray(s, dtype=np.int64)
        t = np.asarray(t, dtype=np.int64)
        if not len(s):
            return np.empty(0, dtype=np.float64)
        out = np.full(len(s), np.inf, dtype=np.float64)
        rs = owner.region_of[s]
        rt = owner.region_of[t]
        local_s = owner.local_of[s]
        local_t = owner.local_of[t]
        has_overlay = owner.overlay is not None
        overlay_epoch = owner.overlay.epoch if has_overlay else 0

        from repro.sharding.engine import (
            boundary_fan,
            min_plus_compact,
            region_pair_groups,
        )

        groups: list[tuple[np.ndarray, int, int]] = []
        requests: dict[int, list[tuple[tuple[int, int], SubQuery]]] = {}
        # Slots each group is owed, with the shard that owes them — the
        # shed detector: a group whose dispatched slots did not all come
        # back lost (at least) one shard to an open breaker.
        expected: dict[int, list[tuple[tuple[int, int], int]]] = {}

        def enqueue(sid: int, slot: tuple[int, int], sub: SubQuery) -> None:
            requests.setdefault(sid, []).append((slot, sub))
            expected.setdefault(slot[0], []).append((slot, sid))
            self.stats.sub_batches += 1

        engine = owner.engine  # overlay blocks + their epoch cache
        # Same (region_s, region_t) split as the in-process sharded
        # engine, but each group becomes typed worker sub-queries.
        with maybe_child(request_span, "scheduler"):
            for g, (idx, i, j) in enumerate(region_pair_groups(rs, rt, owner.k)):
                groups.append((idx, i, j))
                s_local = local_s[idx]
                t_local = local_t[idx]
                fan = (
                    has_overlay
                    and len(owner.boundary_local[i])
                    and len(owner.boundary_local[j])
                )
                if i == j:
                    self.stats.intra_pairs += len(idx)
                    # The (tiny, epoch-cached) overlay block travels with
                    # the sub-query: the owning worker folds the boundary
                    # route itself and ships back one final array. The
                    # transport elides the block once its target holds
                    # this overlay epoch.
                    enqueue(
                        i,
                        (g, "final"),
                        SubQuery(
                            s=s_local,
                            t=t_local,
                            fan_src=FanQuery(s_local) if fan else None,
                            fan_dst=FanQuery(t_local) if fan else None,
                            block=engine.overlay_block(i, i) if fan else None,
                            block_epoch=overlay_epoch if fan else -1,
                        ),
                    )
                else:
                    self.stats.cross_pairs += len(idx)
                    if fan:
                        engine.overlay_block(i, j)  # warm the cache serially
                        enqueue(
                            i, (g, "src"), SubQuery(fan_src=FanQuery(s_local))
                        )
                        enqueue(
                            j, (g, "dst"), SubQuery(fan_dst=FanQuery(t_local))
                        )

        replies = self._dispatch(requests, request_span)

        # Cross-shard combines need both workers' fans, so they run in
        # the parent — spread across the I/O threads (numpy releases
        # the GIL for the large intermediates). Groups missing a
        # dispatched slot lost a shard to an open breaker: they are
        # either answered overlay-only in the parent (degraded opt-in)
        # or shed with a typed partial-result error.
        combines = []
        overlay_fallbacks = []
        open_shards: set[int] = set()
        shed_mask = np.zeros(len(s), dtype=bool)
        for g, (idx, i, j) in enumerate(groups):
            lost = [
                sid for slot, sid in expected.get(g, ()) if slot not in replies
            ]
            if lost:
                open_shards.update(lost)
                fan = (
                    has_overlay
                    and len(owner.boundary_local[i])
                    and len(owner.boundary_local[j])
                )
                if self.degraded_mode == "overlay" and fan:
                    overlay_fallbacks.append((g, idx, i, j))
                else:
                    shed_mask[idx] = True
            elif i == j:
                out[idx] = replies[(g, "final")].final
            elif (g, "src") in replies:
                combines.append((g, idx, i, j))

        def combine(item):
            g, idx, i, j = item
            src = replies[(g, "src")]
            dst = replies[(g, "dst")]
            out[idx] = min_plus_compact(
                src.ds,
                src.ds_inverse,
                engine.overlay_block(i, j),
                dst.dt,
                dst.dt_inverse,
            )

        def overlay_answer(item):
            # Boundary-route answer computed on the parent's own
            # authoritative shard engines: exact for cross-region pairs
            # (every route crosses the boundary), an upper bound for
            # intra-region pairs (the direct intra path is missed).
            g, idx, i, j = item
            ds = boundary_fan(
                owner.shards[i].engine,
                local_s[idx],
                owner.boundary_local[i],
                compact=True,
            )
            dt = boundary_fan(
                owner.shards[j].engine,
                local_t[idx],
                owner.boundary_local[j],
                compact=True,
            )
            out[idx] = min_plus_compact(
                ds[0], ds[1], engine.overlay_block(i, j), dt[0], dt[1]
            )
            self.stats.degraded_pairs += len(idx)

        with maybe_child(request_span, "min_plus_combine") as combine_span:
            if combine_span is not None:
                combine_span.annotate(groups=len(combines))
            if len(combines) > 1:
                list(self._pool.map(combine, combines))
            elif combines:
                combine(combines[0])
            for item in overlay_fallbacks:
                overlay_answer(item)
        # Self-pairs are trivially zero — even inside a shed group, so
        # the shed mask never reports a pair no shard was needed for.
        if shed_mask.any():
            out[shed_mask] = np.nan
        out[s == t] = 0.0
        self.stats.batches += 1
        self.stats.pairs += len(s)
        shed_positions = np.flatnonzero(shed_mask & (s != t))
        if len(shed_positions):
            self.stats.shed_pairs += len(shed_positions)
            raise PartialResultError(out, shed_positions, open_shards)
        return out

    # ------------------------------------------------------------------
    # maintenance + epoch broadcast
    # ------------------------------------------------------------------
    def apply_update(self, changes: Iterable[WeightChange], workers=None):
        """Apply the batch in the parent, then broadcast shard deltas.

        Overlay maintenance needs no broadcast (the overlay index lives
        only in the parent); a touched shard gets its changed label
        slots shipped by the transport plus an epoch bump — or a full
        republish if maintenance changed the label layout.
        """
        if self._closed:
            raise ServiceRuntimeError("runtime is closed")
        self._reconcile_index_epoch()
        stats = self.index.update(changes, workers)
        self._index_epoch = self.index.epoch
        with phase("flush.delta_sync"):
            for sid in stats.touched_shards:
                self._epochs[sid] += 1
                self._sync_shard(sid, stats.per_shard[sid].affected_labels)
                self.stats.epoch_broadcasts += 1
        return stats

    def apply_structural(
        self,
        insertions=(),
        deletions=(),
        weight_changes=(),
        workers: int | None = None,
    ):
        """Structural batch in the parent, then whole-buffer republish.

        Label layouts may move arbitrarily under structural maintenance,
        so every shard rides the full-sync/republish path rather than
        the per-slot delta. Workers pin the shard *query structure*
        (H_Q, boundary lists) at startup; batches the parent absorbed
        with fast paths or same-H_Q rebuilds keep both invariant, but a
        repartition splice or a boundary-set change (a brand-new cut
        edge) leaves pooled workers unrecoverably stale — the batch is
        still applied to the index, and a
        :class:`~repro.exceptions.ServiceRuntimeError` tells the caller
        to rebuild the runtime over it.
        """
        if self._closed:
            raise ServiceRuntimeError("runtime is closed")
        self._reconcile_index_epoch()
        owner = self.index
        hq_before = [id(shard.hq) for shard in owner.shards]
        boundary_before = owner.boundary_global.copy()
        stats = owner.apply_batch(
            insertions=insertions,
            deletions=deletions,
            weight_changes=weight_changes,
            workers=workers,
        )
        with phase("flush.structural_sync"):
            self._reconcile_index_epoch()
        if [id(shard.hq) for shard in owner.shards] != hq_before or not (
            np.array_equal(owner.boundary_global, boundary_before)
        ):
            raise ServiceRuntimeError(
                "structural batch changed shard query topology (hierarchy "
                "repartition or boundary-set change); the index is updated "
                "but pooled workers pin structure at startup — rebuild the "
                "runtime over the updated index, or serve structural-heavy "
                "traffic with InProcessRuntime"
            )
        return stats

    def compact(self):
        """Compact in the parent; republish every shard's buffers.

        Sharded compaction only rebuilds boundary structures when it
        physically removes a cut edge — the same topology-staleness
        rule as :meth:`apply_structural` applies.
        """
        if self._closed:
            raise ServiceRuntimeError("runtime is closed")
        owner = self.index
        boundary_before = owner.boundary_global.copy()
        stats = owner.compact()
        with phase("flush.structural_sync"):
            self._reconcile_index_epoch()
        if not np.array_equal(owner.boundary_global, boundary_before):
            raise ServiceRuntimeError(
                "compaction removed a cut edge and changed the boundary "
                "set; rebuild the pooled runtime over the updated index"
            )
        return stats

    def _reconcile_index_epoch(self) -> None:
        """Re-sync workers after maintenance that bypassed this runtime.

        A direct ``index.update(...)`` (structural op, another caller)
        advances the index epoch without telling us which labels moved;
        the only safe answer is a whole-buffer publish per shard.
        """
        if self.index.epoch == self._index_epoch:
            return
        for sid in range(self.index.k):
            self._epochs[sid] += 1
            self._full_sync(sid)
            self.stats.full_syncs += 1
            self.stats.epoch_broadcasts += 1
        self._index_epoch = self.index.epoch

    def pool_stats(self) -> WorkerPoolStats:
        return self.stats

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release transport resources and the I/O pool; idempotent."""
        if self._closed:
            return
        self._closed = True
        self._close_transport()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __del__(self):  # pragma: no cover - safety net
        try:
            self.close()
        except Exception:
            pass
