"""The transport-agnostic runtime protocol: typed messages + wire codec.

Every conversation between a scheduler and a shard worker — over a
``multiprocessing`` pipe today, a TCP socket to another host tomorrow —
is a sequence of the dataclasses defined here, serialised by one
length-framed binary codec. The protocol is what lets a new transport
(or a new labelling backend behind :class:`~repro.core.backend
.DistanceBackend`) plug into the region-pair scheduler without touching
it: the scheduler emits :class:`ComputeBatch` objects and consumes
:class:`ComputeReply` objects, full stop.

**Message catalogue.** Requests: :class:`SpecRequest` (startup
handshake; the only message allowed to carry a pickle, because it ships
arbitrary index structure exactly once), :class:`ComputeBatch` (one
batch's worth of shard-local work: :class:`SubQuery` entries with
optional :class:`FanQuery` boundary fans and an overlay block),
:class:`EpochDelta` (label maintenance: either "values already in your
shared segment, adopt this epoch" or the changed label slots inline),
:class:`Republish` (label layout changed: fresh buffers, by shared
memory name or inline), :class:`Shutdown`. Replies: :class:`ReadyReply`,
:class:`ComputeReply` (per-sub :class:`SubResult` plus an optional
:class:`TraceEnvelope` of worker-side spans), :class:`AckReply`,
:class:`StaleReply` (epoch refusal — the consistency contract),
:class:`ErrorReply`, :class:`ByeReply`.

**Wire format.** One frame per message::

    u32 length | b"DHLP" | u16 version | u16 type | u32 meta_len |
    u32 body_crc32 | meta (UTF-8 JSON) | buffer bytes...

``meta`` holds scalars and the buffer table (dtype + shape per array);
array payloads follow as raw little-endian bytes in table order, sliced
zero-copy with ``np.frombuffer`` on receipt. ``body_crc32`` covers
everything after the header (meta + buffers), so a frame that arrives
complete but damaged is rejected instead of decoded into garbage
labels. **No pickle on the hot path**: a compute round trip is struct +
JSON header parsing plus raw buffer views. Frames are validated
structurally — wrong magic, an unknown version
(:data:`PROTOCOL_VERSION` is bumped on any incompatible change), a
truncated payload, or an unknown message type raise
:class:`~repro.exceptions.ProtocolError` instead of yielding garbage.
Failures are classified for the supervisor:
:class:`~repro.exceptions.ProtocolTruncationError` means the bytes
stopped early (peer died mid-send — safe to respawn and retry), while
:class:`~repro.exceptions.ProtocolCorruptionError` means a complete
frame failed validation (bad magic, unparseable meta, trailing bytes,
CRC mismatch — the stream itself can no longer be trusted).

Helpers at the bottom adapt the codec to the two byte streams used
today: ``send_message``/``recv_message`` for sockets (length-prefixed
frames over ``sendall``/``recv``) and ``encode_frame``/``decode_frame``
for ``multiprocessing`` pipes (``send_bytes``/``recv_bytes`` already
preserve frame boundaries, so the length prefix is omitted).
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field, fields, replace
from typing import ClassVar

import numpy as np

from repro.exceptions import (
    ProtocolCorruptionError,
    ProtocolError,
    ProtocolTruncationError,
)

__all__ = [
    "PROTOCOL_VERSION",
    "Message",
    "SpecRequest",
    "FanQuery",
    "SubQuery",
    "ComputeBatch",
    "EpochDelta",
    "Republish",
    "Shutdown",
    "HealthCheck",
    "ReadyReply",
    "SubResult",
    "TraceEnvelope",
    "ComputeReply",
    "AckReply",
    "StaleReply",
    "ErrorReply",
    "ByeReply",
    "HealthReply",
    "encode_frame",
    "decode_frame",
    "send_message",
    "recv_frame",
    "recv_message",
]

#: Speak-this-or-nothing protocol revision. Bump on any change that an
#: older peer could misparse (field reorder, dtype change, new required
#: field); purely additive optional meta keys do not need a bump.
#: v2 appended a body CRC32 to the header and added the
#: :class:`HealthCheck`/:class:`HealthReply` pair.
PROTOCOL_VERSION = 2

_MAGIC = b"DHLP"
_HEAD = struct.Struct("<4sHHII")  # magic, version, msg_type, meta_len, crc32
_LEN = struct.Struct("<I")
#: Frames larger than this are rejected before allocation — a corrupted
#: length prefix must not trigger a multi-gigabyte read.
MAX_FRAME_BYTES = 1 << 31


# ---------------------------------------------------------------------------
# codec core
# ---------------------------------------------------------------------------

def _put(buffers: list[np.ndarray], array, dtype) -> int | None:
    """Append *array* to the frame's buffer table; returns its index."""
    if array is None:
        return None
    arr = np.ascontiguousarray(array, dtype=dtype)
    buffers.append(arr)
    return len(buffers) - 1


def _take(buffers: list[np.ndarray], index) -> np.ndarray | None:
    if index is None:
        return None
    try:
        return buffers[index]
    except (IndexError, TypeError) as exc:
        raise ProtocolError(f"bad buffer reference {index!r}") from exc


_MESSAGE_TYPES: dict[int, type] = {}


def _register(msg_type: int):
    def install(cls):
        if msg_type in _MESSAGE_TYPES:  # pragma: no cover - author error
            raise ValueError(f"duplicate message type {msg_type}")
        cls.TYPE = msg_type
        _MESSAGE_TYPES[msg_type] = cls
        return cls

    return install


class Message:
    """Base of every top-level protocol message.

    Subclasses implement ``_pack`` (meta dict + appended buffers) and
    ``_unpack`` (the inverse); :func:`encode_frame` / :func:`decode_frame`
    handle framing, versioning, and validation around them.
    """

    TYPE: ClassVar[int]

    def _pack(self, buffers: list[np.ndarray]) -> dict:
        raise NotImplementedError

    @classmethod
    def _unpack(cls, meta: dict, buffers: list[np.ndarray]) -> "Message":
        raise NotImplementedError


def encode_frame(message: Message) -> bytes:
    """Serialise one message to a self-describing binary frame."""
    buffers: list[np.ndarray] = []
    meta = message._pack(buffers)
    meta["__buffers__"] = [
        [arr.dtype.str, list(arr.shape)] for arr in buffers
    ]
    meta_bytes = json.dumps(meta, separators=(",", ":")).encode("utf-8")
    crc = zlib.crc32(meta_bytes)
    raw = [arr.tobytes() for arr in buffers]
    for chunk in raw:
        crc = zlib.crc32(chunk, crc)
    head = _HEAD.pack(
        _MAGIC, PROTOCOL_VERSION, message.TYPE, len(meta_bytes), crc
    )
    return b"".join([head, meta_bytes, *raw])


def decode_frame(data: bytes) -> Message:
    """Parse one frame back into its message; validates structurally.

    Bounds failures (the bytes stop before the header, meta, or a
    declared buffer ends) raise :class:`ProtocolTruncationError`; a
    structurally complete frame that fails validation (bad magic,
    unparseable meta, trailing bytes, CRC mismatch) raises
    :class:`ProtocolCorruptionError`. Version and unknown-type
    mismatches stay plain :class:`ProtocolError` — the frame is fine,
    the peers just disagree on the dialect.
    """
    if len(data) < _HEAD.size:
        raise ProtocolTruncationError(
            f"truncated frame: {len(data)} bytes is shorter than the "
            f"{_HEAD.size}-byte header"
        )
    magic, version, msg_type, meta_len, crc = _HEAD.unpack_from(data)
    if magic != _MAGIC:
        raise ProtocolCorruptionError(
            f"bad frame magic {magic!r} (expected {_MAGIC!r})"
        )
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: peer speaks {version}, "
            f"this build speaks {PROTOCOL_VERSION}"
        )
    cls = _MESSAGE_TYPES.get(msg_type)
    if cls is None:
        raise ProtocolError(f"unknown message type {msg_type}")
    offset = _HEAD.size
    if offset + meta_len > len(data):
        raise ProtocolTruncationError(
            f"truncated frame: meta wants {meta_len} bytes, "
            f"{len(data) - offset} remain"
        )
    try:
        meta = json.loads(data[offset : offset + meta_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolCorruptionError(f"unparseable frame meta: {exc}") from exc
    offset += meta_len
    buffers: list[np.ndarray] = []
    for dtype_str, shape in meta.get("__buffers__", ()):
        dtype = np.dtype(dtype_str)
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        nbytes = dtype.itemsize * count
        if offset + nbytes > len(data):
            raise ProtocolTruncationError(
                f"truncated frame: buffer wants {nbytes} bytes, "
                f"{len(data) - offset} remain"
            )
        arr = np.frombuffer(data, dtype=dtype, count=count, offset=offset)
        buffers.append(arr.reshape(shape))
        offset += nbytes
    if offset != len(data):
        raise ProtocolCorruptionError(
            f"oversized frame: {len(data) - offset} trailing bytes"
        )
    # CRC after the structural walk: a frame that stopped early is
    # reported as truncation above, so a CRC failure here means every
    # byte arrived and some of them are wrong.
    actual = zlib.crc32(data[_HEAD.size :])
    if actual != crc:
        raise ProtocolCorruptionError(
            f"frame body CRC mismatch: header says {crc:#010x}, "
            f"body hashes to {actual:#010x}"
        )
    try:
        return cls._unpack(meta, buffers)
    except ProtocolError:
        raise
    except Exception as exc:
        raise ProtocolError(
            f"malformed {cls.__name__} frame: {type(exc).__name__}: {exc}"
        ) from exc


# ---------------------------------------------------------------------------
# nested wire records (not top-level frames)
# ---------------------------------------------------------------------------

@dataclass
class FanQuery:
    """Boundary fan request: shard distances from each vertex in
    ``vertices`` (shard-local ids) to the worker's boundary set."""

    vertices: np.ndarray

    def _pack(self, buffers) -> dict:
        return {"v": _put(buffers, self.vertices, np.int64)}

    @classmethod
    def _unpack(cls, meta, buffers) -> "FanQuery":
        return cls(vertices=_take(buffers, meta["v"]))


@dataclass
class SubQuery:
    """One region-pair group's shard-local work.

    ``s``/``t`` (parallel local-id arrays) request intra-shard batch
    distances; ``fan_src``/``fan_dst`` request boundary fans. ``block``
    is the (tiny, overlay-epoch-stable) boundary-to-boundary overlay
    matrix: when present the worker folds the boundary route itself via
    min-plus and ships back one final array. ``block_cached`` elides the
    matrix when the target worker already holds the ``block_epoch``
    revision — re-shipping is always safe (failover targets a sibling
    that may hold nothing), eliding just saves bytes.
    """

    s: np.ndarray | None = None
    t: np.ndarray | None = None
    fan_src: FanQuery | None = None
    fan_dst: FanQuery | None = None
    block: np.ndarray | None = None
    block_cached: bool = False
    block_epoch: int = -1

    @property
    def wants_block(self) -> bool:
        return self.block is not None or self.block_cached

    def _pack(self, buffers) -> dict:
        return {
            "s": _put(buffers, self.s, np.int64),
            "t": _put(buffers, self.t, np.int64),
            "fs": self.fan_src._pack(buffers) if self.fan_src else None,
            "fd": self.fan_dst._pack(buffers) if self.fan_dst else None,
            "b": _put(buffers, self.block, np.float64),
            "bc": bool(self.block_cached),
            "be": int(self.block_epoch),
        }

    @classmethod
    def _unpack(cls, meta, buffers) -> "SubQuery":
        return cls(
            s=_take(buffers, meta["s"]),
            t=_take(buffers, meta["t"]),
            fan_src=FanQuery._unpack(meta["fs"], buffers) if meta["fs"] else None,
            fan_dst=FanQuery._unpack(meta["fd"], buffers) if meta["fd"] else None,
            block=_take(buffers, meta["b"]),
            block_cached=bool(meta["bc"]),
            block_epoch=int(meta["be"]),
        )

    def without_block(self) -> "SubQuery":
        """The byte-thrifty form: same work, block elided as held."""
        return replace(self, block=None, block_cached=True)


@dataclass
class SubResult:
    """One :class:`SubQuery`'s answer.

    ``final`` is the finished distance array (intra subs, or intra
    folded with the boundary route); fans come back deduplicated as
    ``(unique_matrix, inverse)`` so pipe/socket bytes scale with unique
    endpoints, not raw pair count.
    """

    final: np.ndarray | None = None
    ds: np.ndarray | None = None
    ds_inverse: np.ndarray | None = None
    dt: np.ndarray | None = None
    dt_inverse: np.ndarray | None = None

    def _pack(self, buffers) -> dict:
        return {
            "f": _put(buffers, self.final, np.float64),
            "ds": _put(buffers, self.ds, np.float64),
            "dsi": _put(buffers, self.ds_inverse, np.int64),
            "dt": _put(buffers, self.dt, np.float64),
            "dti": _put(buffers, self.dt_inverse, np.int64),
        }

    @classmethod
    def _unpack(cls, meta, buffers) -> "SubResult":
        return cls(
            final=_take(buffers, meta["f"]),
            ds=_take(buffers, meta["ds"]),
            ds_inverse=_take(buffers, meta["dsi"]),
            dt=_take(buffers, meta["dt"]),
            dt_inverse=_take(buffers, meta["dti"]),
        )


@dataclass
class TraceEnvelope:
    """A worker-side span subtree in plain-dict form, ready to graft
    under the parent's round-trip span (JSON-safe by construction —
    :meth:`repro.observability.tracing.Span.to_dict`)."""

    spans: dict

    def _pack(self, buffers) -> dict:
        return {"spans": self.spans}

    @classmethod
    def _unpack(cls, meta, buffers) -> "TraceEnvelope":
        return cls(spans=meta["spans"])


# ---------------------------------------------------------------------------
# requests
# ---------------------------------------------------------------------------

@_register(1)
@dataclass
class SpecRequest(Message):
    """Startup handshake: the shard's structure and its label buffers.

    ``payload`` is the pickled shard structure (graph + hierarchies,
    labels elided) — the one permitted pickle, shipped exactly once per
    worker at startup. Label buffers arrive either by shared-memory
    segment name (``shm_values``/``shm_offsets`` + lengths, the local
    transport) or inline (``values``/``offsets``, the socket transport,
    where the worker keeps a private writable copy that later
    :class:`EpochDelta` messages splice into).
    """

    payload: bytes
    epoch: int = 0
    shm_values: str | None = None
    shm_offsets: str | None = None
    values_len: int = 0
    offsets_len: int = 0
    values: np.ndarray | None = None
    offsets: np.ndarray | None = None

    def _pack(self, buffers) -> dict:
        return {
            "p": _put(buffers, np.frombuffer(self.payload, dtype=np.uint8), np.uint8),
            "e": int(self.epoch),
            "sv": self.shm_values,
            "so": self.shm_offsets,
            "vl": int(self.values_len),
            "ol": int(self.offsets_len),
            "v": _put(buffers, self.values, np.float64),
            "o": _put(buffers, self.offsets, np.int64),
        }

    @classmethod
    def _unpack(cls, meta, buffers) -> "SpecRequest":
        return cls(
            payload=_take(buffers, meta["p"]).tobytes(),
            epoch=int(meta["e"]),
            shm_values=meta["sv"],
            shm_offsets=meta["so"],
            values_len=int(meta["vl"]),
            offsets_len=int(meta["ol"]),
            values=_take(buffers, meta["v"]),
            offsets=_take(buffers, meta["o"]),
        )


@_register(2)
@dataclass
class ComputeBatch(Message):
    """One batch's worth of shard-local work at a stamped epoch.

    All of one worker's sub-batches travel in one message, so a batch
    costs one round trip per worker regardless of how many region-pair
    groups it split into. A worker holding a different epoch must answer
    :class:`StaleReply` without touching its buffers.
    """

    epoch: int
    subs: list[SubQuery] = field(default_factory=list)
    want_trace: bool = False

    def _pack(self, buffers) -> dict:
        return {
            "e": int(self.epoch),
            "subs": [sub._pack(buffers) for sub in self.subs],
            "wt": bool(self.want_trace),
        }

    @classmethod
    def _unpack(cls, meta, buffers) -> "ComputeBatch":
        return cls(
            epoch=int(meta["e"]),
            subs=[SubQuery._unpack(m, buffers) for m in meta["subs"]],
            want_trace=bool(meta["wt"]),
        )


@_register(3)
@dataclass
class EpochDelta(Message):
    """Adopt *epoch*; optionally splice the changed label slots first.

    With ``vertices is None`` the values already reached the worker out
    of band (the parent wrote them into the shared-memory segment in
    place) and only the epoch cut-over is explicit. With ``vertices``
    set, ``payload`` concatenates the new label arrays of those vertices
    in order; the worker slices it apart with its own offsets — the
    socket transport's delta sync, same consistency contract.
    """

    epoch: int
    vertices: np.ndarray | None = None
    payload: np.ndarray | None = None

    def _pack(self, buffers) -> dict:
        return {
            "e": int(self.epoch),
            "v": _put(buffers, self.vertices, np.int64),
            "p": _put(buffers, self.payload, np.float64),
        }

    @classmethod
    def _unpack(cls, meta, buffers) -> "EpochDelta":
        return cls(
            epoch=int(meta["e"]),
            vertices=_take(buffers, meta["v"]),
            payload=_take(buffers, meta["p"]),
        )


@_register(4)
@dataclass
class Republish(Message):
    """The label layout changed: rebind onto fresh buffers, adopt *epoch*.

    Shared-memory transport names fresh segments; socket transport ships
    the packed buffers inline.
    """

    epoch: int
    shm_values: str | None = None
    shm_offsets: str | None = None
    values_len: int = 0
    offsets_len: int = 0
    values: np.ndarray | None = None
    offsets: np.ndarray | None = None

    def _pack(self, buffers) -> dict:
        return {
            "e": int(self.epoch),
            "sv": self.shm_values,
            "so": self.shm_offsets,
            "vl": int(self.values_len),
            "ol": int(self.offsets_len),
            "v": _put(buffers, self.values, np.float64),
            "o": _put(buffers, self.offsets, np.int64),
        }

    @classmethod
    def _unpack(cls, meta, buffers) -> "Republish":
        return cls(
            epoch=int(meta["e"]),
            shm_values=meta["sv"],
            shm_offsets=meta["so"],
            values_len=int(meta["vl"]),
            offsets_len=int(meta["ol"]),
            values=_take(buffers, meta["v"]),
            offsets=_take(buffers, meta["o"]),
        )


@_register(5)
@dataclass
class Shutdown(Message):
    """Orderly teardown; the worker answers :class:`ByeReply` and exits."""

    def _pack(self, buffers) -> dict:
        return {}

    @classmethod
    def _unpack(cls, meta, buffers) -> "Shutdown":
        return cls()


@_register(6)
@dataclass
class HealthCheck(Message):
    """Liveness probe: the worker must echo ``nonce`` in a
    :class:`HealthReply` without touching its label buffers. The nonce
    lets the supervisor pair probes with answers across reconnects."""

    nonce: int = 0

    def _pack(self, buffers) -> dict:
        return {"n": int(self.nonce)}

    @classmethod
    def _unpack(cls, meta, buffers) -> "HealthCheck":
        return cls(nonce=int(meta["n"]))


# ---------------------------------------------------------------------------
# replies
# ---------------------------------------------------------------------------

@_register(16)
@dataclass
class ReadyReply(Message):
    """Handshake complete: the worker serves ``num_vertices`` at *epoch*."""

    num_vertices: int
    epoch: int = 0

    def _pack(self, buffers) -> dict:
        return {"n": int(self.num_vertices), "e": int(self.epoch)}

    @classmethod
    def _unpack(cls, meta, buffers) -> "ReadyReply":
        return cls(num_vertices=int(meta["n"]), epoch=int(meta["e"]))


@_register(17)
@dataclass
class ComputeReply(Message):
    """Per-sub answers, in :class:`ComputeBatch` order, plus optional
    worker-side spans when the batch asked for a trace."""

    results: list[SubResult] = field(default_factory=list)
    trace: TraceEnvelope | None = None

    def _pack(self, buffers) -> dict:
        return {
            "r": [result._pack(buffers) for result in self.results],
            "t": self.trace._pack(buffers) if self.trace else None,
        }

    @classmethod
    def _unpack(cls, meta, buffers) -> "ComputeReply":
        return cls(
            results=[SubResult._unpack(m, buffers) for m in meta["r"]],
            trace=TraceEnvelope._unpack(meta["t"], buffers) if meta["t"] else None,
        )


@_register(18)
@dataclass
class AckReply(Message):
    """Generic success acknowledgement (epoch adopt, republish rebind)."""

    def _pack(self, buffers) -> dict:
        return {}

    @classmethod
    def _unpack(cls, meta, buffers) -> "AckReply":
        return cls()


@_register(19)
@dataclass
class StaleReply(Message):
    """Epoch refusal: the worker holds ``held``, the batch was stamped
    ``stamped``. The buffers were not touched — the consistency contract
    that makes replica failover and rolling label updates safe."""

    held: int
    stamped: int

    def _pack(self, buffers) -> dict:
        return {"h": int(self.held), "s": int(self.stamped)}

    @classmethod
    def _unpack(cls, meta, buffers) -> "StaleReply":
        return cls(held=int(meta["h"]), stamped=int(meta["s"]))


@_register(20)
@dataclass
class ErrorReply(Message):
    """The worker hit an exception; ``message`` is its rendered form."""

    message: str

    def _pack(self, buffers) -> dict:
        return {"m": str(self.message)}

    @classmethod
    def _unpack(cls, meta, buffers) -> "ErrorReply":
        return cls(message=str(meta["m"]))


@_register(21)
@dataclass
class ByeReply(Message):
    """Shutdown acknowledged; the worker exits after sending this."""

    def _pack(self, buffers) -> dict:
        return {}

    @classmethod
    def _unpack(cls, meta, buffers) -> "ByeReply":
        return cls()


@_register(22)
@dataclass
class HealthReply(Message):
    """Answer to :class:`HealthCheck`: the echoed ``nonce``, the label
    epoch the worker currently holds, and how many compute batches it
    has served since startup (a cheap liveness-progress signal)."""

    nonce: int = 0
    epoch: int = 0
    served: int = 0

    def _pack(self, buffers) -> dict:
        return {
            "n": int(self.nonce),
            "e": int(self.epoch),
            "s": int(self.served),
        }

    @classmethod
    def _unpack(cls, meta, buffers) -> "HealthReply":
        return cls(
            nonce=int(meta["n"]),
            epoch=int(meta["e"]),
            served=int(meta["s"]),
        )


# ---------------------------------------------------------------------------
# stream adapters
# ---------------------------------------------------------------------------

def send_message(sock, message: Message) -> int:
    """Write one length-prefixed frame to a socket; returns bytes sent."""
    frame = encode_frame(message)
    data = _LEN.pack(len(frame)) + frame
    sock.sendall(data)
    return len(data)


def _recv_exact(sock, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ProtocolTruncationError(
                f"truncated frame: peer closed with {remaining} of {n} "
                "bytes outstanding"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock) -> bytes:
    """Read one length-prefixed raw frame from a socket (undecoded)."""
    (length,) = _LEN.unpack(_recv_exact(sock, _LEN.size))
    if length > MAX_FRAME_BYTES:
        raise ProtocolCorruptionError(
            f"frame length {length} exceeds {MAX_FRAME_BYTES}"
        )
    return _recv_exact(sock, length)


def recv_message(sock) -> Message:
    """Read one length-prefixed frame from a socket and decode it."""
    return decode_frame(recv_frame(sock))


def message_fields(message: Message) -> dict:
    """Dataclass fields as a dict (debug/repr helper; not wire format)."""
    return {f.name: getattr(message, f.name) for f in fields(message)}
