"""Epoch-guarded LRU cache for distance query results.

Every cached entry is stamped with the index maintenance epoch it was
computed at. Invalidation has two modes:

* **global** (:meth:`EpochLRUCache.invalidate_all`) — O(1): a watermark
  is raised to the new epoch and stale entries are dropped lazily on
  their next lookup;
* **fine-grained** (:meth:`EpochLRUCache.evict_vertices`) — only entries
  with an endpoint (or cached hub) in the affected-vertex set are
  removed. A distance ``d(s, t)`` is a pure function of the two label
  arrays ``L_s`` and ``L_t``, so entries whose endpoints kept their
  labels stay exact across the update — this is what lets a serving
  cache survive localised traffic updates with its hit rate intact.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable

__all__ = ["CacheStats", "EpochLRUCache"]

PairKey = tuple[int, int]
# (distance, hub vertex, epoch stamped at insertion)
CacheEntry = tuple[float, int, int]


@dataclass(frozen=True)
class CacheStats:
    hits: int
    misses: int
    size: int
    capacity: int
    lru_evictions: int
    invalidated: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __str__(self) -> str:
        return (
            f"{self.size}/{self.capacity} entries, "
            f"hit rate {self.hit_rate:.1%} "
            f"({self.hits} hits / {self.misses} misses), "
            f"{self.lru_evictions} LRU evictions, "
            f"{self.invalidated} invalidated"
        )


class EpochLRUCache:
    """LRU map from (undirected) vertex pairs to distance results."""

    __slots__ = (
        "_data",
        "capacity",
        "_watermark",
        "_hits",
        "_misses",
        "_lru_evictions",
        "_invalidated",
    )

    def __init__(self, capacity: int = 65_536):
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self._data: OrderedDict[PairKey, CacheEntry] = OrderedDict()
        self.capacity = capacity
        self._watermark = 0
        self._hits = 0
        self._misses = 0
        self._lru_evictions = 0
        self._invalidated = 0

    # -- lookups --------------------------------------------------------
    def get(self, key: PairKey) -> CacheEntry | None:
        entry = self._data.get(key)
        if entry is None:
            self._misses += 1
            return None
        if entry[2] < self._watermark:
            # Stale under the global watermark: drop lazily.
            del self._data[key]
            self._invalidated += 1
            self._misses += 1
            return None
        self._data.move_to_end(key)
        self._hits += 1
        return entry

    def put(self, key: PairKey, distance: float, hub: int, epoch: int) -> None:
        data = self._data
        if key in data:
            data.move_to_end(key)
        data[key] = (distance, hub, epoch)
        while len(data) > self.capacity:
            data.popitem(last=False)
            self._lru_evictions += 1

    # -- invalidation ---------------------------------------------------
    def invalidate_all(self, epoch: int) -> None:
        """Mark every entry older than *epoch* stale (lazy, O(1))."""
        if epoch > self._watermark:
            self._watermark = epoch

    def evict_vertices(self, affected: Iterable[int]) -> int:
        """Remove entries touching *affected* vertices; returns the count.

        An entry is removed when either endpoint or its cached hub lies
        in the set. The endpoint test alone is sufficient for
        correctness; the hub test additionally drops entries whose
        witnessing shortcut moved, keeping the policy aligned with
        ``MaintenanceStats.affected_shortcuts``.
        """
        affected = set(affected)
        if not affected:
            return 0
        doomed = [
            key
            for key, (_, hub, _) in self._data.items()
            if key[0] in affected or key[1] in affected or hub in affected
        ]
        for key in doomed:
            del self._data[key]
        self._invalidated += len(doomed)
        return len(doomed)

    def clear(self) -> None:
        self._invalidated += len(self._data)
        self._data.clear()

    # -- introspection --------------------------------------------------
    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: PairKey) -> bool:
        entry = self._data.get(key)
        return entry is not None and entry[2] >= self._watermark

    @property
    def watermark(self) -> int:
        return self._watermark

    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            size=len(self._data),
            capacity=self.capacity,
            lru_evictions=self._lru_evictions,
            invalidated=self._invalidated,
        )
