"""Vertex-contraction engine for weight-independent shortcut graphs.

This is the DCH variant of contraction hierarchies [11, 17] used by both
the DHL update hierarchy and the DCH/IncH2H baselines: contracting a
vertex adds a shortcut between *every* pair of its not-yet-contracted
neighbours (no witness search), so the shortcut *structure* depends only
on the contraction order, never on edge weights — the structural
stability property (U1) that makes dynamic maintenance cheap.

Shortcut weights satisfy the minimum-weight property (Property 3.1):

    w(u, v) = min( w_G(u, v), min_x w(x, u) + w(x, v) )

over all common "down" neighbours ``x`` (contracted before both).

Storage is a flat CSR shortcut store (:mod:`repro.hierarchy.csr`): the
rank-sorted ``up_indptr``/``up_indices``/``up_weights`` triple plus the
reverse/down CSR, built once at construction. ``up``/``down``/
``down_sets``/``wup`` remain available as thin views over the same
arrays for the scalar reference algorithms and the baselines.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.graph.graph import Graph
from repro.hierarchy.csr import CSRShortcutMixin, build_shortcut_csr
from repro.utils.priority_queue import LazyHeap

__all__ = ["ContractionResult", "contract_in_order", "min_degree_order"]


class ContractionResult(CSRShortcutMixin):
    """Shortcut graph produced by contraction.

    Attributes
    ----------
    graph:
        The underlying road network (weights are kept current by the
        maintenance algorithms; the shortcut structure never changes).
    order:
        Vertices in contraction order (earliest first).
    rank:
        ``rank[v]`` = position of ``v`` in ``order``. Up-neighbours have
        larger rank (contracted later).
    rank_key:
        ``rank`` as float64 — pre-boxed priority keys for the reference
        path's heap pushes.
    csr:
        The structural :class:`~repro.hierarchy.csr.ShortcutCSR`
        (``up_indptr``/``up_indices`` + down CSR + slot lookup tables).
    up_weights:
        Flat float64 array of current shortcut weights, one per CSR
        slot — the single source of truth; the ``wup`` mapping view and
        the array kernels both read and write it.
    """

    __slots__ = (
        "graph",
        "order",
        "rank",
        "rank_key",
        "csr",
        "up_weights",
        "_wup",
        "_up_rows",
        "_down_rows",
        "_down_sets",
        "_direct_cache",
    )

    def __init__(
        self,
        graph: Graph,
        order: np.ndarray,
        rank: np.ndarray,
        up: list[list[int]],
        wup: list[dict[int, float]],
    ):
        self.graph = graph
        self.order = np.asarray(order, dtype=np.int64)
        self.rank = np.asarray(rank, dtype=np.int64)
        self.rank_key = self.rank.astype(np.float64)
        self.csr, self.up_weights = build_shortcut_csr(up, self.rank, wup)
        self._reset_csr_caches()

    # -- pickling ---------------------------------------------------------
    def __getstate__(self):
        """Pickle the flat store only; lazy views are rebuilt on demand.

        The cached row views are numpy *views* into the CSR arrays —
        pickling them would materialise detached copies and route
        maintenance writes into dead buffers after unpickling (the
        parallel shard build ships hierarchies across processes).
        """
        return {
            "graph": self.graph,
            "order": self.order,
            "rank": self.rank,
            "csr": self.csr,
            "up_weights": self.up_weights,
        }

    def __setstate__(self, state) -> None:
        self.graph = state["graph"]
        self.order = state["order"]
        self.rank = state["rank"]
        self.rank_key = self.rank.astype(np.float64)
        self.csr = state["csr"]
        self.up_weights = state["up_weights"]
        self._reset_csr_caches()

    # -- weight access --------------------------------------------------
    def shortcut_key(self, a: int, b: int) -> tuple[int, int]:
        """Normalise an endpoint pair to (earlier, later) contraction order."""
        return (a, b) if self.rank[a] < self.rank[b] else (b, a)

    def has_shortcut(self, a: int, b: int) -> bool:
        lo, hi = self.shortcut_key(a, b)
        return self.csr.find_slot(lo, hi) >= 0

    def weight(self, a: int, b: int) -> float:
        """Current weight of shortcut ``(a, b)``."""
        lo, hi = self.shortcut_key(a, b)
        return float(self.up_weights[self.csr.slot_of(lo, hi)])

    def set_weight(self, a: int, b: int, w: float) -> float:
        """Set shortcut weight; returns the previous value."""
        lo, hi = self.shortcut_key(a, b)
        slot = self.csr.slot_of(lo, hi)
        old = float(self.up_weights[slot])
        self.up_weights[slot] = w
        return old

    @property
    def num_shortcuts(self) -> int:
        return self.csr.num_slots

    def memory_bytes(self) -> int:
        """Rough footprint of the CSR shortcut store."""
        csr = self.csr
        return (
            self.up_weights.nbytes
            + csr.indices.nbytes
            + csr.indptr.nbytes
            + csr.ranks.nbytes
            + csr.owners.nbytes
            + csr.slot_keys.nbytes
            + csr.down_indices.nbytes
            + csr.down_indptr.nbytes
            + csr.down_slots.nbytes
            + self.order.nbytes
            + self.rank.nbytes
        )

    # -- invariant checks (used heavily in tests) ------------------------
    def verify_minimum_weight_property(self, tolerance: float = 0.0) -> None:
        """Assert Property 3.1 for every shortcut; raises AssertionError."""
        csr = self.csr
        for v in range(csr.n):
            start, end = csr.row_bounds(v)
            for slot in range(start, end):
                u = int(csr.indices[slot])
                expected = self._recomputed_weight(v, u)
                actual = float(self.up_weights[slot])
                ok = (
                    actual == expected
                    or (math.isinf(actual) and math.isinf(expected))
                    or abs(actual - expected) <= tolerance
                )
                assert ok, (
                    f"shortcut ({v}, {u}): stored {actual}, recomputed {expected}"
                )

    def _recomputed_weight(self, v: int, u: int) -> float:
        graph = self.graph
        best = graph.weight(v, u) if graph.has_edge(v, u) else math.inf
        slots_v, slots_u = self.csr.common_down(v, u)
        if len(slots_v):
            triangles = self.up_weights[slots_v] + self.up_weights[slots_u]
            best = min(best, float(triangles.min()))
        return best


def contract_in_order(graph: Graph, order: Sequence[int]) -> ContractionResult:
    """Contract *graph* following *order* (earliest contracted first).

    Implements the weight-independent DCH-variant contraction: when a
    vertex is contracted every pair of its remaining neighbours receives a
    shortcut whose weight is min-combined with any existing one.
    """
    n = graph.num_vertices
    order = np.asarray(order, dtype=np.int64)
    if len(order) != n or len(set(order.tolist())) != n:
        raise ValueError("order must be a permutation of all vertices")
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n)

    # Working adjacency over uncontracted vertices, seeded with G's edges.
    work: list[dict[int, float]] = [dict(graph.neighbors(v)) for v in range(n)]
    up: list[list[int]] = [[] for _ in range(n)]
    wup: list[dict[int, float]] = [{} for _ in range(n)]

    for v in order.tolist():
        nbrs = work[v]
        items = list(nbrs.items())
        # Record N+(v) sorted by contraction rank (useful determinism).
        items.sort(key=lambda kv: rank[kv[0]])
        up[v] = [u for u, _ in items]
        wup[v] = {u: w for u, w in items}
        # Add all-pairs shortcuts among the remaining neighbours.
        for i in range(len(items)):
            u, wu = items[i]
            work_u = work[u]
            del work_u[v]
            for j in range(i + 1, len(items)):
                x, wx = items[j]
                candidate = wu + wx
                current = work_u.get(x)
                if current is None or candidate < current:
                    work_u[x] = candidate
                    work[x][u] = candidate
        nbrs.clear()
    return ContractionResult(graph, order, rank, up, wup)


def min_degree_order(graph: Graph) -> list[int]:
    """Contraction order by the minimum-degree heuristic [4].

    The degree used is the *current* degree in the partially contracted
    graph (original edges plus already-added shortcuts), the ordering DCH
    and IncH2H use. Simulates contraction structurally (weights ignored).
    """
    n = graph.num_vertices
    work: list[set[int]] = [set(graph.neighbors(v)) for v in range(n)]
    heap: LazyHeap[int] = LazyHeap()
    for v in range(n):
        heap.push(v, float(len(work[v])))
    contracted = bytearray(n)
    order: list[int] = []
    while len(order) < n:
        v, key = heap.pop()
        if contracted[v]:
            continue
        if key != float(len(work[v])):
            heap.push(v, float(len(work[v])))
            continue
        contracted[v] = 1
        order.append(v)
        nbrs = [u for u in work[v] if not contracted[u]]
        for i, u in enumerate(nbrs):
            work[u].discard(v)
            for x in nbrs[i + 1 :]:
                if x not in work[u]:
                    work[u].add(x)
                    work[x].add(u)
        for u in nbrs:
            heap.push(u, float(len(work[u])))
        work[v].clear()
    return order
