"""Flat CSR storage for the weight-independent shortcut hierarchy.

The shortcut *structure* of a contraction hierarchy never changes under
weight updates (structural stability, U1), so it is stored once as a
compressed-sparse-row triple:

* ``indptr``/``indices`` — vertex ``v``'s up-neighbours (shortcut
  partners contracted later) live at
  ``indices[indptr[v] : indptr[v + 1]]``, sorted by contraction rank;
* a parallel **weights** array (owned by the caller — one for the
  undirected hierarchy, two for the directed index) holds the current
  shortcut weights, one float64 per slot.

Two derived tables make the maintenance kernels array-native:

* ``slot_keys`` — the globally sorted key ``owner * n + rank[indices]``
  per slot, so a batch of ``(lo, hi)`` pairs resolves to weight slots
  with one :func:`numpy.searchsorted` (no per-pair dict probing);
* the reverse/down CSR (``down_indptr``/``down_indices``/``down_slots``)
  — vertex ``v``'s down-neighbours sorted by vertex id, each carrying
  the up-slot of its shortcut, so Property-3.1 recomputation runs as a
  sorted intersection over two down rows and weight gathers.

:class:`WeightRows` wraps a structure + weights pair in the historical
``wup[v][u]`` mapping interface so the scalar reference algorithms and
the baselines keep working against the same single source of truth.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

__all__ = [
    "ShortcutCSR",
    "WeightRows",
    "WeightRow",
    "build_shortcut_csr",
    "extend_slots",
    "compact_slots",
]


class ShortcutCSR:
    """Structure-only CSR of a shortcut hierarchy (weights live outside).

    Attributes
    ----------
    n:
        Vertex count.
    indptr / indices:
        Up-adjacency rows, each sorted by contraction rank.
    ranks:
        ``rank[indices]`` — precomputed for in-row binary searches.
    owners:
        Row owner per slot (``repeat(arange(n), row degrees)``).
    slot_keys:
        ``owners * n + ranks`` — globally ascending, the searchsorted
        key space of :meth:`slots_of`.
    down_indptr / down_indices / down_slots:
        Reverse adjacency: ``down_indices[down_indptr[v]:down_indptr[v+1]]``
        are the vertices contracted before ``v`` that share a shortcut
        with it (ascending vertex id) and ``down_slots`` holds each
        shortcut's up-slot index.
    """

    __slots__ = (
        "n",
        "rank",
        "indptr",
        "indices",
        "ranks",
        "owners",
        "slot_keys",
        "down_indptr",
        "down_indices",
        "down_slots",
    )

    def __init__(
        self,
        n: int,
        rank: np.ndarray,
        indptr: np.ndarray,
        indices: np.ndarray,
    ):
        self.n = n
        self.rank = rank
        self.indptr = indptr
        self.indices = indices
        self.ranks = rank[indices]
        counts = np.diff(indptr)
        self.owners = np.repeat(np.arange(n, dtype=np.int64), counts)
        self.slot_keys = self.owners * np.int64(n) + self.ranks
        # Reverse (down) CSR: group slots by the shallow endpoint, order
        # each group by the deep endpoint's vertex id.
        down_order = np.lexsort((self.owners, self.indices))
        self.down_indices = self.owners[down_order]
        self.down_slots = down_order.astype(np.int64)
        down_counts = np.bincount(self.indices, minlength=n)
        self.down_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(down_counts, out=self.down_indptr[1:])

    # -- pickling ---------------------------------------------------------
    def __getstate__(self):
        # Derived tables are cheap relative to pickling them; ship only
        # the defining arrays and rebuild on the far side.
        return (self.n, self.rank, self.indptr, self.indices)

    def __setstate__(self, state) -> None:
        n, rank, indptr, indices = state
        self.__init__(n, rank, indptr, indices)

    # -- basic shape ------------------------------------------------------
    @property
    def num_slots(self) -> int:
        return len(self.indices)

    def row_bounds(self, v: int) -> tuple[int, int]:
        return int(self.indptr[v]), int(self.indptr[v + 1])

    def row(self, v: int) -> np.ndarray:
        start, end = self.row_bounds(v)
        return self.indices[start:end]

    def down_row(self, v: int) -> np.ndarray:
        start, end = int(self.down_indptr[v]), int(self.down_indptr[v + 1])
        return self.down_indices[start:end]

    # -- slot resolution --------------------------------------------------
    def slot_of(self, lo: int, hi: int) -> int:
        """Weight slot of shortcut ``(lo, hi)``; raises when absent."""
        key = lo * self.n + int(self.rank[hi])
        slot = int(np.searchsorted(self.slot_keys, key))
        if slot >= len(self.slot_keys) or self.slot_keys[slot] != key:
            raise KeyError(f"no shortcut ({lo}, {hi})")
        return slot

    def find_slot(self, lo: int, hi: int) -> int:
        """Like :meth:`slot_of` but returns -1 when the pair is absent."""
        key = lo * self.n + int(self.rank[hi])
        slot = int(np.searchsorted(self.slot_keys, key))
        if slot >= len(self.slot_keys) or self.slot_keys[slot] != key:
            return -1
        return slot

    def slots_of(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`slot_of` over pair arrays (pairs must exist)."""
        keys = lo.astype(np.int64) * np.int64(self.n) + self.rank[hi]
        return np.searchsorted(self.slot_keys, keys)

    # -- Property 3.1 support ---------------------------------------------
    def common_down(self, a: int, b: int) -> tuple[np.ndarray, np.ndarray]:
        """Aligned up-slots over the common down-neighbourhood of a and b.

        Returns ``(slots_a, slots_b)``: for each shared down-neighbour
        ``x`` (a vertex contracted before both), the slots of shortcuts
        ``(x, a)`` and ``(x, b)``. Runs as a sorted intersection of the
        two down rows.
        """
        sa, ea = int(self.down_indptr[a]), int(self.down_indptr[a + 1])
        sb, eb = int(self.down_indptr[b]), int(self.down_indptr[b + 1])
        xs_a = self.down_indices[sa:ea]
        xs_b = self.down_indices[sb:eb]
        _, ia, ib = np.intersect1d(
            xs_a, xs_b, assume_unique=True, return_indices=True
        )
        return self.down_slots[sa + ia], self.down_slots[sb + ib]


def build_shortcut_csr(
    rows: Sequence[Sequence[int]],
    rank: np.ndarray,
    *weight_rows,
) -> tuple:
    """Build a :class:`ShortcutCSR` (plus flat weight arrays) from rows.

    ``rows[v]`` lists vertex ``v``'s up-neighbours in any order; each
    optional ``weight_rows`` entry is an aligned mapping-or-sequence per
    vertex (``weight_rows[k][v][u]``). Rows are re-sorted by contraction
    rank, and every returned weight array follows the same permutation.

    Returns ``(csr, w0, w1, ...)``.
    """
    n = len(rows)
    rank = np.asarray(rank, dtype=np.int64)
    counts = np.fromiter((len(r) for r in rows), dtype=np.int64, count=n)
    m = int(counts.sum())
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    indices = np.fromiter(
        (u for row in rows for u in row), dtype=np.int64, count=m
    )
    owners = np.repeat(np.arange(n, dtype=np.int64), counts)
    order = np.lexsort((rank[indices], owners))
    indices = indices[order]

    flats = []
    for wrows in weight_rows:
        flat = np.fromiter(
            (wrow[u] for row, wrow in zip(rows, wrows) for u in row),
            dtype=np.float64,
            count=m,
        )
        flats.append(flat[order])
    return (ShortcutCSR(n, rank, indptr, indices), *flats)


def extend_slots(
    csr: ShortcutCSR,
    new_lo: np.ndarray,
    new_hi: np.ndarray,
    *weight_arrays: np.ndarray,
    fill: float = np.inf,
) -> tuple:
    """Grow the store with new ``(lo, hi)`` slots (structural insertion).

    ``slot_keys`` must stay globally sorted for the searchsorted slot
    resolution, so growth is a sorted merge of the existing slots with
    the (deduplicated, previously absent) new pairs — one O(m + k)
    rebuild per *batch* of k slots, which is how the growth cost
    amortises: the insertion fast path collects a whole batch's closure
    before calling this once, mirroring how the label store batches its
    capacity doubling in :meth:`HierarchicalLabelling.extend_label`.

    Every supplied weight array is permuted alongside, with *fill*
    (default ``inf`` — "allocated but not yet relaxed") at the new
    slots. Returns ``(new_csr, [new_weights...], new_positions)`` where
    ``new_positions[i]`` is the slot of pair ``(new_lo[i], new_hi[i])``
    in the rebuilt store.
    """
    new_lo = np.asarray(new_lo, dtype=np.int64)
    new_hi = np.asarray(new_hi, dtype=np.int64)
    k = len(new_lo)
    if k == 0:
        return (csr, list(weight_arrays), np.empty(0, dtype=np.int64))
    n = csr.n
    rank = csr.rank
    new_keys = new_lo * np.int64(n) + rank[new_hi]
    if len(np.unique(new_keys)) != k:
        raise ValueError("extend_slots: duplicate pairs in batch")
    hit = np.searchsorted(csr.slot_keys, new_keys)
    hit = np.minimum(hit, max(len(csr.slot_keys) - 1, 0))
    if len(csr.slot_keys) and np.any(csr.slot_keys[hit] == new_keys):
        raise ValueError("extend_slots: pair already allocated")
    order = np.argsort(
        np.concatenate([csr.slot_keys, new_keys]), kind="stable"
    )
    indices = np.concatenate([csr.indices, new_hi])[order]
    owners = np.concatenate([csr.owners, new_lo])[order]
    counts = np.bincount(owners, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    new_csr = ShortcutCSR(n, rank, indptr, indices)
    dest = np.empty(len(order), dtype=np.int64)
    dest[order] = np.arange(len(order), dtype=np.int64)
    new_positions = dest[csr.num_slots :]
    grown = [
        np.concatenate([w, np.full(k, fill, dtype=np.float64)])[order]
        for w in weight_arrays
    ]
    return (new_csr, grown, new_positions)


def compact_slots(
    csr: ShortcutCSR, keep: np.ndarray, *weight_arrays: np.ndarray
) -> tuple:
    """Drop the slots where *keep* is False (logically dead shortcuts).

    Surviving slots keep their relative order, so rows stay rank-sorted
    and ``slot_keys`` stays globally ascending; all derived tables are
    rebuilt by the :class:`ShortcutCSR` constructor. Returns
    ``(new_csr, [new_weights...])``.
    """
    keep = np.asarray(keep, dtype=bool)
    indices = csr.indices[keep]
    owners = csr.owners[keep]
    counts = np.bincount(owners, minlength=csr.n)
    indptr = np.zeros(csr.n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    new_csr = ShortcutCSR(csr.n, csr.rank, indptr, indices)
    return (new_csr, [w[keep] for w in weight_arrays])


class WeightRow:
    """Mapping view of one vertex's shortcut weights (``wup[v]``-style).

    Reads and writes go straight to the flat weight array, so the view
    and the array kernels always agree. Keys are the up-neighbour vertex
    ids in rank order, as in the historical dict-of-dicts store.
    """

    __slots__ = ("_csr", "_weights", "_v", "_pos")

    def __init__(self, csr: ShortcutCSR, weights: np.ndarray, v: int):
        self._csr = csr
        self._weights = weights
        self._v = v
        self._pos: dict[int, int] | None = None

    def _positions(self) -> dict[int, int]:
        if self._pos is None:
            start, end = self._csr.row_bounds(self._v)
            self._pos = {
                int(u): slot
                for slot, u in zip(
                    range(start, end), self._csr.indices[start:end]
                )
            }
        return self._pos

    def __getitem__(self, u: int) -> float:
        return float(self._weights[self._positions()[int(u)]])

    def __setitem__(self, u: int, value: float) -> None:
        self._weights[self._positions()[int(u)]] = value

    def get(self, u: int, default=None):
        slot = self._positions().get(int(u))
        return default if slot is None else float(self._weights[slot])

    def __contains__(self, u: int) -> bool:
        return int(u) in self._positions()

    def __len__(self) -> int:
        start, end = self._csr.row_bounds(self._v)
        return end - start

    def __iter__(self) -> Iterator[int]:
        return (int(u) for u in self._csr.row(self._v))

    def keys(self):
        return list(self)

    def values(self):
        start, end = self._csr.row_bounds(self._v)
        return [float(w) for w in self._weights[start:end]]

    def items(self):
        start, end = self._csr.row_bounds(self._v)
        return [
            (int(u), float(w))
            for u, w in zip(
                self._csr.indices[start:end], self._weights[start:end]
            )
        ]

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        return f"WeightRow({dict(self.items())})"


class WeightRows:
    """List-of-mappings view over (structure, weights) — ``wup``-shaped."""

    __slots__ = ("_csr", "_weights", "_rows")

    def __init__(self, csr: ShortcutCSR, weights: np.ndarray):
        self._csr = csr
        self._weights = weights
        self._rows: dict[int, WeightRow] = {}

    def __getitem__(self, v: int) -> WeightRow:
        row = self._rows.get(v)
        if row is None:
            row = self._rows[v] = WeightRow(self._csr, self._weights, v)
        return row

    def __len__(self) -> int:
        return self._csr.n

    def __iter__(self) -> Iterator[WeightRow]:
        return (self[v] for v in range(self._csr.n))


class CSRShortcutMixin:
    """Compatibility surface shared by CSR-backed shortcut stores.

    Concrete classes provide ``csr`` (a :class:`ShortcutCSR`),
    ``up_weights`` (the flat weight array) and the four cache slots
    ``_wup`` / ``_up_rows`` / ``_down_rows`` / ``_down_sets``. The mixin
    exposes the historical ``up`` / ``down`` / ``down_sets`` / ``wup``
    attributes as lazy views over the flat store, so scalar reference
    code and the array kernels share one source of truth.
    """

    __slots__ = ()

    # -- raw CSR attribute aliases (the tentpole's public layout) --------
    @property
    def up_indptr(self) -> np.ndarray:
        return self.csr.indptr

    @property
    def up_indices(self) -> np.ndarray:
        return self.csr.indices

    @property
    def down_indptr(self) -> np.ndarray:
        return self.csr.down_indptr

    @property
    def down_indices(self) -> np.ndarray:
        return self.csr.down_indices

    @property
    def down_slots(self) -> np.ndarray:
        return self.csr.down_slots

    # -- historical views -------------------------------------------------
    @property
    def up(self) -> list[np.ndarray]:
        """Per-vertex up-neighbour arrays (rank-sorted views)."""
        if self._up_rows is None:
            csr = self.csr
            indptr, indices = csr.indptr, csr.indices
            self._up_rows = [
                indices[indptr[v] : indptr[v + 1]] for v in range(csr.n)
            ]
        return self._up_rows

    @property
    def down(self) -> list[np.ndarray]:
        """Per-vertex down-neighbour arrays (vertex-id-sorted views)."""
        if self._down_rows is None:
            csr = self.csr
            indptr, indices = csr.down_indptr, csr.down_indices
            self._down_rows = [
                indices[indptr[v] : indptr[v + 1]] for v in range(csr.n)
            ]
        return self._down_rows

    @property
    def down_sets(self) -> list[set[int]]:
        if self._down_sets is None:
            self._down_sets = [set(row.tolist()) for row in self.down]
        return self._down_sets

    @property
    def wup(self) -> WeightRows:
        if self._wup is None:
            self._wup = WeightRows(self.csr, self.up_weights)
        return self._wup

    def _reset_csr_caches(self) -> None:
        self._wup = None
        self._up_rows = None
        self._down_rows = None
        self._down_sets = None
        # Compiled-engine per-slot direct edge weights (lazily built and
        # version-pinned by repro.labelling.compiled.engine).
        self._direct_cache = None
