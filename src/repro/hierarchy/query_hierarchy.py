"""Query hierarchy H_Q (Definition 4.1) and the vertex partial order.

Built from a partition tree, H_Q assigns each vertex:

* ``tau(v)`` — the number of strict ancestors w.r.t. the partial order
  ``⪯_H`` (Definition 4.3); the ancestors of ``v`` form a chain whose
  rank-``i`` element has ``tau == i``, so labels can be dense arrays
  indexed by ``tau``;
* a tree node with a partition *bitstring* and *depth*, giving O(1)
  lowest-common-ancestor computations;
* per-depth cumulative vertex counts (``vend``), giving O(1) computation
  of ``|anc(s) ∩ anc(t)|`` — the number of label entries a query scans.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.exceptions import HierarchyError
from repro.graph.graph import Graph
from repro.partition.recursive import PartitionTreeNode

__all__ = ["QueryHierarchy"]


class QueryHierarchy:
    """Static query hierarchy over ``n`` vertices.

    Construct via :meth:`from_partition_tree`. All per-vertex data lives
    in numpy arrays; per-node data in Python lists indexed by node id
    (preorder).
    """

    def __init__(
        self,
        n: int,
        tau: np.ndarray,
        node_of: np.ndarray,
        node_depth: list[int],
        node_bits: list[int],
        node_vstart: list[int],
        node_vend: list[int],
        node_parent: list[int],
        node_members: list[list[int]],
        node_vend_chain: list[np.ndarray],
        tree_nodes: list[PartitionTreeNode] | None = None,
    ):
        self.n = n
        self.tau = tau
        self.node_of = node_of
        self.node_depth = node_depth
        self.node_bits = node_bits
        self.node_vstart = node_vstart
        self.node_vend = node_vend
        self.node_parent = node_parent
        self.node_members = node_members
        self.node_vend_chain = node_vend_chain
        # Partition tree nodes aligned with node ids (preorder); kept so
        # structural updates can splice repartitioned subtrees back in.
        self.tree_nodes = tree_nodes

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_partition_tree(cls, root: PartitionTreeNode, n: int) -> "QueryHierarchy":
        """Assign ranks, bitstrings and depth tables from a partition tree."""
        tau = np.full(n, -1, dtype=np.int64)
        node_of = np.full(n, -1, dtype=np.int64)
        node_depth: list[int] = []
        node_bits: list[int] = []
        node_vstart: list[int] = []
        node_vend: list[int] = []
        node_parent: list[int] = []
        node_members: list[list[int]] = []
        node_vend_chain: list[np.ndarray] = []
        tree_nodes: list[PartitionTreeNode] = []

        # Preorder walk carrying (tree node, parent id, bit value, depth).
        stack: list[tuple[PartitionTreeNode, int, int, int]] = [(root, -1, 1, 0)]
        while stack:
            tnode, parent_id, bits, depth = stack.pop()
            nid = len(node_depth)
            tree_nodes.append(tnode)
            vstart = node_vend[parent_id] if parent_id >= 0 else 0
            vend = vstart + len(tnode.vertices)
            node_depth.append(depth)
            node_bits.append(bits)
            node_vstart.append(vstart)
            node_vend.append(vend)
            node_parent.append(parent_id)
            node_members.append(list(tnode.vertices))
            if parent_id >= 0:
                chain = np.append(node_vend_chain[parent_id], vend)
            else:
                chain = np.array([vend], dtype=np.int64)
            node_vend_chain.append(chain)
            for position, v in enumerate(tnode.vertices):
                if tau[v] != -1:
                    raise HierarchyError(f"vertex {v} owned by two tree nodes")
                tau[v] = vstart + position
                node_of[v] = nid
            # Children are pushed in reverse so child 0 is processed first;
            # the bit value extends the parent's bitstring.
            for child_index in range(len(tnode.children) - 1, -1, -1):
                child = tnode.children[child_index]
                stack.append((child, nid, (bits << 1) | child_index, depth + 1))

        if (tau < 0).any():
            missing = int((tau < 0).sum())
            raise HierarchyError(f"{missing} vertices not covered by the partition tree")
        return cls(
            n,
            tau,
            node_of,
            node_depth,
            node_bits,
            node_vstart,
            node_vend,
            node_parent,
            node_members,
            node_vend_chain,
            tree_nodes,
        )

    # ------------------------------------------------------------------
    # partial order and LCA
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.node_depth)

    @property
    def height(self) -> int:
        """Maximum number of ancestors of any vertex (paper's ``h``)."""
        return int(self.tau.max()) + 1 if self.n else 0

    def lca_depth(self, s: int, t: int) -> int:
        """Tree depth of the LCA of ``l(s)`` and ``l(t)`` (O(1) bit math)."""
        ns, nt = int(self.node_of[s]), int(self.node_of[t])
        ds, dt = self.node_depth[ns], self.node_depth[nt]
        d = ds if ds < dt else dt
        vs = self.node_bits[ns] >> (ds - d)
        vt = self.node_bits[nt] >> (dt - d)
        diff = vs ^ vt
        return d if diff == 0 else d - diff.bit_length()

    def common_ancestor_count(self, s: int, t: int) -> int:
        """``|anc(s) ∩ anc(t)|`` — how many leading label entries to scan.

        The common ancestors of ``s`` and ``t`` are exactly the vertices of
        rank ``0 .. K-1`` on either ancestor chain, where ``K`` is the
        value returned here.
        """
        depth = self.lca_depth(s, t)
        vend = int(self.node_vend_chain[int(self.node_of[s])][depth])
        ts, tt = int(self.tau[s]), int(self.tau[t])
        k = min(ts, tt, vend - 1) + 1
        return k

    def precedes(self, u: int, v: int) -> bool:
        """True iff ``u ⪯_H v`` (Definition 4.3, reflexive)."""
        nu, nv = int(self.node_of[u]), int(self.node_of[v])
        if nu == nv:
            return self.tau[u] <= self.tau[v]
        du, dv = self.node_depth[nu], self.node_depth[nv]
        if du >= dv:
            return False
        return (self.node_bits[nv] >> (dv - du)) == self.node_bits[nu]

    def comparable(self, u: int, v: int) -> bool:
        return self.precedes(u, v) or self.precedes(v, u)

    def ancestors(self, v: int) -> list[int]:
        """Ancestor chain of *v* (inclusive) ordered by rank ``tau``.

        The element at index ``i`` has ``tau == i``; the last element is
        ``v`` itself. O(tau(v)) — intended for tests and maintenance
        bookkeeping, not the query hot path.
        """
        chain: list[int] = []
        nid = int(self.node_of[v])
        path = []
        while nid >= 0:
            path.append(nid)
            nid = self.node_parent[nid]
        for node in reversed(path):
            members = self.node_members[node]
            if node == self.node_of[v]:
                members = members[: int(self.tau[v]) - self.node_vstart[node] + 1]
            chain.extend(members)
        return chain

    def contraction_order(self) -> np.ndarray:
        """Vertices in decreasing ``tau`` (deepest first) for building H_U."""
        return np.argsort(-self.tau, kind="stable")

    def iter_vertices_by_tau(self) -> Iterator[int]:
        """Vertices in increasing ``tau`` (top-down), ties in id order."""
        for v in np.argsort(self.tau, kind="stable"):
            yield int(v)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate_graph(self, graph: Graph) -> None:
        """Check that every edge joins ⪯_H-comparable vertices.

        This is the separator property of Definition 4.1 restricted to
        paths of length one; it must hold for any partition tree whose
        node sets are true separators (Lemma 4.8 relies on it).
        """
        for u, v, _ in graph.edges():
            if not self.comparable(u, v):
                raise HierarchyError(
                    f"edge ({u}, {v}) joins incomparable vertices; "
                    "the partition tree is not a valid separator tree"
                )

    def memory_bytes(self) -> int:
        """Approximate memory footprint of the per-vertex/per-node tables."""
        total = self.tau.nbytes + self.node_of.nbytes
        total += sum(chain.nbytes for chain in self.node_vend_chain)
        total += 8 * (
            len(self.node_depth)
            + len(self.node_bits)
            + len(self.node_vstart)
            + len(self.node_vend)
            + len(self.node_parent)
        )
        total += 8 * sum(len(m) for m in self.node_members)
        return total
