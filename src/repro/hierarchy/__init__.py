"""The two hierarchies of the DHL framework.

* :class:`QueryHierarchy` (H_Q) — the static balanced tree from recursive
  partitioning; induces the vertex partial order, vertex ranks ``tau`` and
  O(1) common-ancestor computations used at query time (Definition 4.1).
* :class:`UpdateHierarchy` (H_U) — the weight-independent shortcut graph
  from contracting vertices in decreasing ``tau`` order (Definition 4.6),
  maintaining the minimum-weight property (Property 3.1) under updates.
* :mod:`repro.hierarchy.contraction` — the contraction engine shared by
  H_U and the DCH baseline.
"""

from repro.hierarchy.contraction import ContractionResult, contract_in_order, min_degree_order
from repro.hierarchy.query_hierarchy import QueryHierarchy
from repro.hierarchy.update_hierarchy import UpdateHierarchy

__all__ = [
    "ContractionResult",
    "contract_in_order",
    "min_degree_order",
    "QueryHierarchy",
    "UpdateHierarchy",
]
