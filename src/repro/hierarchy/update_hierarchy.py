"""Update hierarchy H_U (Definitions 4.5/4.6).

H_U is the weight-independent shortcut graph obtained by contracting
vertices in decreasing ``tau`` order (deepest first), so that every
shortcut joins two ⪯_H-comparable vertices (Lemma 4.8) and

* ``N+(v)`` (``up``) are v's shortcut partners that are *ancestors*
  (smaller ``tau``, contracted later),
* ``N-(v)`` (``down``) are descendant partners (larger ``tau``).

Structural stability (U1) holds by construction: weight updates never add
or remove shortcuts, they only change stored weights, which the dynamic
algorithms keep consistent with the minimum-weight property (3.1).

The shortcut store itself is the flat CSR layout inherited from
:class:`~repro.hierarchy.contraction.ContractionResult` — the update
hierarchy *shares* the base result's arrays (no rebuild) and adds the
``tau``/``tau_key`` rank arrays the label algorithms key their
frontiers on.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import HierarchyError
from repro.graph.graph import Graph
from repro.hierarchy.contraction import ContractionResult, contract_in_order
from repro.hierarchy.query_hierarchy import QueryHierarchy

__all__ = ["UpdateHierarchy"]


class UpdateHierarchy(ContractionResult):
    """Shortcut graph of G w.r.t. the partial order induced by H_Q.

    Inherits the CSR shortcut store from :class:`ContractionResult`;
    adds the rank array ``tau`` (int64, shared with H_Q), its float64
    twin ``tau_key`` (pre-boxed heap priorities for the reference path)
    and the link back to the query hierarchy. Note the reversed rank
    convention: ancestors have *small* ``tau`` but *large* contraction
    rank (they are contracted last).
    """

    __slots__ = ("tau", "tau_key", "hq")

    def __init__(self, base: ContractionResult, hq: QueryHierarchy):
        # Adopt the base result's storage wholesale — the CSR arrays are
        # the source of truth and must not be copied or rebuilt.
        self.graph = base.graph
        self.order = base.order
        self.rank = base.rank
        self.rank_key = base.rank_key
        self.csr = base.csr
        self.up_weights = base.up_weights
        self._reset_csr_caches()
        self.tau = np.asarray(hq.tau, dtype=np.int64)
        self.tau_key = self.tau.astype(np.float64)
        self.hq = hq

    @classmethod
    def build(cls, graph: Graph, hq: QueryHierarchy) -> "UpdateHierarchy":
        """Contract *graph* in decreasing ``tau`` order (deepest first)."""
        order = hq.contraction_order()
        base = contract_in_order(graph, order)
        return cls(base, hq)

    # -- pickling ---------------------------------------------------------
    def __getstate__(self):
        state = super().__getstate__()
        state["hq"] = self.hq
        return state

    def __setstate__(self, state) -> None:
        super().__setstate__(state)
        self.hq = state["hq"]
        self.tau = np.asarray(self.hq.tau, dtype=np.int64)
        self.tau_key = self.tau.astype(np.float64)

    def validate_comparability(self) -> None:
        """Check Lemma 4.8: every shortcut joins comparable vertices.

        With a valid separator tree this holds automatically; the check
        exists for tests and for diagnosing bad partition trees.
        """
        for v in range(len(self.up)):
            for u in self.up[v]:
                if not self.hq.precedes(u, v):
                    raise HierarchyError(
                        f"shortcut ({v}, {u}) joins incomparable vertices "
                        f"(tau {self.tau[v]}, {self.tau[u]})"
                    )

    def max_up_degree(self) -> int:
        """Paper's ``d_max`` (maximum shortcut degree towards ancestors)."""
        degrees = np.diff(self.csr.indptr)
        return int(degrees.max()) if len(degrees) else 0

    def degree_stats(self) -> dict[str, float]:
        """Summary of shortcut degrees, for the experiment reports."""
        ups = np.diff(self.csr.indptr)
        downs = np.diff(self.csr.down_indptr)
        return {
            "max_up": int(ups.max(initial=0)),
            "mean_up": float(ups.mean()) if len(ups) else 0.0,
            "max_down": int(downs.max(initial=0)),
            "mean_down": float(downs.mean()) if len(downs) else 0.0,
            "shortcuts": int(self.num_shortcuts),
        }
