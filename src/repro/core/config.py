"""Build-time configuration for DHL indexes."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import IndexBuildError

__all__ = ["DHLConfig"]


@dataclass(frozen=True)
class DHLConfig:
    """Tunable knobs of index construction.

    Attributes
    ----------
    beta:
        Balance parameter of the query hierarchy (Definition 4.1): each
        child subtree holds at most ``1 - beta`` of its parent's
        vertices. The paper selects 0.2.
    leaf_size:
        Partition parts at most this large become leaf tree nodes.
    seed:
        Seed for the randomised partitioning heuristics; fixed seed means
        reproducible indexes.
    coarsest_size:
        Multilevel coarsening stops at roughly this many vertices.
    workers:
        Default worker count for the parallel maintenance variants.
        ``workers`` > 1 explicitly selects the column-partitioned
        Algorithms 6/7 (thread-pooled, scalar relaxation) regardless of
        ``engine``; ``None``/1 leaves engine selection to ``engine``.
    engine:
        Sequential maintenance engine for Algorithms 2-5. ``"array"``
        (default) runs the frontier-batched CSR kernels of
        :mod:`repro.labelling.maintenance_kernels`; ``"compiled"`` runs
        the numba-JIT scalar sweeps of
        :mod:`repro.labelling.compiled` (downgrading to ``"array"``
        with a one-time warning when numba is unavailable — see
        :meth:`resolve_engine`); ``"reference"`` runs the scalar
        one-pop-per-entry path. All engines produce identical labels,
        change counts and affected sets — the reference exists for
        differential testing.
    validate:
        When True, run the (expensive) structural invariant checks after
        construction: comparability of shortcut endpoints and the
        minimum-weight property. Intended for tests and debugging.
    insert_closure_limit:
        Structural-insertion fast-path budget: the maximum number of new
        shortcut slots one ``apply_batch`` may allocate through the
        transitive closure before the batch falls back to rebuilding the
        shortcut hierarchy on the same H_Q. The closure stays small when
        both endpoints share a leaf of H_Q (their LCA subtree is tiny)
        and grows with the LCA subtree's separator sizes, so this is the
        "LCA subtree below a size threshold" gate expressed in units of
        actual allocation work. 0 disables the fast path entirely.
    compaction_threshold:
        Dead-slot fraction of the CSR shortcut store above which the
        serving layer triggers a compaction pass on flush (a slot is
        dead when its weight — both directions for the directed index —
        is inf, i.e. the edge was structurally deleted). 1.0 disables
        automatic compaction; explicit ``index.compact()`` always works.
    """

    beta: float = 0.2
    leaf_size: int = 8
    seed: int = 0
    coarsest_size: int = 120
    workers: int | None = None
    engine: str = "array"
    validate: bool = False
    insert_closure_limit: int = 4096
    compaction_threshold: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 < self.beta <= 0.5:
            raise IndexBuildError(f"beta must be in (0, 0.5], got {self.beta}")
        if self.leaf_size < 1:
            raise IndexBuildError(f"leaf_size must be >= 1, got {self.leaf_size}")
        if self.coarsest_size < 8:
            raise IndexBuildError(
                f"coarsest_size must be >= 8, got {self.coarsest_size}"
            )
        if self.workers is not None and self.workers < 1:
            raise IndexBuildError(f"workers must be >= 1, got {self.workers}")
        if self.engine not in ("array", "reference", "compiled"):
            raise IndexBuildError(
                "engine must be one of 'array', 'reference' or 'compiled', "
                f"got {self.engine!r}"
            )
        if self.insert_closure_limit < 0:
            raise IndexBuildError(
                "insert_closure_limit must be >= 0, got "
                f"{self.insert_closure_limit}"
            )
        if not 0.0 < self.compaction_threshold <= 1.0:
            raise IndexBuildError(
                "compaction_threshold must be in (0, 1], got "
                f"{self.compaction_threshold}"
            )

    def resolve_engine(self) -> str:
        """The engine that will actually run.

        ``"array"`` and ``"reference"`` resolve to themselves.
        ``"compiled"`` resolves to itself when the numba kernels are
        usable and downgrades to ``"array"`` otherwise, emitting a
        single ``RuntimeWarning`` per process — requesting the compiled
        engine on a numba-less machine is never an error.
        """
        if self.engine != "compiled":
            return self.engine
        from repro.labelling.compiled import resolved_engine

        return resolved_engine(self.engine)
