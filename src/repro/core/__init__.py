"""Public facade of the DHL reproduction.

:class:`DHLIndex` bundles the three components of the paper's solution —
query hierarchy H_Q, update hierarchy H_U and hierarchical labelling L —
behind a build/query/update API. :class:`DirectedDHLIndex` adds the
Section 8 directed extension; :class:`ShardedDHLIndex` runs the same
facade as k region shards plus a boundary overlay (partition-parallel
builds, shard-routed queries and maintenance); structural updates
(edge/vertex insert/delete) live in :mod:`repro.core.structural` and are
exposed as index methods.
"""

from repro.core.backend import DistanceBackend
from repro.core.config import DHLConfig
from repro.core.stats import IndexStats
from repro.core.index import DHLIndex
from repro.core.directed import DirectedDHLIndex
from repro.core.sharded import ShardedDHLIndex, ShardedIndexStats

__all__ = [
    "DistanceBackend",
    "DHLConfig",
    "IndexStats",
    "DHLIndex",
    "DirectedDHLIndex",
    "ShardedDHLIndex",
    "ShardedIndexStats",
]
