"""Index statistics: the quantities reported in the paper's Table 3."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["IndexStats"]


def _format_bytes(num: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if num < 1024.0:
            return f"{num:.1f} {unit}"
        num /= 1024.0
    return f"{num:.1f} TB"


@dataclass
class IndexStats:
    """Sizes, entry counts and construction timings of a DHL index."""

    num_vertices: int = 0
    num_edges: int = 0
    label_entries: int = 0
    label_bytes: int = 0
    num_shortcuts: int = 0
    shortcut_bytes: int = 0
    hierarchy_bytes: int = 0
    height: int = 0
    max_up_degree: int = 0
    partition_seconds: float = 0.0
    contraction_seconds: float = 0.0
    labelling_seconds: float = 0.0
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def construction_seconds(self) -> float:
        return self.partition_seconds + self.contraction_seconds + self.labelling_seconds

    @property
    def total_bytes(self) -> int:
        return self.label_bytes + self.shortcut_bytes + self.hierarchy_bytes

    def summary(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"vertices            {self.num_vertices:>12,}",
            f"edges               {self.num_edges:>12,}",
            f"label entries       {self.label_entries:>12,}",
            f"labelling size      {_format_bytes(self.label_bytes):>12}",
            f"shortcuts           {self.num_shortcuts:>12,}",
            f"shortcut size       {_format_bytes(self.shortcut_bytes):>12}",
            f"hierarchy height    {self.height:>12,}",
            f"max up-degree       {self.max_up_degree:>12,}",
            f"partition time      {self.partition_seconds:>11.3f}s",
            f"contraction time    {self.contraction_seconds:>11.3f}s",
            f"labelling time      {self.labelling_seconds:>11.3f}s",
            f"total construction  {self.construction_seconds:>11.3f}s",
        ]
        return "\n".join(lines)
