"""The structural contract every distance backend satisfies.

The serving stack (``repro.service``) was historically duck-typed: the
runtime layer probed indexes with ``getattr`` and the service accepted
"anything index-shaped". :class:`DistanceBackend` makes that contract
explicit — one :class:`typing.Protocol` that
:class:`~repro.core.index.DHLIndex`,
:class:`~repro.core.directed.DirectedDHLIndex` and
:class:`~repro.core.sharded.ShardedDHLIndex` all satisfy, and that the
execution runtimes and :class:`~repro.service.service.DistanceService`
are typed against. A future backend (e.g. Stable Tree Labelling behind
the same facade) plugs into every runtime — in-process, shared-memory
workers, socket replicas — by satisfying this Protocol alone.

The surface, by concern:

* **query** — :meth:`~DistanceBackend.distance` (single pair) and
  :meth:`~DistanceBackend.distances` (batch);
* **update** — :meth:`~DistanceBackend.update` applies one validated
  weight-change batch, :meth:`~DistanceBackend.update_coalesced` folds a
  raw change stream first (last write wins);
* **epoch** — a monotone counter bumped once per applied batch; the
  result cache and the worker epoch-broadcast protocol key on it;
* **affected surface** — every update returns a
  :class:`~repro.labelling.maintenance.MaintenanceStats` whose
  ``affected_labels`` / ``affected_shortcuts`` drive fine-grained cache
  eviction and the delta-sync path (only changed label slots ship to
  workers);
* **graph** — the authoritative weighted graph the update coalescer
  drains against (``weight(u, v)`` is the only requirement).

``runtime_checkable`` makes ``isinstance(x, DistanceBackend)`` a cheap
structural probe (attribute presence only — signatures are enforced by
the type checker, behaviour by the differential test suites).
"""

from __future__ import annotations

from typing import Iterable, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.labelling.maintenance import MaintenanceStats

__all__ = ["DistanceBackend", "WeightChange"]

WeightChange = tuple[int, int, float]


@runtime_checkable
class DistanceBackend(Protocol):
    """Structural type of an index the serving stack can execute against."""

    #: Human-readable backend family (``monolithic`` / ``directed`` /
    #: ``sharded``), surfaced in stats and bench artifacts.
    kind: str

    #: Whether per-pair hub certificates can prove a cached result fresh
    #: after an update. Backends whose distances depend on more label
    #: arrays than the two endpoints' (the sharded index with its
    #: boundary overlay) must report ``False`` so the service cache
    #: downgrades to epoch-watermark invalidation.
    supports_fine_grained_eviction: bool

    @property
    def epoch(self) -> int:
        """Monotone maintenance epoch: +1 per applied update batch."""
        ...

    @property
    def graph(self):
        """The authoritative weighted graph (must expose ``weight(u, v)``)."""
        ...

    # -- query ----------------------------------------------------------
    def distance(self, s: int, t: int) -> float:
        """Exact shortest-path distance (``inf`` when disconnected)."""
        ...

    def distances(self, pairs: Sequence[tuple[int, int]]) -> np.ndarray:
        """Batch distances for ``(s, t)`` pairs."""
        ...

    # -- update ---------------------------------------------------------
    def update(
        self, changes: Iterable[WeightChange], workers: int | None = None
    ) -> MaintenanceStats:
        """Apply one weight-change batch; returns the affected surface."""
        ...

    def update_coalesced(
        self, changes: Iterable[WeightChange], workers: int | None = None
    ) -> MaintenanceStats:
        """Fold a raw change stream (last write wins), then apply it."""
        ...

    # -- introspection --------------------------------------------------
    def stats(self):
        """Size/build snapshot (backend-specific stats object)."""
        ...
