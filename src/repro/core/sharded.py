"""The sharded DHL index facade: k region shards plus a boundary overlay.

:class:`ShardedDHLIndex` exposes the same ``distance / distances /
update / save / load`` surface as the monolithic
:class:`~repro.core.index.DHLIndex`, but internally runs as

1. a k-way region partition with boundary extraction
   (:func:`repro.partition.partition_regions`);
2. one independent DHL index per region, built **in parallel** across
   processes (:mod:`repro.sharding.build`);
3. a small overlay DHL index on the boundary-vertex graph — cut edges
   plus per-region boundary cliques weighted by intra-shard distances
   (:mod:`repro.sharding.overlay`).

Queries route through :class:`repro.sharding.engine.ShardedQueryEngine`;
weight updates route to the owning shard (cut edges go straight to the
overlay) and then refresh only the overlay clique edges whose endpoints'
boundary distances could have moved — tracked via the maintenance pass's
``affected_labels``.
"""

from __future__ import annotations

import math
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.core.config import DHLConfig
from repro.core.index import DHLIndex
from repro.core.stats import IndexStats
from repro.exceptions import IndexBuildError, MaintenanceError
from repro.graph.graph import Graph
from repro.labelling.maintenance import MaintenanceStats
from repro.observability.phases import phase
from repro.partition.regions import RegionPartition, partition_regions
from repro.sharding.build import ShardBuildReport, build_shards
from repro.sharding.engine import ShardedQueryEngine
from repro.sharding.overlay import build_overlay_graph, clique_refresh_changes
from repro.sharding.stats import ShardedMaintenanceStats
from repro.utils.timing import Stopwatch

__all__ = ["ShardedDHLIndex", "ShardedIndexStats"]

WeightChange = tuple[int, int, float]


@dataclass
class ShardedIndexStats:
    """Size/build snapshot of a sharded index."""

    num_vertices: int
    num_edges: int
    k: int
    boundary_vertices: int
    cut_edges: int
    overlay_edges: int
    partition_seconds: float = 0.0
    overlay_seconds: float = 0.0
    build: ShardBuildReport = field(default_factory=ShardBuildReport)
    shards: list[IndexStats] = field(default_factory=list)
    overlay: IndexStats | None = None

    @property
    def label_entries(self) -> int:
        total = sum(s.label_entries for s in self.shards)
        if self.overlay is not None:
            total += self.overlay.label_entries
        return total

    @property
    def label_bytes(self) -> int:
        total = sum(s.label_bytes for s in self.shards)
        if self.overlay is not None:
            total += self.overlay.label_bytes
        return total


class ShardedDHLIndex:
    """Region-sharded dual-hierarchy distance index.

    Build with :meth:`build`; query with :meth:`distance` /
    :meth:`distances`; maintain with :meth:`update` /
    :meth:`update_coalesced`; persist with :meth:`save` / :meth:`load`.
    The facade matches :class:`~repro.core.index.DHLIndex`, so the
    serving layer accepts either backend.
    """

    kind = "sharded"
    # Sharded distances depend on boundary/overlay labels too, so no
    # per-pair hub certifies them; the serving layer's fine-grained
    # cache eviction must downgrade to epoch invalidation.
    supports_fine_grained_eviction = False

    def __init__(
        self,
        graph: Graph,
        partition: RegionPartition,
        shards: list[DHLIndex],
        overlay: DHLIndex | None,
        config: DHLConfig,
        stats: ShardedIndexStats,
    ):
        self.graph = graph
        self.partition = partition
        self.shards = shards
        self.overlay = overlay
        self.config = config
        self._stats = stats
        n = graph.num_vertices
        self.k = partition.k
        self.region_of = partition.region_of
        # Shard-local ids, aligned with each shard's vertex numbering
        # (induced_subgraph numbers a region's vertices in list order).
        self.local_of = np.empty(n, dtype=np.int64)
        self.shard_vertices: list[np.ndarray] = []
        for vertices in partition.regions:
            arr = np.asarray(vertices, dtype=np.int64)
            self.shard_vertices.append(arr)
            self.local_of[arr] = np.arange(len(arr))
        # Overlay numbering: boundary vertices sorted by global id.
        boundary_global = np.asarray(partition.boundary_vertices(), dtype=np.int64)
        self.boundary_global = boundary_global
        self.overlay_of = np.full(n, -1, dtype=np.int64)
        self.overlay_of[boundary_global] = np.arange(len(boundary_global))
        self.boundary_local: list[np.ndarray] = []
        self.boundary_overlay: list[np.ndarray] = []
        for bverts in partition.boundary:
            barr = np.asarray(bverts, dtype=np.int64)
            self.boundary_local.append(self.local_of[barr])
            self.boundary_overlay.append(self.overlay_of[barr])
        self._engine = ShardedQueryEngine(self)
        self._epoch = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: Graph,
        k: int = 4,
        config: DHLConfig | None = None,
        build_workers: int | None = None,
        region_beta: float = 0.45,
    ) -> "ShardedDHLIndex":
        """Partition into *k* regions, build shards in parallel, overlay.

        ``build_workers`` sizes the shard-build process pool (default:
        one process per shard, capped at the shard count); pass 1 to
        force a serial build. ``region_beta`` balances the *region*
        split only (the shard hierarchies keep ``config.beta``): near
        0.5 the shards come out even, which shortens both the parallel
        critical path (largest shard) and the serial sum — build cost
        grows superlinearly in shard size — at the price of a slightly
        larger cut, i.e. a few more boundary vertices.
        """
        config = config or DHLConfig()
        if graph.num_vertices == 0:
            raise IndexBuildError("cannot index an empty graph")
        watch = Stopwatch()
        with watch:
            partition = partition_regions(
                graph,
                k,
                beta=region_beta,
                seed=config.seed,
                coarsest_size=config.coarsest_size,
            )
        partition_seconds = watch.laps[-1]

        subgraphs = [
            graph.induced_subgraph(vertices)[0] for vertices in partition.regions
        ]
        workers = len(subgraphs) if build_workers is None else build_workers
        shards, report = build_shards(subgraphs, config, workers)

        stats = ShardedIndexStats(
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            k=partition.k,
            boundary_vertices=sum(len(b) for b in partition.boundary),
            cut_edges=len(partition.cut_edges),
            overlay_edges=0,
            partition_seconds=partition_seconds,
            build=report,
        )
        index = cls(graph, partition, shards, None, config, stats)
        with watch:
            index._build_overlay()
        stats.overlay_seconds = watch.laps[-1]
        index._refresh_size_stats()
        return index

    def _build_overlay(self) -> None:
        """Construct (or reconstruct) the overlay index from scratch."""
        if not len(self.boundary_global):
            self.overlay = None
            return
        overlay_graph = build_overlay_graph(
            self.shards,
            self.boundary_local,
            self.boundary_overlay,
            self.partition.cut_edges,
            self.overlay_of,
            len(self.boundary_global),
        )
        self.overlay = DHLIndex.build(overlay_graph, self.config)
        self._engine.invalidate_blocks()

    def _refresh_size_stats(self) -> None:
        self._stats.shards = [shard.stats() for shard in self.shards]
        self._stats.overlay = (
            self.overlay.stats() if self.overlay is not None else None
        )
        self._stats.overlay_edges = (
            self.overlay.graph.num_edges if self.overlay is not None else 0
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def distance(self, s: int, t: int) -> float:
        """Exact shortest-path distance (``inf`` when disconnected)."""
        return self._engine.distance(s, t)

    def distances(self, pairs: Sequence[tuple[int, int]]) -> np.ndarray:
        """Batch distances for ``(s, t)`` pairs."""
        return self._engine.distances(list(pairs))

    def distances_from(self, s: int, targets: Sequence[int]) -> np.ndarray:
        """One-to-many distances from *s*."""
        return self._engine.distances([(s, t) for t in targets])

    def k_nearest(
        self, s: int, candidates: Sequence[int], k: int
    ) -> list[tuple[int, float]]:
        """The *k* candidates closest to *s* by road distance."""
        distances = self.distances_from(s, candidates)
        order = np.argsort(distances, kind="stable")
        out: list[tuple[int, float]] = []
        for i in order[: max(0, k)]:
            if not math.isfinite(distances[i]):
                break
            out.append((candidates[int(i)], float(distances[i])))
        return out

    @property
    def engine(self) -> ShardedQueryEngine:
        return self._engine

    @property
    def epoch(self) -> int:
        """Number of maintenance batches applied since construction."""
        return self._epoch

    # ------------------------------------------------------------------
    # dynamic updates
    # ------------------------------------------------------------------
    def update(
        self, changes: Iterable[WeightChange], workers: int | None = None
    ) -> ShardedMaintenanceStats:
        """Apply a mixed weight-change batch, routed per shard.

        Intra-region changes go to the owning shard's DHL+/DHL- pass
        (shards run concurrently when the config asks for workers); cut
        edge changes go straight to the overlay. After shard passes,
        only the overlay clique edges incident to an *affected* boundary
        label are recomputed and folded into one overlay pass.
        """
        per_shard: dict[int, list[WeightChange]] = {}
        overlay_changes: list[WeightChange] = []
        applied: list[WeightChange] = []
        for u, v, w in changes:
            current = self.graph.weight(u, v)
            if w < 0 or math.isnan(w):
                raise MaintenanceError(f"invalid weight {w!r} for edge ({u}, {v})")
            if w == current:
                continue
            ru = int(self.region_of[u])
            rv = int(self.region_of[v])
            if ru == rv:
                per_shard.setdefault(ru, []).append(
                    (int(self.local_of[u]), int(self.local_of[v]), w)
                )
            else:
                overlay_changes.append(
                    (int(self.overlay_of[u]), int(self.overlay_of[v]), w)
                )
            applied.append((u, v, w))

        stats = ShardedMaintenanceStats()
        if not applied:
            return stats

        workers = self.config.workers if workers is None else workers
        with phase("sharded.shard_update"):
            shard_results = self._apply_shard_batches(per_shard, workers)
        with phase("sharded.clique_refresh"):
            for rid, shard_stats in shard_results.items():
                stats.per_shard[rid] = shard_stats
                stats.absorb(shard_stats, self.shard_vertices[rid])
                if self.overlay is not None:
                    overlay_changes.extend(
                        clique_refresh_changes(
                            self.shards[rid],
                            self.boundary_local[rid],
                            self.boundary_overlay[rid],
                            self.overlay.graph,
                            shard_stats.affected_labels,
                        )
                    )

        if overlay_changes and self.overlay is not None:
            with phase("sharded.overlay_update"):
                overlay_stats = self.overlay.update(overlay_changes, workers)
            stats.overlay_stats = overlay_stats
            stats.absorb(overlay_stats, self.boundary_global)
            self._engine.invalidate_blocks()

        # Keep the global graph in lockstep with shard/overlay state so
        # coalescers draining against it classify changes correctly.
        for u, v, w in applied:
            self.graph.set_weight(u, v, w)
        self._epoch += 1
        return stats

    def _apply_shard_batches(
        self, per_shard: dict[int, list[WeightChange]], workers: int | None
    ) -> dict[int, MaintenanceStats]:
        """Run each shard's batch; shard-parallel when workers allow."""
        if not per_shard:
            return {}
        if workers and workers > 1 and len(per_shard) > 1:
            with ThreadPoolExecutor(
                max_workers=min(workers, len(per_shard))
            ) as pool:
                futures = {
                    rid: pool.submit(self.shards[rid].update, batch, 1)
                    for rid, batch in per_shard.items()
                }
                return {rid: fut.result() for rid, fut in futures.items()}
        return {
            rid: self.shards[rid].update(batch, 1)
            for rid, batch in per_shard.items()
        }

    def update_coalesced(
        self, changes: Iterable[WeightChange], workers: int | None = None
    ) -> ShardedMaintenanceStats:
        """Apply a raw change stream as one merged batch (last write wins)."""
        final: dict[tuple[int, int], float] = {}
        for u, v, w in changes:
            final[(u, v) if u <= v else (v, u)] = w
        return self.update([(u, v, w) for (u, v), w in final.items()], workers)

    # ------------------------------------------------------------------
    # structural updates
    # ------------------------------------------------------------------
    def apply_batch(
        self,
        insertions: Iterable[WeightChange] = (),
        deletions: Iterable[tuple[int, int]] = (),
        weight_changes: Iterable[WeightChange] = (),
        workers: int | None = None,
    ) -> ShardedMaintenanceStats:
        """Apply one mixed structural batch, routed per shard.

        Intra-region insertions and deletions go to the owning shard's
        own :meth:`DHLIndex.apply_batch` (fast paths and all), followed
        by the usual overlay clique refresh from its affected labels.
        Cut-edge deletions become infinite-weight overlay increases; a
        *new* cut edge changes the boundary vertex set itself, so the
        boundary navigation arrays and the overlay are rebuilt from the
        updated graph (the region assignment never changes).
        """
        from repro.core.structural import _bump, structural_counters  # noqa: F401

        graph = self.graph
        stats = ShardedMaintenanceStats()
        workers = self.config.workers if workers is None else workers

        folded_changes = list(weight_changes)
        per_shard_del: dict[int, list[tuple[int, int]]] = {}
        cut_deletes: list[tuple[int, int]] = []
        per_shard_ins: dict[int, list[WeightChange]] = {}
        cross_inserts: list[WeightChange] = []
        for u, v in deletions:
            if not graph.has_edge(u, v) or math.isinf(graph.weight(u, v)):
                _bump(self, "already_deleted_edges")
                continue
            ru, rv = int(self.region_of[u]), int(self.region_of[v])
            if ru == rv:
                per_shard_del.setdefault(ru, []).append(
                    (int(self.local_of[u]), int(self.local_of[v]))
                )
            else:
                cut_deletes.append((u, v))
        for u, v, w in insertions:
            if graph.has_edge(u, v):
                folded_changes.append((u, v, w))
                continue
            ru, rv = int(self.region_of[u]), int(self.region_of[v])
            if ru == rv:
                per_shard_ins.setdefault(ru, []).append(
                    (int(self.local_of[u]), int(self.local_of[v]), w)
                )
            else:
                cross_inserts.append((u, v, w))

        if folded_changes:
            # Duplicate reports on one edge coalesce last-wins
            # (sequential semantics).
            net: dict[tuple[int, int], WeightChange] = {}
            for u, v, w in folded_changes:
                net[(u, v) if u <= v else (v, u)] = (u, v, w)
            folded_changes = list(net.values())
            weight_stats = self.update(folded_changes, workers)
            stats.per_shard.update(weight_stats.per_shard)
            stats.overlay_stats = weight_stats.overlay_stats
            stats.absorb(weight_stats, np.arange(graph.num_vertices))

        overlay_changes: list[WeightChange] = []
        for u, v in cut_deletes:
            graph.set_weight(u, v, math.inf)
            overlay_changes.append(
                (int(self.overlay_of[u]), int(self.overlay_of[v]), math.inf)
            )

        touched = sorted(set(per_shard_del) | set(per_shard_ins))
        for rid in touched:
            shard_structural = self.shards[rid].apply_batch(
                insertions=per_shard_ins.get(rid, []),
                deletions=per_shard_del.get(rid, []),
                workers=1,
            )
            shard_stats = shard_structural.maintenance
            merged = stats.per_shard.get(rid)
            stats.per_shard[rid] = (
                shard_stats if merged is None else merged.merge(shard_stats)
            )
            stats.absorb(shard_stats, self.shard_vertices[rid])
            if self.overlay is not None:
                overlay_changes.extend(
                    clique_refresh_changes(
                        self.shards[rid],
                        self.boundary_local[rid],
                        self.boundary_overlay[rid],
                        self.overlay.graph,
                        shard_stats.affected_labels,
                    )
                )
            # Mirror the shard's structural outcome on the global graph.
            globals_of = self.shard_vertices[rid]
            for lu, lv in per_shard_del.get(rid, []):
                graph.set_weight(int(globals_of[lu]), int(globals_of[lv]), math.inf)
            for lu, lv, w in per_shard_ins.get(rid, []):
                graph.add_edge(int(globals_of[lu]), int(globals_of[lv]), w)

        if overlay_changes and self.overlay is not None:
            with phase("sharded.overlay_update"):
                overlay_stats = self.overlay.update(overlay_changes, workers)
            stats.overlay_stats = stats.overlay_stats.merge(overlay_stats)
            stats.absorb(overlay_stats, self.boundary_global)
            self._engine.invalidate_blocks()

        if cross_inserts:
            with phase("structural.fallback_rebuild"):
                for u, v, w in cross_inserts:
                    graph.add_edge(u, v, w)
                self._rebuild_boundary_structures()
            _bump(self, "fallback_rebuilds")
            stats.absorb(
                MaintenanceStats(affected_labels=set(self.boundary_global.tolist())),
                np.arange(graph.num_vertices),
            )

        self._epoch += 1
        return stats

    def _rebuild_boundary_structures(self) -> None:
        """Re-derive cut edges / boundaries and rebuild the overlay.

        Region vertex sets are preserved (``regions_from_assignment``
        lists each region's vertices in ascending id order, matching the
        construction-time ordering), so shard-local ids stay valid.
        """
        from repro.partition.regions import regions_from_assignment

        self.partition = regions_from_assignment(self.graph, self.region_of)
        n = self.graph.num_vertices
        boundary_global = np.asarray(
            self.partition.boundary_vertices(), dtype=np.int64
        )
        self.boundary_global = boundary_global
        self.overlay_of = np.full(n, -1, dtype=np.int64)
        self.overlay_of[boundary_global] = np.arange(len(boundary_global))
        self.boundary_local = []
        self.boundary_overlay = []
        for bverts in self.partition.boundary:
            barr = np.asarray(bverts, dtype=np.int64)
            self.boundary_local.append(self.local_of[barr])
            self.boundary_overlay.append(self.overlay_of[barr])
        self._build_overlay()

    def compact(self):
        """Compact every shard (and the overlay or boundary structures).

        Shards squeeze their own dead slots and edges; global-graph
        edges that are dead follow them out. When that removes a cut
        edge, the boundary vertex set may shrink, so the navigation
        arrays and overlay are rebuilt; otherwise the overlay compacts
        in place. Returns an aggregate
        :class:`~repro.core.structural.CompactionStats`.
        """
        from repro.core.structural import CompactionStats, _bump

        total = CompactionStats()
        for shard in self.shards:
            cs = shard.compact()
            total.dead_slots_reclaimed += cs.dead_slots_reclaimed
            total.bytes_reclaimed += cs.bytes_reclaimed
        cut_removed = False
        for u, v, w in list(self.graph.edges()):
            if math.isinf(w):
                self.graph.remove_edge(u, v)
                if self.region_of[u] != self.region_of[v]:
                    cut_removed = True
        if cut_removed:
            self._rebuild_boundary_structures()
        elif self.overlay is not None:
            cs = self.overlay.compact()
            total.dead_slots_reclaimed += cs.dead_slots_reclaimed
            total.bytes_reclaimed += cs.bytes_reclaimed
            self._engine.invalidate_blocks()
        self._epoch += 1
        _bump(self, "compactions")
        _bump(self, "dead_slots_reclaimed", total.dead_slots_reclaimed)
        _bump(self, "bytes_reclaimed", total.bytes_reclaimed)
        return total

    @property
    def dead_fraction(self) -> float:
        """Aggregate dead-slot fraction across shards and overlay."""
        dead = 0
        slots = 0
        components = list(self.shards)
        if self.overlay is not None:
            components.append(self.overlay)
        for component in components:
            weights = component.hu.up_weights
            dead += int(np.isinf(weights).sum())
            slots += len(weights)
        return dead / slots if slots else 0.0

    @property
    def structural_counters(self) -> dict[str, int]:
        """Lifetime structural counters (see :class:`DHLIndex`)."""
        from repro.core.structural import structural_counters

        return structural_counters(self)

    # ------------------------------------------------------------------
    # cross-process serving hooks (shared-memory shard workers)
    # ------------------------------------------------------------------
    def shard_buffers(self, sid: int) -> tuple[np.ndarray, np.ndarray]:
        """Shard *sid*'s packed ``(label_values, label_offsets)`` pair.

        The exact buffers a serving runtime publishes once into
        ``multiprocessing.shared_memory`` so worker processes can gather
        zero-copy — the same two-array layout the v3 snapshot writes to
        disk (:meth:`~repro.labelling.labels.HierarchicalLabelling
        .export_buffers`).
        """
        return self.shards[sid].labels.export_buffers()

    def shard_worker_payload(self, sid: int) -> bytes:
        """Shard *sid*'s structure, pickled with the label payload elided.

        Everything a worker process needs to answer shard-local queries
        — graph, hierarchies, config, and the shard's boundary vertex
        ids — *except* the label buffers, which the worker attaches via
        shared memory (:meth:`shard_buffers`) and re-binds with
        :meth:`~repro.labelling.labels.HierarchicalLabelling
        .from_shared_buffers`. Shipped once per worker at startup; label
        maintenance afterwards travels as in-place shared-memory deltas,
        never as a re-pickle.
        """
        import pickle

        from repro.labelling.labels import HierarchicalLabelling

        shard = self.shards[sid]
        labels = shard.labels
        engine = shard._engine
        n = labels.num_vertices
        stub = HierarchicalLabelling(
            np.empty(0, dtype=np.float64),
            np.zeros(n + 1, dtype=np.int64),
            np.zeros(n, dtype=np.int64),
            labels.tau,
        )
        # Temporarily detach the store (and the engine bound to it) so the
        # pickle carries structure only; restored before returning.
        shard.labels = stub
        shard._engine = None
        try:
            return pickle.dumps(
                {
                    "index": shard,
                    "boundary_local": np.asarray(
                        self.boundary_local[sid], dtype=np.int64
                    ),
                },
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        finally:
            shard.labels = labels
            shard._engine = engine

    # ------------------------------------------------------------------
    # persistence and introspection
    # ------------------------------------------------------------------
    def stats(self) -> ShardedIndexStats:
        self._refresh_size_stats()
        return self._stats

    def save(self, path: str | Path) -> None:
        """Persist to a directory of per-shard ``.npy`` snapshot dirs."""
        from repro.core.serialization import save_sharded_index

        save_sharded_index(self, Path(path))

    @classmethod
    def load(
        cls, path: str | Path, mmap_labels: bool = False, verify: bool = True
    ) -> "ShardedDHLIndex":
        """Load an index saved by :meth:`save`.

        ``mmap_labels=True`` memory-maps every shard's (and the
        overlay's) label store read-only.
        """
        from repro.core.serialization import load_sharded_index

        return load_sharded_index(Path(path), mmap_labels=mmap_labels, verify=verify)

    def verify(self) -> None:
        """Run every component's invariant suite (slow; tests only)."""
        for shard in self.shards:
            shard.verify()
        if self.overlay is not None:
            self.overlay.verify()
        self.partition.validate()

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        return (
            f"ShardedDHLIndex(n={self.graph.num_vertices}, k={self.k}, "
            f"boundary={len(self.boundary_global)})"
        )
