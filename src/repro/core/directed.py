"""Directed road networks — the Section 8 extension.

The paper sketches the directed case: keep one pair of hierarchies and
store *forward and reverse labels* per vertex, maintaining each with the
same algorithms. Concretely:

* the **structural skeleton** (which pairs are shortcuts) comes from the
  symmetrised graph — structure is weight-independent, so one skeleton
  serves both directions;
* every shortcut pair ``(v, u)`` with ``v`` deeper carries two weights:
  ``wout[v][u]`` for the ascending arc ``v -> u`` and ``win[v][u]`` for
  the descending arc ``u -> v``;
* two labellings are built with Algorithm 1 parameterised by the weight
  direction: ``L_out[v][i]`` = distance ``v -> ancestor_i`` and
  ``L_in[v][i]`` = distance ``ancestor_i -> v`` within the interval
  subgraph;
* a query is ``d(s, t) = min_i L_out[s][i] + L_in[t][i]`` over the common
  ancestors — the directed 2-hop cover (the minimum-rank vertex of a
  directed shortest path is a common ancestor, and both label entries are
  exact within its descendant subgraph);
* shortcut maintenance couples the two directions (a triangle through a
  deeper vertex composes one descending and one ascending weight), so it
  is implemented here; label maintenance reuses Algorithms 4-7 verbatim
  through direction views.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Iterable

import numpy as np

from repro.core.config import DHLConfig
from repro.core.stats import IndexStats
from repro.exceptions import IndexBuildError, MaintenanceError
from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph
from repro.hierarchy.query_hierarchy import QueryHierarchy
from repro.labelling.build import build_labelling
from repro.labelling.labels import HierarchicalLabelling
from repro.labelling.maintenance import (
    MaintenanceStats,
    maintain_labels_decrease,
    maintain_labels_increase,
)
from repro.labelling.parallel import (
    maintain_labels_decrease_parallel,
    maintain_labels_increase_parallel,
)
from repro.partition.recursive import recursive_bisection
from repro.utils.priority_queue import LazyHeap
from repro.utils.timing import Stopwatch

__all__ = ["DirectedDHLIndex"]

WeightChange = tuple[int, int, float]

_OUT = 0  # deeper -> shallower (ascending arcs)
_IN = 1  # shallower -> deeper (descending arcs)


class _DirectionView:
    """Duck-typed stand-in for UpdateHierarchy used by label algorithms.

    Exposes exactly the attributes Algorithm 1/4/5/6/7 implementations
    touch: ``tau``, ``up``, ``down``, ``wup``.
    """

    __slots__ = ("tau", "up", "down", "wup")

    def __init__(self, tau, up, down, wup):
        self.tau = tau
        self.up = up
        self.down = down
        self.wup = wup


class DirectedDHLIndex:
    """DHL index over a directed graph with forward and reverse labels."""

    kind = "directed"

    def __init__(
        self,
        digraph: DiGraph,
        hq: QueryHierarchy,
        rank: np.ndarray,
        up: list[list[int]],
        down: list[list[int]],
        down_sets: list[set[int]],
        wout: list[dict[int, float]],
        win: list[dict[int, float]],
        labels_out: HierarchicalLabelling,
        labels_in: HierarchicalLabelling,
        config: DHLConfig,
        stats: IndexStats,
    ):
        self.digraph = digraph
        self.hq = hq
        self.rank = rank
        self.up = up
        self.down = down
        self.down_sets = down_sets
        self.wout = wout
        self.win = win
        self.labels_out = labels_out
        self.labels_in = labels_in
        self.config = config
        self._stats = stats
        self._out_view = _DirectionView(hq.tau, up, down, wout)
        self._in_view = _DirectionView(hq.tau, up, down, win)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, digraph: DiGraph, config: DHLConfig | None = None) -> "DirectedDHLIndex":
        config = config or DHLConfig()
        if digraph.num_vertices == 0:
            raise IndexBuildError("cannot index an empty graph")
        n = digraph.num_vertices
        stats = IndexStats(num_vertices=n, num_edges=digraph.num_arcs)

        watch = Stopwatch()
        with watch:
            skeleton = cls._skeleton(digraph)
            tree = recursive_bisection(
                skeleton,
                beta=config.beta,
                leaf_size=config.leaf_size,
                seed=config.seed,
                coarsest_size=config.coarsest_size,
            )
            hq = QueryHierarchy.from_partition_tree(tree, n)
        stats.partition_seconds = watch.laps[-1]

        with watch:
            rank_, up, down, down_sets, wout, win = cls._contract(digraph, hq)
        stats.contraction_seconds = watch.laps[-1]

        with watch:
            labels_out = build_labelling(_DirectionView(hq.tau, up, down, wout))
            labels_in = build_labelling(_DirectionView(hq.tau, up, down, win))
        stats.labelling_seconds = watch.laps[-1]

        index = cls(
            digraph, hq, rank_, up, down, down_sets, wout, win,
            labels_out, labels_in, config, stats,
        )
        index._refresh_size_stats()
        return index

    @staticmethod
    def _skeleton(digraph: DiGraph) -> Graph:
        """Symmetrised structural skeleton used for partitioning."""
        g = Graph(digraph.num_vertices, digraph.coords)
        for u, v, w in digraph.arcs():
            if not g.has_edge(u, v):
                reverse = digraph.out_neighbors(v).get(u, math.inf)
                g.add_edge(u, v, min(w, reverse))
        return g

    @staticmethod
    def _contract(digraph: DiGraph, hq: QueryHierarchy):
        """Directed contraction over the symmetric structural skeleton."""
        n = digraph.num_vertices
        order = hq.contraction_order()
        rank = np.empty(n, dtype=np.int64)
        rank[order] = np.arange(n)

        # Working directed adjacency with symmetric key structure:
        # b in work[a] iff a in work[b]; missing arcs carry inf.
        work: list[dict[int, float]] = [{} for _ in range(n)]
        for a, b, w in digraph.arcs():
            work[a][b] = min(work[a].get(b, math.inf), w)
            work[b].setdefault(a, math.inf)

        up: list[list[int]] = [[] for _ in range(n)]
        wout: list[dict[int, float]] = [{} for _ in range(n)]
        win: list[dict[int, float]] = [{} for _ in range(n)]

        for v in order.tolist():
            nbrs = sorted(work[v], key=lambda u: rank[u])
            up[v] = nbrs
            wout[v] = {u: work[v][u] for u in nbrs}
            win[v] = {u: work[u][v] for u in nbrs}
            for i, a in enumerate(nbrs):
                va = work[v][a]  # v -> a
                av = work[a][v]  # a -> v
                del work[a][v]
                for b in nbrs[i + 1 :]:
                    vb = work[v][b]
                    bv = work[b][v]
                    ab = av + vb  # a -> v -> b
                    ba = bv + va  # b -> v -> a
                    row_a, row_b = work[a], work[b]
                    cur_ab = row_a.get(b, math.inf)
                    cur_ba = row_b.get(a, math.inf)
                    row_a[b] = ab if ab < cur_ab else cur_ab
                    row_b[a] = ba if ba < cur_ba else cur_ba
            work[v].clear()

        down: list[list[int]] = [[] for _ in range(n)]
        for v in range(n):
            for u in up[v]:
                down[u].append(v)
        down_sets = [set(d) for d in down]
        return rank, up, down, down_sets, wout, win

    def _refresh_size_stats(self) -> None:
        self._stats.label_entries = (
            self.labels_out.num_entries + self.labels_in.num_entries
        )
        self._stats.label_bytes = (
            self.labels_out.memory_bytes() + self.labels_in.memory_bytes()
        )
        self._stats.num_shortcuts = sum(len(w) for w in self.wout)
        self._stats.shortcut_bytes = 24 * self._stats.num_shortcuts
        self._stats.hierarchy_bytes = self.hq.memory_bytes()
        self._stats.height = self.hq.height
        self._stats.max_up_degree = max((len(u) for u in self.up), default=0)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def distance(self, s: int, t: int) -> float:
        """Directed shortest-path distance from *s* to *t*."""
        if s == t:
            return 0.0
        k = self.hq.common_ancestor_count(s, t)
        if k <= 0:
            return math.inf
        total = self.labels_out.view(s)[:k] + self.labels_in.view(t)[:k]
        return float(total.min())

    def distances(self, pairs: Iterable[tuple[int, int]]) -> np.ndarray:
        pairs = list(pairs)
        out = np.empty(len(pairs), dtype=np.float64)
        for idx, (s, t) in enumerate(pairs):
            out[idx] = self.distance(s, t)
        return out

    # ------------------------------------------------------------------
    # directional weight helpers
    # ------------------------------------------------------------------
    def _key(self, a: int, b: int) -> tuple[int, int, int]:
        """Orient arc ``a -> b`` onto its shortcut slot.

        Returns ``(lo, hi, direction)`` with ``lo`` the deeper endpoint.
        """
        if self.rank[a] < self.rank[b]:
            return a, b, _OUT
        return b, a, _IN

    def _w(self, lo: int, hi: int, direction: int) -> float:
        store = self.wout if direction == _OUT else self.win
        return store[lo][hi]

    def _set_w(self, lo: int, hi: int, direction: int, value: float) -> float:
        store = self.wout if direction == _OUT else self.win
        old = store[lo][hi]
        store[lo][hi] = value
        return old

    # ------------------------------------------------------------------
    # dynamic updates
    # ------------------------------------------------------------------
    def decrease(
        self, changes: Iterable[WeightChange], workers: int | None = None
    ) -> MaintenanceStats:
        """Arc-weight decreases: directed Algorithm 2 + Algorithm 4/6 x2."""
        affected = {_OUT: {}, _IN: {}}
        heap: LazyHeap[tuple[int, int, int]] = LazyHeap()
        for a, b, w_new in changes:
            old_arc = self.digraph.set_weight(a, b, w_new)
            if w_new > old_arc:
                raise MaintenanceError(
                    f"decrease batch contains an increase on arc ({a}, {b})"
                )
            lo, hi, direction = self._key(a, b)
            if self._w(lo, hi, direction) > w_new:
                affected[direction].setdefault((lo, hi), self._w(lo, hi, direction))
                self._set_w(lo, hi, direction, w_new)
                heap.push((lo, hi, direction), float(self.rank[lo]))

        while heap:
            (lo, hi, direction), _ = heap.pop()
            w_cur = self._w(lo, hi, direction)
            for other in self.up[lo]:
                if other == hi:
                    continue
                if direction == _OUT:
                    # lo->hi changed: affects other->hi via lo.
                    cand = self.win[lo][other] + w_cur
                    src, dst = other, hi
                else:
                    # hi->lo changed: affects hi->other via lo.
                    cand = w_cur + self.wout[lo][other]
                    src, dst = hi, other
                tlo, thi, tdir = self._key(src, dst)
                if self._w(tlo, thi, tdir) > cand:
                    affected[tdir].setdefault((tlo, thi), self._w(tlo, thi, tdir))
                    self._set_w(tlo, thi, tdir, cand)
                    heap.push((tlo, thi, tdir), float(self.rank[tlo]))

        if workers and workers > 1:
            stats = maintain_labels_decrease_parallel(
                self._out_view, self.labels_out, affected[_OUT], workers
            )
            stats = stats.merge(
                maintain_labels_decrease_parallel(
                    self._in_view, self.labels_in, affected[_IN], workers
                )
            )
            return stats
        stats = maintain_labels_decrease(
            self._out_view, self.labels_out, affected[_OUT]
        )
        stats = stats.merge(
            maintain_labels_decrease(self._in_view, self.labels_in, affected[_IN])
        )
        return stats

    def increase(
        self, changes: Iterable[WeightChange], workers: int | None = None
    ) -> MaintenanceStats:
        """Arc-weight increases: directed Algorithm 3 + Algorithm 5/7 x2."""
        heap: LazyHeap[tuple[int, int, int]] = LazyHeap()
        for a, b, w_new in changes:
            old_arc = self.digraph.set_weight(a, b, w_new)
            if w_new < old_arc:
                raise MaintenanceError(
                    f"increase batch contains a decrease on arc ({a}, {b})"
                )
            lo, hi, direction = self._key(a, b)
            if self._w(lo, hi, direction) == old_arc:
                heap.push((lo, hi, direction), float(self.rank[lo]))

        affected = {_OUT: {}, _IN: {}}
        digraph = self.digraph
        while heap:
            (lo, hi, direction), _ = heap.pop()
            src, dst = (lo, hi) if direction == _OUT else (hi, lo)
            w_new = digraph.out_neighbors(src).get(dst, math.inf)
            small, big = self.down_sets[lo], self.down_sets[hi]
            if len(small) > len(big):
                small, big = big, small
            for x in small:
                if x in big:
                    # src -> x -> dst; x is deeper than both endpoints.
                    cand = self.win[x][src] + self.wout[x][dst]
                    if cand < w_new:
                        w_new = cand
            old = self._w(lo, hi, direction)
            if old != w_new:
                for other in self.up[lo]:
                    if other == hi:
                        continue
                    if direction == _OUT:
                        t_src, t_dst = other, hi
                        cand_old = self.win[lo][other] + old
                    else:
                        t_src, t_dst = hi, other
                        cand_old = old + self.wout[lo][other]
                    tlo, thi, tdir = self._key(t_src, t_dst)
                    if self._w(tlo, thi, tdir) == cand_old:
                        heap.push((tlo, thi, tdir), float(self.rank[tlo]))
                affected[direction].setdefault((lo, hi), old)
                self._set_w(lo, hi, direction, w_new)

        if workers and workers > 1:
            stats = maintain_labels_increase_parallel(
                self._out_view, self.labels_out, affected[_OUT], workers
            )
            stats = stats.merge(
                maintain_labels_increase_parallel(
                    self._in_view, self.labels_in, affected[_IN], workers
                )
            )
            return stats
        stats = maintain_labels_increase(
            self._out_view, self.labels_out, affected[_OUT]
        )
        stats = stats.merge(
            maintain_labels_increase(self._in_view, self.labels_in, affected[_IN])
        )
        return stats

    def update(
        self, changes: Iterable[WeightChange], workers: int | None = None
    ) -> MaintenanceStats:
        """Mixed batch: increases first, then decreases."""
        increases: list[WeightChange] = []
        decreases: list[WeightChange] = []
        for a, b, w in changes:
            current = self.digraph.weight(a, b)
            if w > current:
                increases.append((a, b, w))
            elif w < current:
                decreases.append((a, b, w))
        stats = MaintenanceStats()
        if increases:
            stats = stats.merge(self.increase(increases, workers))
        if decreases:
            stats = stats.merge(self.decrease(decreases, workers))
        return stats

    # ------------------------------------------------------------------
    # persistence and introspection
    # ------------------------------------------------------------------
    def save(self, path: "str | Path") -> None:
        """Persist the directed index (manifest + npz + flat label npy)."""
        from repro.core.serialization import save_directed_index

        save_directed_index(self, Path(path))

    @classmethod
    def load(cls, path: "str | Path", mmap_labels: bool = False) -> "DirectedDHLIndex":
        """Load an index written by :meth:`save`; ``mmap_labels`` maps the
        two label stores read-only for near-instant start-up."""
        from repro.core.serialization import load_directed_index

        return load_directed_index(Path(path), mmap_labels=mmap_labels)

    def stats(self) -> IndexStats:
        self._refresh_size_stats()
        return self._stats

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        return (
            f"DirectedDHLIndex(n={self.digraph.num_vertices}, "
            f"m={self.digraph.num_arcs})"
        )
