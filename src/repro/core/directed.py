"""Directed road networks — the Section 8 extension.

The paper sketches the directed case: keep one pair of hierarchies and
store *forward and reverse labels* per vertex, maintaining each with the
same algorithms. Concretely:

* the **structural skeleton** (which pairs are shortcuts) comes from the
  symmetrised graph — structure is weight-independent, so one skeleton
  serves both directions;
* every shortcut pair ``(v, u)`` with ``v`` deeper carries two weights:
  ``wout[v][u]`` for the ascending arc ``v -> u`` and ``win[v][u]`` for
  the descending arc ``u -> v``. Both live in flat per-direction weight
  arrays over one shared :class:`~repro.hierarchy.csr.ShortcutCSR`
  structure, so the frontier-batched maintenance kernels run on either
  direction through a :class:`_DirectionView`;
* two labellings are built with Algorithm 1 parameterised by the weight
  direction: ``L_out[v][i]`` = distance ``v -> ancestor_i`` and
  ``L_in[v][i]`` = distance ``ancestor_i -> v`` within the interval
  subgraph;
* a query is ``d(s, t) = min_i L_out[s][i] + L_in[t][i]`` over the common
  ancestors — the directed 2-hop cover (the minimum-rank vertex of a
  directed shortest path is a common ancestor, and both label entries are
  exact within its descendant subgraph);
* shortcut maintenance couples the two directions (a triangle through a
  deeper vertex composes one descending and one ascending weight), so it
  is implemented here; label maintenance reuses Algorithms 4-7 verbatim
  through direction views.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Iterable

import numpy as np

from repro.core.config import DHLConfig
from repro.core.stats import IndexStats
from repro.exceptions import (
    IndexBuildError,
    MaintenanceError,
    StructuralFallbackRequired,
)
from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph
from repro.hierarchy.csr import CSRShortcutMixin, ShortcutCSR, build_shortcut_csr
from repro.hierarchy.query_hierarchy import QueryHierarchy
from repro.labelling.build import build_labelling
from repro.labelling.labels import HierarchicalLabelling
from repro.labelling.maintenance import (
    MaintenanceStats,
    maintain_labels_decrease,
    maintain_labels_increase,
)
from repro.labelling.maintenance_kernels import (
    labels_decrease_array,
    labels_increase_array,
)
from repro.labelling.parallel import (
    maintain_labels_decrease_parallel,
    maintain_labels_increase_parallel,
)
from repro.partition.recursive import recursive_bisection
from repro.utils.priority_queue import LazyHeap
from repro.utils.timing import Stopwatch

__all__ = ["DirectedDHLIndex"]

WeightChange = tuple[int, int, float]

_OUT = 0  # deeper -> shallower (ascending arcs)
_IN = 1  # shallower -> deeper (descending arcs)


class _DirectionView(CSRShortcutMixin):
    """One direction of the shared shortcut structure.

    Exposes exactly the store surface the label algorithms touch —
    ``tau``/``tau_key``, the structural ``csr`` and the direction's flat
    ``up_weights`` (array kernels), plus the ``up``/``down``/``wup``
    compatibility views (scalar/parallel reference paths and
    Algorithm 1).
    """

    __slots__ = (
        "tau",
        "tau_key",
        "csr",
        "up_weights",
        "_wup",
        "_up_rows",
        "_down_rows",
        "_down_sets",
        "_direct_cache",
    )

    def __init__(self, tau: np.ndarray, csr: ShortcutCSR, weights: np.ndarray):
        self.tau = np.asarray(tau, dtype=np.int64)
        self.tau_key = self.tau.astype(np.float64)
        self.csr = csr
        self.up_weights = weights
        self._reset_csr_caches()


class DirectedDHLIndex:
    """DHL index over a directed graph with forward and reverse labels."""

    kind = "directed"
    # A directed distance is a min over the (out, in) label pair alone,
    # so the certifying hub argument from the undirected index carries
    # over; the serving layer may evict per-pair.
    supports_fine_grained_eviction = True

    def __init__(
        self,
        digraph: DiGraph,
        hq: QueryHierarchy,
        rank: np.ndarray,
        up: list[list[int]],
        wout: list[dict[int, float]],
        win: list[dict[int, float]],
        labels_out: HierarchicalLabelling,
        labels_in: HierarchicalLabelling,
        config: DHLConfig,
        stats: IndexStats,
    ):
        self.digraph = digraph
        self.hq = hq
        self.rank = np.asarray(rank, dtype=np.int64)
        self.rank_key = self.rank.astype(np.float64)
        self.csr, self.out_weights, self.in_weights = build_shortcut_csr(
            up, self.rank, wout, win
        )
        self.labels_out = labels_out
        self.labels_in = labels_in
        self.config = config
        self._stats = stats
        self._out_view = _DirectionView(hq.tau, self.csr, self.out_weights)
        self._in_view = _DirectionView(hq.tau, self.csr, self.in_weights)
        # Monotone maintenance epoch, mirroring DHLIndex: bumped once per
        # applied update batch so the serving layer's result cache (and a
        # worker epoch broadcast) can key on it.
        self._epoch = 0

    @property
    def epoch(self) -> int:
        """Number of maintenance batches applied since construction."""
        return self._epoch

    @property
    def graph(self) -> DiGraph:
        """The authoritative weighted graph (DistanceBackend surface).

        The serving layer's coalescer drains against ``graph.weight``;
        for the directed index that is the digraph itself.
        """
        return self.digraph

    # -- structural/compat views ----------------------------------------
    @property
    def up(self) -> list[np.ndarray]:
        return self._out_view.up

    @property
    def down(self) -> list[np.ndarray]:
        return self._out_view.down

    @property
    def down_sets(self) -> list[set[int]]:
        return self._out_view.down_sets

    @property
    def wout(self):
        return self._out_view.wup

    @property
    def win(self):
        return self._in_view.wup

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, digraph: DiGraph, config: DHLConfig | None = None) -> "DirectedDHLIndex":
        config = config or DHLConfig()
        if digraph.num_vertices == 0:
            raise IndexBuildError("cannot index an empty graph")
        n = digraph.num_vertices
        stats = IndexStats(num_vertices=n, num_edges=digraph.num_arcs)

        watch = Stopwatch()
        with watch:
            skeleton = cls._skeleton(digraph)
            tree = recursive_bisection(
                skeleton,
                beta=config.beta,
                leaf_size=config.leaf_size,
                seed=config.seed,
                coarsest_size=config.coarsest_size,
            )
            hq = QueryHierarchy.from_partition_tree(tree, n)
        stats.partition_seconds = watch.laps[-1]

        with watch:
            rank_, up, wout, win = cls._contract(digraph, hq)
        stats.contraction_seconds = watch.laps[-1]

        index = cls(
            digraph, hq, rank_, up, wout, win,
            # Placeholder labellings; replaced right below once the CSR
            # direction views exist to build against.
            None, None, config, stats,  # type: ignore[arg-type]
        )
        with watch:
            index.labels_out = build_labelling(index._out_view)
            index.labels_in = build_labelling(index._in_view)
        stats.labelling_seconds = watch.laps[-1]
        index._refresh_size_stats()
        return index

    @staticmethod
    def _skeleton(digraph: DiGraph) -> Graph:
        """Symmetrised structural skeleton used for partitioning."""
        g = Graph(digraph.num_vertices, digraph.coords)
        for u, v, w in digraph.arcs():
            if not g.has_edge(u, v):
                reverse = digraph.out_neighbors(v).get(u, math.inf)
                wmin = min(w, reverse)
                if math.isinf(wmin):
                    # Logically deleted in both directions: keep the
                    # structural edge so every arc retains a slot.
                    g.add_edge(u, v, 0.0)
                    g.set_weight(u, v, math.inf)
                else:
                    g.add_edge(u, v, wmin)
        return g

    @staticmethod
    def _contract(digraph: DiGraph, hq: QueryHierarchy):
        """Directed contraction over the symmetric structural skeleton."""
        n = digraph.num_vertices
        order = hq.contraction_order()
        rank = np.empty(n, dtype=np.int64)
        rank[order] = np.arange(n)

        # Working directed adjacency with symmetric key structure:
        # b in work[a] iff a in work[b]; missing arcs carry inf.
        work: list[dict[int, float]] = [{} for _ in range(n)]
        for a, b, w in digraph.arcs():
            work[a][b] = min(work[a].get(b, math.inf), w)
            work[b].setdefault(a, math.inf)

        up: list[list[int]] = [[] for _ in range(n)]
        wout: list[dict[int, float]] = [{} for _ in range(n)]
        win: list[dict[int, float]] = [{} for _ in range(n)]

        for v in order.tolist():
            nbrs = sorted(work[v], key=lambda u: rank[u])
            up[v] = nbrs
            wout[v] = {u: work[v][u] for u in nbrs}
            win[v] = {u: work[u][v] for u in nbrs}
            for i, a in enumerate(nbrs):
                va = work[v][a]  # v -> a
                av = work[a][v]  # a -> v
                del work[a][v]
                for b in nbrs[i + 1 :]:
                    vb = work[v][b]
                    bv = work[b][v]
                    ab = av + vb  # a -> v -> b
                    ba = bv + va  # b -> v -> a
                    row_a, row_b = work[a], work[b]
                    cur_ab = row_a.get(b, math.inf)
                    cur_ba = row_b.get(a, math.inf)
                    row_a[b] = ab if ab < cur_ab else cur_ab
                    row_b[a] = ba if ba < cur_ba else cur_ba
            work[v].clear()
        return rank, up, wout, win

    def _refresh_size_stats(self) -> None:
        self._stats.label_entries = (
            self.labels_out.num_entries + self.labels_in.num_entries
        )
        self._stats.label_bytes = (
            self.labels_out.memory_bytes() + self.labels_in.memory_bytes()
        )
        self._stats.num_shortcuts = self.csr.num_slots
        self._stats.shortcut_bytes = 24 * self._stats.num_shortcuts
        self._stats.hierarchy_bytes = self.hq.memory_bytes()
        self._stats.height = self.hq.height
        self._stats.max_up_degree = int(
            np.diff(self.csr.indptr).max(initial=0)
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def distance(self, s: int, t: int) -> float:
        """Directed shortest-path distance from *s* to *t*."""
        if s == t:
            return 0.0
        k = self.hq.common_ancestor_count(s, t)
        if k <= 0:
            return math.inf
        total = self.labels_out.view(s)[:k] + self.labels_in.view(t)[:k]
        return float(total.min())

    def distances(self, pairs: Iterable[tuple[int, int]]) -> np.ndarray:
        pairs = list(pairs)
        out = np.empty(len(pairs), dtype=np.float64)
        for idx, (s, t) in enumerate(pairs):
            out[idx] = self.distance(s, t)
        return out

    # ------------------------------------------------------------------
    # directional weight helpers
    # ------------------------------------------------------------------
    def _key(self, a: int, b: int) -> tuple[int, int, int]:
        """Orient arc ``a -> b`` onto its shortcut slot.

        Returns ``(lo, hi, direction)`` with ``lo`` the deeper endpoint.
        """
        if self.rank[a] < self.rank[b]:
            return a, b, _OUT
        return b, a, _IN

    def _weights(self, direction: int) -> np.ndarray:
        return self.out_weights if direction == _OUT else self.in_weights

    def _w(self, lo: int, hi: int, direction: int) -> float:
        return float(self._weights(direction)[self.csr.slot_of(lo, hi)])

    def _set_w(self, lo: int, hi: int, direction: int, value: float) -> float:
        weights = self._weights(direction)
        slot = self.csr.slot_of(lo, hi)
        old = float(weights[slot])
        weights[slot] = value
        return old

    # ------------------------------------------------------------------
    # dynamic updates
    # ------------------------------------------------------------------
    def _maintain_labels(
        self,
        affected: dict[int, dict],
        kind: str,
        workers: int | None,
    ) -> MaintenanceStats:
        """Run label maintenance for both directions.

        ``workers`` > 1 explicitly requests the column-parallel
        Algorithms 6/7; otherwise ``config.engine`` picks the sequential
        path (array kernels by default, scalar reference on demand).
        """
        self._epoch += 1
        if not (workers and workers > 1):
            engine = self.config.resolve_engine()
            if engine == "compiled":
                from repro.labelling.compiled import (
                    labels_decrease_compiled,
                    labels_increase_compiled,
                )

                compiled_fn = (
                    labels_decrease_compiled
                    if kind == "decrease"
                    else labels_increase_compiled
                )
                stats = compiled_fn(
                    self._out_view, self.labels_out, affected[_OUT]
                )
                return stats.merge(
                    compiled_fn(self._in_view, self.labels_in, affected[_IN])
                )
            if engine == "array":
                array_fn = (
                    labels_decrease_array
                    if kind == "decrease"
                    else labels_increase_array
                )
                stats = array_fn(self._out_view, self.labels_out, affected[_OUT])
                return stats.merge(
                    array_fn(self._in_view, self.labels_in, affected[_IN])
                )
        if workers and workers > 1:
            parallel_fn = (
                maintain_labels_decrease_parallel
                if kind == "decrease"
                else maintain_labels_increase_parallel
            )
            stats = parallel_fn(
                self._out_view, self.labels_out, affected[_OUT], workers
            )
            return stats.merge(
                parallel_fn(self._in_view, self.labels_in, affected[_IN], workers)
            )
        scalar_fn = (
            maintain_labels_decrease if kind == "decrease" else maintain_labels_increase
        )
        stats = scalar_fn(self._out_view, self.labels_out, affected[_OUT])
        return stats.merge(
            scalar_fn(self._in_view, self.labels_in, affected[_IN])
        )

    def decrease(
        self, changes: Iterable[WeightChange], workers: int | None = None
    ) -> MaintenanceStats:
        """Arc-weight decreases: directed Algorithm 2 + Algorithm 4/6 x2."""
        affected = {_OUT: {}, _IN: {}}
        rank_key = self.rank_key
        heap: LazyHeap[tuple[int, int, int]] = LazyHeap()
        for a, b, w_new in changes:
            old_arc = self.digraph.set_weight(a, b, w_new)
            if w_new > old_arc:
                raise MaintenanceError(
                    f"decrease batch contains an increase on arc ({a}, {b})"
                )
            lo, hi, direction = self._key(a, b)
            if self._w(lo, hi, direction) > w_new:
                affected[direction].setdefault((lo, hi), self._w(lo, hi, direction))
                self._set_w(lo, hi, direction, w_new)
                heap.push((lo, hi, direction), rank_key[lo])

        while heap:
            (lo, hi, direction), _ = heap.pop()
            w_cur = self._w(lo, hi, direction)
            for other in self.up[lo]:
                if other == hi:
                    continue
                if direction == _OUT:
                    # lo->hi changed: affects other->hi via lo.
                    cand = self.win[lo][other] + w_cur
                    src, dst = other, hi
                else:
                    # hi->lo changed: affects hi->other via lo.
                    cand = w_cur + self.wout[lo][other]
                    src, dst = hi, other
                tlo, thi, tdir = self._key(src, dst)
                tslot = self.csr.find_slot(tlo, thi)
                if tslot < 0:
                    # Pair dropped by compaction (both directions were
                    # inf). Pure weight decreases can only produce inf
                    # candidates for it; an insertion-seeded sweep can
                    # produce a finite one, which only a rebuild absorbs.
                    if math.isfinite(cand):
                        raise StructuralFallbackRequired(
                            "directed decrease reached a compacted slot"
                        )
                    continue
                tweights = self._weights(tdir)
                if tweights[tslot] > cand:
                    affected[tdir].setdefault((tlo, thi), float(tweights[tslot]))
                    tweights[tslot] = cand
                    heap.push((tlo, thi, tdir), rank_key[tlo])

        return self._maintain_labels(affected, "decrease", workers)

    def increase(
        self, changes: Iterable[WeightChange], workers: int | None = None
    ) -> MaintenanceStats:
        """Arc-weight increases: directed Algorithm 3 + Algorithm 5/7 x2."""
        rank_key = self.rank_key
        heap: LazyHeap[tuple[int, int, int]] = LazyHeap()
        for a, b, w_new in changes:
            old_arc = self.digraph.set_weight(a, b, w_new)
            if w_new < old_arc:
                raise MaintenanceError(
                    f"increase batch contains a decrease on arc ({a}, {b})"
                )
            lo, hi, direction = self._key(a, b)
            if self._w(lo, hi, direction) == old_arc:
                heap.push((lo, hi, direction), rank_key[lo])

        affected = {_OUT: {}, _IN: {}}
        digraph = self.digraph
        out_weights, in_weights = self.out_weights, self.in_weights
        while heap:
            (lo, hi, direction), _ = heap.pop()
            src, dst = (lo, hi) if direction == _OUT else (hi, lo)
            w_new = digraph.out_neighbors(src).get(dst, math.inf)
            # Property 3.1 over the common down-neighbourhood: a sorted
            # intersection of the two down-CSR rows; each shared x
            # contributes the chain src -> x -> dst (one descending and
            # one ascending weight through the deeper vertex).
            slots_lo, slots_hi = self.csr.common_down(lo, hi)
            if len(slots_lo):
                if direction == _OUT:  # src=lo, dst=hi
                    triangles = in_weights[slots_lo] + out_weights[slots_hi]
                else:  # src=hi, dst=lo
                    triangles = in_weights[slots_hi] + out_weights[slots_lo]
                best = float(triangles.min())
                if best < w_new:
                    w_new = best
            old = self._w(lo, hi, direction)
            if old != w_new:
                for other in self.up[lo]:
                    if other == hi:
                        continue
                    if direction == _OUT:
                        t_src, t_dst = other, hi
                        cand_old = self.win[lo][other] + old
                    else:
                        t_src, t_dst = hi, other
                        cand_old = old + self.wout[lo][other]
                    tlo, thi, tdir = self._key(t_src, t_dst)
                    tslot = self.csr.find_slot(tlo, thi)
                    # Pairs removed by compaction were inf — no suspect.
                    if tslot < 0:
                        continue
                    if self._weights(tdir)[tslot] == cand_old:
                        heap.push((tlo, thi, tdir), rank_key[tlo])
                affected[direction].setdefault((lo, hi), old)
                self._set_w(lo, hi, direction, w_new)

        return self._maintain_labels(affected, "increase", workers)

    def update(
        self, changes: Iterable[WeightChange], workers: int | None = None
    ) -> MaintenanceStats:
        """Mixed batch: increases first, then decreases."""
        increases: list[WeightChange] = []
        decreases: list[WeightChange] = []
        for a, b, w in changes:
            current = self.digraph.weight(a, b)
            if w > current:
                increases.append((a, b, w))
            elif w < current:
                decreases.append((a, b, w))
        stats = MaintenanceStats()
        if increases:
            stats = stats.merge(self.increase(increases, workers))
        if decreases:
            stats = stats.merge(self.decrease(decreases, workers))
        return stats

    def update_coalesced(
        self, changes: Iterable[WeightChange], workers: int | None = None
    ) -> MaintenanceStats:
        """Apply a raw change stream as one merged batch (last write wins).

        Directed counterpart of :meth:`DHLIndex.update_coalesced`: the
        coalescing key is the *ordered* arc ``(a, b)`` — a digraph's two
        directions are distinct roads and must not merge.
        """
        final: dict[tuple[int, int], float] = {}
        for a, b, w in changes:
            final[(a, b)] = w
        return self.update([(a, b, w) for (a, b), w in final.items()], workers)

    # ------------------------------------------------------------------
    # structural updates — implemented in core.structural
    # ------------------------------------------------------------------
    def apply_batch(
        self,
        insertions: Iterable[WeightChange] = (),
        deletions: Iterable[tuple[int, int]] = (),
        weight_changes: Iterable[WeightChange] = (),
        workers: int | None = None,
    ):
        """Apply one mixed structural arc batch; see
        :func:`repro.core.structural.apply_batch_directed`."""
        from repro.core.structural import apply_batch_directed

        return apply_batch_directed(
            self, insertions, deletions, weight_changes, workers
        )

    def compact(self):
        """Reclaim dead shortcut slots (both directions inf) and label
        slack; see :func:`repro.core.structural.compact_directed_index`."""
        from repro.core.structural import compact_directed_index

        return compact_directed_index(self)

    @property
    def dead_fraction(self) -> float:
        """Fraction of shortcut slots dead in both directions."""
        from repro.core.structural import dead_fraction

        return dead_fraction(self.out_weights, self.in_weights)

    @property
    def structural_counters(self) -> dict[str, int]:
        """Lifetime structural counters (see :class:`DHLIndex`)."""
        from repro.core.structural import structural_counters

        return structural_counters(self)

    # ------------------------------------------------------------------
    # persistence and introspection
    # ------------------------------------------------------------------
    def save(self, path: "str | Path") -> None:
        """Persist the directed index (manifest + npz + flat label npy)."""
        from repro.core.serialization import save_directed_index

        save_directed_index(self, Path(path))

    @classmethod
    def load(
        cls, path: "str | Path", mmap_labels: bool = False, verify: bool = True
    ) -> "DirectedDHLIndex":
        """Load an index written by :meth:`save`; ``mmap_labels`` maps the
        two label stores read-only for near-instant start-up."""
        from repro.core.serialization import load_directed_index

        return load_directed_index(Path(path), mmap_labels=mmap_labels, verify=verify)

    def stats(self) -> IndexStats:
        self._refresh_size_stats()
        return self._stats

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        return (
            f"DirectedDHLIndex(n={self.digraph.num_vertices}, "
            f"m={self.digraph.num_arcs})"
        )
