"""Index persistence: JSON manifest + npz arrays in a directory.

The format is explicit (no pickle): a ``manifest.json`` with scalar
metadata and the partition-node bitstrings (arbitrary-precision ints are
stored as decimal strings), plus an ``arrays.npz`` holding every numeric
table. Ragged structures (labels, shortcut lists, node members) are
flattened with offset arrays.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.exceptions import SerializationError
from repro.graph.io import graph_from_json, graph_to_json
from repro.hierarchy.contraction import ContractionResult
from repro.hierarchy.query_hierarchy import QueryHierarchy
from repro.hierarchy.update_hierarchy import UpdateHierarchy
from repro.labelling.labels import HierarchicalLabelling

__all__ = ["save_index", "load_index"]

_FORMAT_VERSION = 1


def _flatten_ragged(rows: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    offsets = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum([len(r) for r in rows], out=offsets[1:])
    flat = np.concatenate(rows) if rows else np.zeros(0)
    return flat, offsets


def _unflatten(flat: np.ndarray, offsets: np.ndarray) -> list[np.ndarray]:
    return [flat[offsets[i]:offsets[i + 1]] for i in range(len(offsets) - 1)]


def save_index(index, path: Path) -> None:
    """Write *index* (a :class:`~repro.core.index.DHLIndex`) to *path*."""
    path.mkdir(parents=True, exist_ok=True)
    hq = index.hq
    hu = index.hu
    labels = index.labels

    label_flat, label_offsets = _flatten_ragged(labels.arrays)
    up_rows = [np.asarray(u, dtype=np.int64) for u in hu.up]
    up_flat, up_offsets = _flatten_ragged(up_rows)
    wup_rows = [
        np.asarray([hu.wup[v][u] for u in hu.up[v]], dtype=np.float64)
        for v in range(len(hu.up))
    ]
    wup_flat, _ = _flatten_ragged(wup_rows)
    member_rows = [np.asarray(m, dtype=np.int64) for m in hq.node_members]
    members_flat, members_offsets = _flatten_ragged(member_rows)

    np.savez_compressed(
        path / "arrays.npz",
        tau=hq.tau,
        node_of=hq.node_of,
        node_depth=np.asarray(hq.node_depth, dtype=np.int64),
        node_vstart=np.asarray(hq.node_vstart, dtype=np.int64),
        node_vend=np.asarray(hq.node_vend, dtype=np.int64),
        node_parent=np.asarray(hq.node_parent, dtype=np.int64),
        members_flat=members_flat,
        members_offsets=members_offsets,
        order=hu.order,
        up_flat=up_flat,
        up_offsets=up_offsets,
        wup_flat=wup_flat,
        label_flat=label_flat,
        label_offsets=label_offsets,
    )
    manifest = {
        "format_version": _FORMAT_VERSION,
        "n": index.graph.num_vertices,
        "config": {
            "beta": index.config.beta,
            "leaf_size": index.config.leaf_size,
            "seed": index.config.seed,
            "coarsest_size": index.config.coarsest_size,
            "workers": index.config.workers,
            "validate": index.config.validate,
        },
        # Bitstrings can exceed 64 bits for deep trees: store as strings.
        "node_bits": [str(b) for b in hq.node_bits],
        "graph": json.loads(graph_to_json(index.graph)),
    }
    (path / "manifest.json").write_text(json.dumps(manifest))


def load_index(path: Path):
    """Load a :class:`~repro.core.index.DHLIndex` saved by :func:`save_index`."""
    from repro.core.config import DHLConfig
    from repro.core.index import DHLIndex
    from repro.core.stats import IndexStats

    manifest_path = path / "manifest.json"
    arrays_path = path / "arrays.npz"
    if not manifest_path.exists() or not arrays_path.exists():
        raise SerializationError(f"{path} does not contain a saved DHL index")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"corrupt manifest: {exc}") from exc
    if manifest.get("format_version") != _FORMAT_VERSION:
        raise SerializationError(
            f"unsupported format version {manifest.get('format_version')!r}"
        )
    data = np.load(arrays_path)
    graph = graph_from_json(json.dumps(manifest["graph"]))
    config = DHLConfig(**manifest["config"])

    n = manifest["n"]
    member_rows = _unflatten(data["members_flat"], data["members_offsets"])
    node_parent = data["node_parent"].tolist()
    node_vend = data["node_vend"].tolist()
    # vend chains are derivable: chain(node) = chain(parent) + [vend].
    node_vend_chain: list[np.ndarray] = []
    for nid, parent in enumerate(node_parent):
        if parent < 0:
            node_vend_chain.append(np.array([node_vend[nid]], dtype=np.int64))
        else:
            node_vend_chain.append(
                np.append(node_vend_chain[parent], node_vend[nid])
            )
    hq = QueryHierarchy(
        n,
        data["tau"],
        data["node_of"],
        data["node_depth"].tolist(),
        [int(b) for b in manifest["node_bits"]],
        data["node_vstart"].tolist(),
        node_vend,
        node_parent,
        [m.tolist() for m in member_rows],
        node_vend_chain,
    )

    order = data["order"]
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n)
    up_rows = _unflatten(data["up_flat"], data["up_offsets"])
    up = [row.tolist() for row in up_rows]
    wup_flat = data["wup_flat"]
    offsets = data["up_offsets"]
    wup = [
        dict(zip(up[v], wup_flat[offsets[v]:offsets[v + 1]].tolist()))
        for v in range(n)
    ]
    base = ContractionResult(graph, order, rank, up, wup)
    hu = UpdateHierarchy(base, hq)

    label_rows = _unflatten(data["label_flat"], data["label_offsets"])
    labels = HierarchicalLabelling([np.array(r) for r in label_rows], hq.tau)

    stats = IndexStats(num_vertices=n, num_edges=graph.num_edges)
    index = DHLIndex(graph, hq, hu, labels, config, stats)
    index._refresh_size_stats()
    return index
