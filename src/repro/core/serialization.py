"""Index persistence: JSON manifest + npz arrays + flat label snapshots.

The format is explicit (no pickle): a ``manifest.json`` with scalar
metadata and the partition-node bitstrings (arbitrary-precision ints are
stored as decimal strings), an ``arrays.npz`` holding the hierarchy and
shortcut tables (ragged structures flattened with offset arrays), and
the labelling dumped as bare ``.npy`` files — ``label_values.npy`` plus
``label_offsets.npy`` — exactly the flat CSR store's two arrays.

Dumping the label store as uncompressed ``.npy`` is what enables the
memory-map fast path: ``load_index(path, mmap_labels=True)`` opens the
value buffer with ``np.load(mmap_mode="r")``, so a saved index starts
serving queries near-instantly (label pages fault in on demand) while
maintenance transparently materialises a writable copy on first update
(:meth:`HierarchicalLabelling.ensure_writable`).

Both the undirected :class:`~repro.core.index.DHLIndex` and the
directed :class:`~repro.core.directed.DirectedDHLIndex` persist here;
the manifest's ``kind`` field tells the loaders apart.

**Crash safety.** Every save is atomic: the snapshot is written into a
hidden sibling temp directory, a per-directory ``checksums.json``
manifest (CRC32 of every file) is added, all files and directories are
fsynced, and the temp directory is renamed over the destination in one
step. A crash mid-save leaves the previous snapshot untouched; a crash
mid-rename leaves either the old or the new snapshot, never a torn mix.
Loads verify the manifests by default (``verify=False`` opts out) and
raise :class:`~repro.exceptions.SnapshotCorruptionError` naming the
first missing or corrupt file; :func:`verify_snapshot` runs the same
check standalone, e.g. before promoting a replicated snapshot.
"""

from __future__ import annotations

import json
import os
import shutil
import zlib
from pathlib import Path

import numpy as np

from repro.exceptions import SerializationError, SnapshotCorruptionError
from repro.graph.digraph import DiGraph
from repro.graph.io import graph_from_json, graph_to_json
from repro.hierarchy.contraction import ContractionResult
from repro.hierarchy.query_hierarchy import QueryHierarchy
from repro.hierarchy.update_hierarchy import UpdateHierarchy
from repro.labelling.labels import HierarchicalLabelling

__all__ = [
    "save_index",
    "load_index",
    "save_directed_index",
    "load_directed_index",
    "save_sharded_index",
    "load_sharded_index",
    "verify_snapshot",
]

_FORMAT_VERSION = 2
# Sharded snapshots (format v3) are a directory of per-shard v2
# snapshot directories plus partition metadata, so every shard's label
# store keeps the mmap fast path.
_SHARDED_FORMAT_VERSION = 3


_CHECKSUM_MANIFEST = "checksums.json"


def _crc32_file(path: Path) -> int:
    crc = 0
    with path.open("rb") as fh:
        while True:
            chunk = fh.read(1 << 20)
            if not chunk:
                break
            crc = zlib.crc32(chunk, crc)
    return crc


def _fsync_path(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _write_checksums(root: Path) -> None:
    """Seal every directory under *root* with a CRC32 manifest.

    Directories that already carry a manifest are left alone — a nested
    atomic save (each shard of a sharded snapshot) sealed them itself,
    and re-hashing its label buffers here would double the write cost.
    """
    for dirpath, _dirnames, filenames in os.walk(root):
        d = Path(dirpath)
        if _CHECKSUM_MANIFEST in filenames:
            continue
        files = {
            name: _crc32_file(d / name)
            for name in sorted(filenames)
        }
        (d / _CHECKSUM_MANIFEST).write_text(
            json.dumps({"crc32": files}, sort_keys=True)
        )


def _atomic_snapshot(path: Path, writer) -> None:
    """Run *writer* against a temp directory, seal it, swap it in.

    The destination only ever holds a complete snapshot: *writer*
    populates ``.{name}.tmp-{pid}``, checksums are recorded, everything
    is fsynced, and one ``rename`` publishes the result (displacing any
    previous snapshot, which is removed only after the new one is in
    place). On failure the temp tree is discarded and the previous
    snapshot, if any, is restored untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.tmp-{os.getpid()}"
    old = path.parent / f".{path.name}.old-{os.getpid()}"
    if tmp.exists():
        shutil.rmtree(tmp)
    if old.exists():
        shutil.rmtree(old)
    tmp.mkdir()
    try:
        writer(tmp)
        _write_checksums(tmp)
        for dirpath, _dirnames, filenames in os.walk(tmp, topdown=False):
            for name in filenames:
                _fsync_path(Path(dirpath) / name)
            _fsync_path(Path(dirpath))
        if path.exists():
            os.rename(path, old)
        os.rename(tmp, path)
        _fsync_path(path.parent)
        if old.exists():
            shutil.rmtree(old)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        if old.exists() and not path.exists():
            os.rename(old, path)
        raise


def verify_snapshot(path: Path) -> int:
    """Check every snapshot file against its directory's CRC manifest.

    Walks *path* recursively; each directory must carry the
    ``checksums.json`` written at save time, every recorded file must
    exist, and its CRC32 must match. Returns the number of files
    verified; raises :class:`SnapshotCorruptionError` naming the first
    torn or corrupt file. Extra files (editor droppings, OS metadata)
    are ignored.
    """
    path = Path(path)
    if not path.is_dir():
        raise SnapshotCorruptionError(f"{path} is not a snapshot directory")
    checked = 0
    for dirpath, _dirnames, filenames in os.walk(path):
        d = Path(dirpath)
        manifest_path = d / _CHECKSUM_MANIFEST
        if not manifest_path.exists():
            raise SnapshotCorruptionError(
                f"{d} has no {_CHECKSUM_MANIFEST}; the snapshot predates "
                "the checksummed format or its manifest was lost"
            )
        try:
            recorded = json.loads(manifest_path.read_text())["crc32"]
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise SnapshotCorruptionError(
                f"unreadable checksum manifest in {d}: {exc}"
            ) from exc
        present = set(filenames)
        missing = sorted(name for name in recorded if name not in present)
        if missing:
            raise SnapshotCorruptionError(
                f"snapshot {d} is torn: missing {missing}"
            )
        for name in sorted(recorded):
            crc = recorded[name]
            actual = _crc32_file(d / name)
            if actual != crc:
                raise SnapshotCorruptionError(
                    f"{d / name} is corrupt: manifest records crc32 "
                    f"{crc:#010x}, file hashes to {actual:#010x}"
                )
            checked += 1
    return checked


def _flatten_ragged(rows: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    offsets = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum([len(r) for r in rows], out=offsets[1:])
    flat = np.concatenate(rows) if rows else np.zeros(0)
    return flat, offsets


def _unflatten(flat: np.ndarray, offsets: np.ndarray) -> list[np.ndarray]:
    return [flat[offsets[i] : offsets[i + 1]] for i in range(len(offsets) - 1)]


def _save_labels(path: Path, labels: HierarchicalLabelling, prefix: str) -> None:
    """Dump the flat store as two bare .npy files (mmap-able on load).

    Uses the same packed ``(values, offsets)`` pair that shard workers
    attach over shared memory (:meth:`HierarchicalLabelling
    .export_buffers`), so the on-disk layout and the cross-process
    layout are one format.
    """
    values, offsets = labels.export_buffers()
    np.save(path / f"{prefix}_values.npy", np.ascontiguousarray(values))
    np.save(path / f"{prefix}_offsets.npy", offsets)


def _load_labels(
    path: Path, prefix: str, tau: np.ndarray, mmap: bool
) -> HierarchicalLabelling:
    values_path = path / f"{prefix}_values.npy"
    offsets_path = path / f"{prefix}_offsets.npy"
    if not values_path.exists() or not offsets_path.exists():
        raise SerializationError(f"{path} is missing the {prefix} label snapshot")
    mode = "r" if mmap else None
    values = np.load(values_path, mmap_mode=mode)
    offsets = np.load(offsets_path)
    return HierarchicalLabelling(values, offsets, np.diff(offsets), tau)


def _hq_payload(hq: QueryHierarchy) -> dict[str, np.ndarray]:
    member_rows = [np.asarray(m, dtype=np.int64) for m in hq.node_members]
    members_flat, members_offsets = _flatten_ragged(member_rows)
    return {
        "tau": hq.tau,
        "node_of": hq.node_of,
        "node_depth": np.asarray(hq.node_depth, dtype=np.int64),
        "node_vstart": np.asarray(hq.node_vstart, dtype=np.int64),
        "node_vend": np.asarray(hq.node_vend, dtype=np.int64),
        "node_parent": np.asarray(hq.node_parent, dtype=np.int64),
        "members_flat": members_flat,
        "members_offsets": members_offsets,
    }


def _hq_from_payload(data, node_bits: list[int], n: int) -> QueryHierarchy:
    member_rows = _unflatten(data["members_flat"], data["members_offsets"])
    node_parent = data["node_parent"].tolist()
    node_vend = data["node_vend"].tolist()
    # vend chains are derivable: chain(node) = chain(parent) + [vend].
    node_vend_chain: list[np.ndarray] = []
    for nid, parent in enumerate(node_parent):
        if parent < 0:
            node_vend_chain.append(np.array([node_vend[nid]], dtype=np.int64))
        else:
            node_vend_chain.append(
                np.append(node_vend_chain[parent], node_vend[nid])
            )
    return QueryHierarchy(
        n,
        data["tau"],
        data["node_of"],
        data["node_depth"].tolist(),
        node_bits,
        data["node_vstart"].tolist(),
        node_vend,
        node_parent,
        [m.tolist() for m in member_rows],
        node_vend_chain,
    )


def _config_payload(config) -> dict:
    return {
        "beta": config.beta,
        "leaf_size": config.leaf_size,
        "seed": config.seed,
        "coarsest_size": config.coarsest_size,
        "workers": config.workers,
        "engine": config.engine,
        "validate": config.validate,
    }


def _read_manifest(path: Path, expected_kind: str) -> dict:
    manifest_path = path / "manifest.json"
    arrays_path = path / "arrays.npz"
    if not manifest_path.exists() or not arrays_path.exists():
        raise SerializationError(f"{path} does not contain a saved DHL index")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"corrupt manifest: {exc}") from exc
    if manifest.get("format_version") != _FORMAT_VERSION:
        raise SerializationError(
            f"unsupported format version {manifest.get('format_version')!r}"
        )
    kind = manifest.get("kind", "undirected")
    if kind != expected_kind:
        raise SerializationError(
            f"{path} holds a {kind} index; expected {expected_kind}"
        )
    return manifest


# ---------------------------------------------------------------------------
# undirected DHLIndex
# ---------------------------------------------------------------------------

def save_index(index, path: Path) -> None:
    """Write *index* (a :class:`~repro.core.index.DHLIndex`) to *path*.

    Atomic: the snapshot lands complete (checksummed + fsynced +
    renamed into place) or not at all.
    """
    _atomic_snapshot(Path(path), lambda tmp: _write_index_contents(index, tmp))


def _write_index_contents(index, path: Path) -> None:
    path.mkdir(parents=True, exist_ok=True)
    hq = index.hq
    hu = index.hu

    # The CSR shortcut store is already the on-disk ragged layout:
    # rank-sorted rows, weights aligned slot-for-slot.
    np.savez_compressed(
        path / "arrays.npz",
        order=hu.order,
        up_flat=hu.up_indices,
        up_offsets=hu.up_indptr,
        wup_flat=hu.up_weights,
        **_hq_payload(hq),
    )
    _save_labels(path, index.labels, "label")
    manifest = {
        "format_version": _FORMAT_VERSION,
        "kind": "undirected",
        "n": index.graph.num_vertices,
        "config": _config_payload(index.config),
        # Bitstrings can exceed 64 bits for deep trees: store as strings.
        "node_bits": [str(b) for b in hq.node_bits],
        "graph": json.loads(graph_to_json(index.graph)),
    }
    (path / "manifest.json").write_text(json.dumps(manifest))


def _warmup_for(config) -> None:
    """JIT-compile the numba kernels when a loaded index will use them.

    Loading is the serving cold-start path: warming here keeps kernel
    compilation off the first query/maintenance request. No-op (beyond
    the one-time downgrade warning) when numba is unavailable.
    """
    if config.resolve_engine() == "compiled":
        from repro.labelling.compiled import warmup_kernels

        warmup_kernels()


def load_index(path: Path, mmap_labels: bool = False, verify: bool = True):
    """Load a :class:`~repro.core.index.DHLIndex` saved by :func:`save_index`.

    With ``mmap_labels=True`` the label value buffer is opened with
    ``np.load(mmap_mode="r")``: load returns near-instantly and queries
    stream label pages off disk; the first maintenance batch materialises
    a writable in-memory copy.

    ``verify=True`` (the default) checks every file against the CRC32
    manifest first and raises :class:`SnapshotCorruptionError` on a torn
    or damaged snapshot — one streaming pass over the bytes, which also
    warms the page cache the mmap path will fault in anyway. Pass
    ``verify=False`` only when the snapshot was just verified elsewhere.
    """
    from repro.core.config import DHLConfig
    from repro.core.index import DHLIndex
    from repro.core.stats import IndexStats

    if verify:
        verify_snapshot(path)
    manifest = _read_manifest(path, "undirected")
    data = np.load(path / "arrays.npz")
    graph = graph_from_json(json.dumps(manifest["graph"]))
    config = DHLConfig(**manifest["config"])
    _warmup_for(config)

    n = manifest["n"]
    hq = _hq_from_payload(data, [int(b) for b in manifest["node_bits"]], n)

    order = data["order"]
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n)
    up_rows = _unflatten(data["up_flat"], data["up_offsets"])
    up = [row.tolist() for row in up_rows]
    wup_flat = data["wup_flat"]
    offsets = data["up_offsets"]
    wup = [
        dict(zip(up[v], wup_flat[offsets[v] : offsets[v + 1]].tolist()))
        for v in range(n)
    ]
    base = ContractionResult(graph, order, rank, up, wup)
    hu = UpdateHierarchy(base, hq)

    labels = _load_labels(path, "label", hq.tau, mmap_labels)

    stats = IndexStats(num_vertices=n, num_edges=graph.num_edges)
    index = DHLIndex(graph, hq, hu, labels, config, stats)
    index._refresh_size_stats()
    return index


# ---------------------------------------------------------------------------
# directed DirectedDHLIndex
# ---------------------------------------------------------------------------

def save_directed_index(index, path: Path) -> None:
    """Write a :class:`~repro.core.directed.DirectedDHLIndex` to *path*.

    Atomic, like :func:`save_index`.
    """
    _atomic_snapshot(
        Path(path), lambda tmp: _write_directed_contents(index, tmp)
    )


def _write_directed_contents(index, path: Path) -> None:
    path.mkdir(parents=True, exist_ok=True)
    hq = index.hq
    n = index.digraph.num_vertices

    # The shared shortcut structure and both direction weight arrays are
    # already flat CSR — dump them slot-for-slot.
    up_flat = index.csr.indices
    up_offsets = index.csr.indptr
    wout_flat = index.out_weights
    win_flat = index.in_weights

    arcs = list(index.digraph.arcs())
    arc_src = np.asarray([a for a, _, _ in arcs], dtype=np.int64)
    arc_dst = np.asarray([b for _, b, _ in arcs], dtype=np.int64)
    arc_weight = np.asarray([w for _, _, w in arcs], dtype=np.float64)

    extra = {}
    if index.digraph.coords is not None:
        extra["coords"] = index.digraph.coords
    np.savez_compressed(
        path / "arrays.npz",
        up_flat=up_flat,
        up_offsets=up_offsets,
        wout_flat=wout_flat,
        win_flat=win_flat,
        arc_src=arc_src,
        arc_dst=arc_dst,
        arc_weight=arc_weight,
        **_hq_payload(hq),
        **extra,
    )
    _save_labels(path, index.labels_out, "label_out")
    _save_labels(path, index.labels_in, "label_in")
    manifest = {
        "format_version": _FORMAT_VERSION,
        "kind": "directed",
        "n": n,
        "config": _config_payload(index.config),
        "node_bits": [str(b) for b in hq.node_bits],
    }
    (path / "manifest.json").write_text(json.dumps(manifest))


def load_directed_index(path: Path, mmap_labels: bool = False, verify: bool = True):
    """Load an index saved by :func:`save_directed_index`.

    The same ``mmap_labels`` fast path and ``verify`` integrity check as
    :func:`load_index` apply, covering both direction stores.
    """
    from repro.core.config import DHLConfig
    from repro.core.directed import DirectedDHLIndex
    from repro.core.stats import IndexStats

    if verify:
        verify_snapshot(path)
    manifest = _read_manifest(path, "directed")
    data = np.load(path / "arrays.npz")
    config = DHLConfig(**manifest["config"])
    _warmup_for(config)
    n = manifest["n"]

    coords = data["coords"] if "coords" in data else None
    digraph = DiGraph(n, coords)
    for a, b, w in zip(
        data["arc_src"].tolist(),
        data["arc_dst"].tolist(),
        data["arc_weight"].tolist(),
    ):
        if np.isfinite(w):
            digraph.add_arc(a, b, w)
        else:  # logically deleted arc: allocate the slot, then mark
            digraph.add_arc(a, b, 0.0)
            digraph.set_weight(a, b, w)

    hq = _hq_from_payload(data, [int(b) for b in manifest["node_bits"]], n)
    order = hq.contraction_order()
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n)

    up_rows = _unflatten(data["up_flat"], data["up_offsets"])
    up = [row.tolist() for row in up_rows]
    offsets = data["up_offsets"]
    wout_flat = data["wout_flat"]
    win_flat = data["win_flat"]
    wout = [
        dict(zip(up[v], wout_flat[offsets[v] : offsets[v + 1]].tolist()))
        for v in range(n)
    ]
    win = [
        dict(zip(up[v], win_flat[offsets[v] : offsets[v + 1]].tolist()))
        for v in range(n)
    ]

    labels_out = _load_labels(path, "label_out", hq.tau, mmap_labels)
    labels_in = _load_labels(path, "label_in", hq.tau, mmap_labels)

    stats = IndexStats(num_vertices=n, num_edges=digraph.num_arcs)
    index = DirectedDHLIndex(
        digraph, hq, rank, up, wout, win,
        labels_out, labels_in, config, stats,
    )
    index._refresh_size_stats()
    return index


# ---------------------------------------------------------------------------
# sharded ShardedDHLIndex (format v3)
# ---------------------------------------------------------------------------

def save_sharded_index(index, path: Path) -> None:
    """Write a :class:`~repro.core.sharded.ShardedDHLIndex` to *path*.

    Layout: ``manifest.json`` (scalars + global graph + region
    assignment), one ``shard_NN/`` v2 snapshot directory per region,
    and ``overlay/`` for the boundary index when one exists. Each
    component directory is a complete, individually loadable index with
    bare ``.npy`` label arrays — the mmap fast path applies per shard.

    Atomic at both levels: each shard snapshot is sealed by its own
    :func:`save_index`, and the whole directory swaps in as one rename.
    """
    _atomic_snapshot(
        Path(path), lambda tmp: _write_sharded_contents(index, tmp)
    )


def _write_sharded_contents(index, path: Path) -> None:
    path.mkdir(parents=True, exist_ok=True)
    for i, shard in enumerate(index.shards):
        save_index(shard, path / f"shard_{i:02d}")
    if index.overlay is not None:
        save_index(index.overlay, path / "overlay")
    np.save(path / "region_of.npy", np.asarray(index.region_of, dtype=np.int64))
    manifest = {
        "format_version": _SHARDED_FORMAT_VERSION,
        "kind": "sharded",
        "k": index.k,
        "n": index.graph.num_vertices,
        "has_overlay": index.overlay is not None,
        "config": _config_payload(index.config),
        "graph": json.loads(graph_to_json(index.graph)),
    }
    (path / "manifest.json").write_text(json.dumps(manifest))


def load_sharded_index(path: Path, mmap_labels: bool = False, verify: bool = True):
    """Load an index saved by :func:`save_sharded_index`.

    ``mmap_labels=True`` propagates to every shard and the overlay:
    each component's label values open with ``np.load(mmap_mode="r")``.
    ``verify=True`` checks the whole tree (every shard, the overlay, the
    partition arrays) in one recursive pass before any component loads,
    so per-component loads skip their own re-verification.
    """
    from repro.core.config import DHLConfig
    from repro.core.sharded import ShardedDHLIndex, ShardedIndexStats
    from repro.partition.regions import regions_from_assignment

    if verify:
        verify_snapshot(path)
    manifest_path = path / "manifest.json"
    if not manifest_path.exists():
        raise SerializationError(f"{path} does not contain a saved sharded index")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"corrupt manifest: {exc}") from exc
    if manifest.get("format_version") != _SHARDED_FORMAT_VERSION:
        raise SerializationError(
            f"unsupported sharded format version "
            f"{manifest.get('format_version')!r}"
        )
    if manifest.get("kind") != "sharded":
        raise SerializationError(
            f"{path} holds a {manifest.get('kind')!r} index; expected sharded"
        )
    graph = graph_from_json(json.dumps(manifest["graph"]))
    config = DHLConfig(**manifest["config"])
    _warmup_for(config)
    region_of = np.load(path / "region_of.npy")
    partition = regions_from_assignment(graph, region_of)
    if partition.k != manifest["k"]:
        raise SerializationError(
            f"stored assignment has {partition.k} regions, manifest says "
            f"{manifest['k']}"
        )
    shards = [
        load_index(path / f"shard_{i:02d}", mmap_labels=mmap_labels, verify=False)
        for i in range(manifest["k"])
    ]
    overlay = (
        load_index(path / "overlay", mmap_labels=mmap_labels, verify=False)
        if manifest["has_overlay"]
        else None
    )
    stats = ShardedIndexStats(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        k=partition.k,
        boundary_vertices=sum(len(b) for b in partition.boundary),
        cut_edges=len(partition.cut_edges),
        overlay_edges=overlay.graph.num_edges if overlay is not None else 0,
    )
    index = ShardedDHLIndex(graph, partition, shards, overlay, config, stats)
    index._refresh_size_stats()
    return index
