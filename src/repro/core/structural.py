"""Batch-dynamic structural updates — insert/delete fast paths.

The paper treats topology as stable (Section 8) and handles exceptions
coarsely: insertion repartitioned the LCA subtree and rebuilt H_U and L
wholesale, deletion left infinite-weight slots allocated forever. This
module replaces that with a batched engine in the BatchHL+ direction
(VLDB 2023): mixed batches of insertions, deletions and weight changes
are reflected through the existing frontier-batched maintenance kernels,
with rebuilds reserved for the cases that genuinely invalidate the
hierarchy.

**Deletion fast path.** A deletion is an infinite-weight increase
through ``shortcuts_increase_array`` / ``labels_increase_array``; the
slot stays allocated but is *logically dead*. The compaction pass
(below) reclaims dead slots once their fraction crosses the configured
threshold.

**Insertion fast path.** The shortcut structure of a fixed contraction
order is the transitive closure of a clique invariant: contracting ``v``
adds a shortcut between every pair of its not-yet-contracted neighbours,
so every up-row is a clique. Adding edge ``(u, v)`` while *keeping the
contraction order* therefore adds exactly the closure of the pair
``(u, v)``: for each new pair ``(lo, hi)`` (``lo`` deeper), every
partner ``x`` in ``lo``'s final up-row needs the pair ``(x, hi)``, and
so on upward. Two gates guard the fast path:

* ``hq.comparable(u, v)`` — a vertex's ancestors form a chain, so the
  whole closure is automatically ⪯_H-comparable when the seed pair is;
  an *incomparable* new edge violates the separator property of H_Q and
  forces the repartition fallback. Endpoints sharing a leaf node of H_Q
  are always comparable — the common fast case.
* the closure size against ``config.insert_closure_limit`` — a closure
  that outgrows the budget (the new arc's LCA subtree is large) falls
  back to rebuilding H_U + L on the *same* H_Q, which is still far
  cheaper than repartitioning and works on snapshot-loaded indexes
  (whose partition tree is not persisted).

Qualifying batches allocate their closure slots in one
:func:`~repro.hierarchy.csr.extend_slots` merge (weights ``inf`` —
allocated, not yet relaxed), add the new edges as logically-deleted, and
seed one decrease sweep from the new arcs: the monotone min-relaxation
from ``inf`` reaches exactly the Property-3.1 fixpoint of the extended
store. Insertion-seeded sweeps always run through the *guarded* array
kernel (every engine): on a previously compacted store the sweep can
produce a finite candidate for a removed pair, which the guard converts
into :class:`~repro.exceptions.StructuralFallbackRequired` → rebuild.

**Compaction.** Dead slots (weight ``inf``; both directions for the
directed index) are squeezed out of the CSR store, their graph edges
removed physically, and label-store slack repacked. Removing only inf
slots preserves the minimum-weight property of every surviving slot
(triangles through a removed slot contributed ``inf``) and pure weight
maintenance can never miss them (see the kernel guards); deletions
become *permanent* — restoring a compacted edge routes through the
insertion path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import MaintenanceError, StructuralFallbackRequired
from repro.graph.graph import Graph
from repro.hierarchy.csr import ShortcutCSR, compact_slots, extend_slots
from repro.hierarchy.query_hierarchy import QueryHierarchy
from repro.hierarchy.update_hierarchy import UpdateHierarchy
from repro.labelling.build import build_labelling
from repro.labelling.maintenance import MaintenanceStats
from repro.observability.phases import phase
from repro.partition.recursive import PartitionTreeNode, recursive_bisection

__all__ = [
    "StructuralStats",
    "CompactionStats",
    "apply_batch",
    "apply_batch_directed",
    "compact_index",
    "compact_directed_index",
    "dead_fraction",
    "delete_edge",
    "restore_edge",
    "delete_vertex",
    "insert_edge",
]

#: Accounting bytes per shortcut slot (weights + indices + derived),
#: matching the ``shortcut_bytes`` convention of ``IndexStats``.
_SLOT_BYTES = 24


@dataclass
class StructuralStats:
    """Outcome of one :func:`apply_batch` call.

    ``maintenance`` merges the kernel stats of every sub-pass (the
    serving layer evicts caches from its ``affected_labels``);
    the counters say *how* the batch was absorbed — how many arcs took
    the insertion fast path versus a fallback rebuild, how many slots
    the closure allocated, and how many deletions were dropped because
    the edge was already dead (the ``already_deleted`` counter the bare
    ``delete_edge`` used to swallow).
    """

    maintenance: MaintenanceStats = field(default_factory=MaintenanceStats)
    inserted: int = 0
    deleted: int = 0
    weight_changed: int = 0
    already_deleted: int = 0
    fastpath_inserts: int = 0
    fallback_rebuilds: int = 0
    repartitions: int = 0
    new_slots: int = 0


@dataclass
class CompactionStats:
    """Outcome of one compaction pass."""

    dead_slots_reclaimed: int = 0
    bytes_reclaimed: int = 0


def structural_counters(index) -> dict[str, int]:
    """The index's persistent structural counters (created on demand)."""
    counters = getattr(index, "_structural_counters", None)
    if counters is None:
        counters = index._structural_counters = {
            "already_deleted_edges": 0,
            "fastpath_inserts": 0,
            "fallback_rebuilds": 0,
            "compactions": 0,
            "dead_slots_reclaimed": 0,
            "bytes_reclaimed": 0,
        }
    return counters


def _bump(index, key: str, by: int = 1) -> None:
    counters = structural_counters(index)
    counters[key] = counters.get(key, 0) + by


# ---------------------------------------------------------------------------
# insertion closure
# ---------------------------------------------------------------------------

def _ordered_pair(rank: np.ndarray, u: int, v: int) -> tuple[int, int]:
    """``(lo, hi)`` with ``lo`` the deeper (earlier-contracted) endpoint."""
    return (u, v) if rank[u] < rank[v] else (v, u)


def _insertion_closure(
    csr: ShortcutCSR,
    rank: np.ndarray,
    pairs: list[tuple[int, int]],
    limit: int,
) -> list[tuple[int, int]] | None:
    """Transitive closure of new shortcut pairs under the clique invariant.

    For each genuinely new pair ``(lo, hi)``, every partner in ``lo``'s
    final up-row (existing row plus partners this closure adds) must
    also pair with ``hi`` — the exact set of shortcuts
    ``contract_in_order`` would create for the same order on the updated
    graph. Returns the new pairs (deterministic order), or ``None`` when
    the closure exceeds *limit* (fall back to a rebuild).
    """
    new_rows: dict[int, list[int]] = {}
    seen: set[tuple[int, int]] = set()
    work = list(pairs)
    while work:
        lo, hi = work.pop()
        if (lo, hi) in seen or csr.find_slot(lo, hi) >= 0:
            continue
        seen.add((lo, hi))
        if len(seen) > limit:
            return None
        partners = csr.row(lo).tolist() + new_rows.get(lo, [])
        new_rows.setdefault(lo, []).append(hi)
        for x in partners:
            if x == hi:
                continue
            pair = _ordered_pair(rank, x, hi)
            if pair not in seen:
                work.append(pair)
    return sorted(seen)


# ---------------------------------------------------------------------------
# rebuild fallbacks
# ---------------------------------------------------------------------------

def _full_affected_stats(n: int) -> MaintenanceStats:
    """Conservative stats after a rebuild: every label may have moved."""
    return MaintenanceStats(affected_labels=set(range(n)))


def _rebuild_on_same_hq(index) -> MaintenanceStats:
    """Rebuild H_U and L over the current graph, keeping H_Q.

    Works on snapshot-loaded indexes too — the contraction order is a
    pure function of ``hq.tau``, which is always available.
    """
    from repro.labelling.query import QueryEngine

    hu = UpdateHierarchy.build(index.graph, index.hq)
    labels = build_labelling(hu)
    index.hu = hu
    index.labels = labels
    index._engine = QueryEngine(
        index.hq, labels, engine=index.config.resolve_engine()
    )
    index._epoch += 1
    index._refresh_size_stats()
    return _full_affected_stats(index.graph.num_vertices)


def _subtree_vertices(hq: QueryHierarchy, node_id: int) -> list[int]:
    """All vertices owned by the subtree rooted at H_Q node *node_id*."""
    children: dict[int, list[int]] = {}
    for nid, parent in enumerate(hq.node_parent):
        if parent >= 0:
            children.setdefault(parent, []).append(nid)
    vertices: list[int] = []
    stack = [node_id]
    while stack:
        nid = stack.pop()
        vertices.extend(hq.node_members[nid])
        stack.extend(children.get(nid, ()))
    return vertices


def _splice_repartition(index, u: int, v: int) -> None:
    """Repartition the LCA subtree of ``(u, v)`` and refresh H_Q in place.

    The edge must already be in the graph. Untouched subtrees are reused
    verbatim; H_U/L are *not* rebuilt here — the caller does that once
    per batch.
    """
    graph: Graph = index.graph
    hq: QueryHierarchy = index.hq
    depth = hq.lca_depth(u, v)
    nid = int(hq.node_of[u])
    while hq.node_depth[nid] > depth:
        nid = hq.node_parent[nid]

    affected = sorted(_subtree_vertices(hq, nid))
    subgraph, local_to_global = graph.induced_subgraph(affected)
    sub_tree = recursive_bisection(
        subgraph,
        beta=index.config.beta,
        leaf_size=index.config.leaf_size,
        seed=index.config.seed,
        coarsest_size=index.config.coarsest_size,
    )

    def relabel(node: PartitionTreeNode) -> PartitionTreeNode:
        return PartitionTreeNode(
            vertices=[local_to_global[x] for x in node.vertices],
            children=[relabel(c) for c in node.children],
        )

    new_subtree = relabel(sub_tree)
    old_node = hq.tree_nodes[nid]
    parent_id = hq.node_parent[nid]
    if parent_id < 0:
        root = new_subtree
    else:
        parent_node = hq.tree_nodes[parent_id]
        parent_node.children[parent_node.children.index(old_node)] = new_subtree
        root = hq.tree_nodes[0]
    index.hq = QueryHierarchy.from_partition_tree(root, graph.num_vertices)


# ---------------------------------------------------------------------------
# the batch driver (undirected)
# ---------------------------------------------------------------------------

def _validate_insertion(graph, u: int, v: int, w: float) -> None:
    if u == v:
        raise MaintenanceError(f"cannot insert a self-loop at vertex {u}")
    if not math.isfinite(w) or w < 0:
        raise MaintenanceError(
            f"weight must be finite and non-negative, got {w!r}"
        )


def apply_batch(
    index,
    insertions=(),
    deletions=(),
    weight_changes=(),
    workers: int | None = None,
) -> StructuralStats:
    """Apply one mixed structural batch to a :class:`DHLIndex` in place.

    * *deletions* — ``(u, v)`` pairs; live edges become infinite-weight
      increases (the deletion fast path), already-dead or missing edges
      only bump the ``already_deleted`` counter.
    * *weight_changes* — ``(u, v, w)`` triples on existing edges,
      classified into the increase/decrease kernels as in
      :meth:`DHLIndex.update` (a finite ``w`` on a dead edge is a
      restore: a plain decrease).
    * *insertions* — ``(u, v, w)`` triples; an existing edge folds into
      a weight change, new edges take the closure fast path or a
      fallback rebuild (see the module docstring).

    Mutates the index (hierarchies, labels, engine are swapped on
    fallback) and returns a :class:`StructuralStats`.
    """
    graph: Graph = index.graph
    stats = StructuralStats()

    increases: list[tuple[int, int, float]] = []
    decreases: list[tuple[int, int, float]] = []
    for u, v in deletions:
        if not graph.has_edge(u, v) or math.isinf(graph.weight(u, v)):
            stats.already_deleted += 1
            _bump(index, "already_deleted_edges")
        else:
            increases.append((u, v, math.inf))
            stats.deleted += 1

    # Duplicate reports on one edge coalesce last-wins (sequential
    # semantics) — the kernels reject mixed-direction batches.
    net_changes: dict[tuple[int, int], tuple[int, int, float]] = {}
    for u, v, w in weight_changes:
        net_changes[(u, v) if u <= v else (v, u)] = (u, v, w)
    for u, v, w in net_changes.values():
        current = graph.weight(u, v)
        if w > current:
            increases.append((u, v, w))
            stats.weight_changed += 1
        elif w < current:
            decreases.append((u, v, w))
            stats.weight_changed += 1

    real_inserts: list[tuple[int, int, float]] = []
    for u, v, w in insertions:
        _validate_insertion(graph, u, v, w)
        if graph.has_edge(u, v):
            current = graph.weight(u, v)
            if w < current:
                decreases.append((u, v, w))
            elif w > current:
                increases.append((u, v, w))
            stats.weight_changed += 1
        else:
            real_inserts.append((u, v, w))

    if increases:
        stats.maintenance = stats.maintenance.merge(
            index.increase(increases, workers)
        )
    if decreases:
        stats.maintenance = stats.maintenance.merge(
            index.decrease(decreases, workers)
        )
    if real_inserts:
        stats.inserted = len(real_inserts)
        _apply_insertions(index, real_inserts, workers, stats)
    return stats


def _apply_insertions(index, inserts, workers, stats: StructuralStats) -> None:
    """Route genuinely new edges through the fast path or a fallback."""
    graph: Graph = index.graph
    hq: QueryHierarchy = index.hq

    incomparable = [
        (u, v) for u, v, _ in inserts if not hq.comparable(u, v)
    ]
    if incomparable:
        # The separator property of H_Q is genuinely invalidated; only a
        # repartition restores it, and that needs the partition tree.
        if hq.tree_nodes is None:
            raise MaintenanceError(
                "index was loaded without its partition tree; the new "
                f"edge{'s' if len(incomparable) > 1 else ''} "
                f"{incomparable} join incomparable vertices and need a "
                "repartition — rebuild the index to insert them"
            )
        with phase("structural.fallback_rebuild"):
            for u, v, w in inserts:
                graph.add_edge(u, v, w)
            for u, v in incomparable:
                _splice_repartition(index, u, v)
            stats.maintenance = stats.maintenance.merge(
                _rebuild_on_same_hq(index)
            )
        stats.repartitions = len(incomparable)
        stats.fallback_rebuilds += 1
        _bump(index, "fallback_rebuilds")
        return

    hu: UpdateHierarchy = index.hu
    pairs = [_ordered_pair(hu.rank, u, v) for u, v, _ in inserts]
    closure = _insertion_closure(
        hu.csr, hu.rank, pairs, index.config.insert_closure_limit
    )
    if closure is None:
        with phase("structural.fallback_rebuild"):
            for u, v, w in inserts:
                graph.add_edge(u, v, w)
            stats.maintenance = stats.maintenance.merge(
                _rebuild_on_same_hq(index)
            )
        stats.fallback_rebuilds += 1
        _bump(index, "fallback_rebuilds")
        return

    with phase("structural.slot_alloc"):
        if closure:
            new_lo = np.fromiter((p[0] for p in closure), np.int64, len(closure))
            new_hi = np.fromiter((p[1] for p in closure), np.int64, len(closure))
            new_csr, (new_weights,), _ = extend_slots(
                hu.csr, new_lo, new_hi, hu.up_weights
            )
            hu.csr = new_csr
            hu.up_weights = new_weights
            hu._reset_csr_caches()
        # New edges enter logically deleted; the seeded decrease sweep
        # relaxes them (and their closure) to the Property-3.1 fixpoint.
        for u, v, _ in inserts:
            graph.add_edge(u, v, 0.0)
            graph.set_weight(u, v, math.inf)
    stats.new_slots = len(closure)

    with phase("structural.fastpath_sweep"):
        try:
            sweep = _seeded_decrease(
                index, [(u, v, w) for u, v, w in inserts]
            )
        except StructuralFallbackRequired:
            # The sweep needed a pair that compaction removed. The graph
            # already carries the final weights (the kernel seed phase
            # applies them before sweeping); rebuild H_U + L from it.
            for u, v, w in inserts:
                graph.set_weight(u, v, w)
            with phase("structural.fallback_rebuild"):
                stats.maintenance = stats.maintenance.merge(
                    _rebuild_on_same_hq(index)
                )
            stats.fallback_rebuilds += 1
            _bump(index, "fallback_rebuilds")
            return
    stats.maintenance = stats.maintenance.merge(sweep)
    stats.fastpath_inserts = len(inserts)
    _bump(index, "fastpath_inserts", len(inserts))


def _seeded_decrease(index, changes) -> MaintenanceStats:
    """Insertion-seeded decrease sweep — always the guarded array kernel.

    The compiled scalar sweep *skips* finite candidates for missing
    pairs (exact only for weight maintenance) and the reference path is
    slower; routing every insertion sweep through the array kernel keeps
    the fallback signal reliable under all engines.
    """
    from repro.core.index import DHLIndex
    from repro.labelling.maintenance_kernels import apply_decrease_array

    return index._note_maintenance(
        DHLIndex._run_with_phases(
            lambda: apply_decrease_array(index.hu, index.labels, changes)
        )
    )


# ---------------------------------------------------------------------------
# compaction (undirected)
# ---------------------------------------------------------------------------

def dead_fraction(weights, *more_weights) -> float:
    """Fraction of slots that are logically dead (all directions inf)."""
    if len(weights) == 0:
        return 0.0
    dead = np.isinf(weights)
    for other in more_weights:
        dead &= np.isinf(other)
    return float(dead.mean())


def compact_index(index) -> CompactionStats:
    """Squeeze dead slots out of a :class:`DHLIndex`'s stores, in place.

    Dead shortcut slots leave the CSR store, their (dead) graph edges
    are removed physically — deletion becomes permanent — and label
    slack is repacked. Queried distances are unchanged: every removed
    triangle contributed ``inf``. Bumps the epoch when anything was
    reclaimed, which routes worker/replica runtimes through their
    existing whole-buffer republish path.
    """
    hu = index.hu
    stats = CompactionStats()
    with phase("structural.compaction"):
        label_bytes = index.labels.compact()
        dead = np.isinf(hu.up_weights)
        dead_count = int(dead.sum())
        if dead_count:
            new_csr, (new_weights,) = compact_slots(
                hu.csr, ~dead, hu.up_weights
            )
            hu.csr = new_csr
            hu.up_weights = new_weights
            hu._reset_csr_caches()
        # A deleted edge whose slot kept a finite witness shortcut is
        # still physically dead in the graph — remove it even when no
        # slot was reclaimed, so restores always route through the
        # insertion path.
        graph = index.graph
        removed_edges = 0
        for u, v, w in list(graph.edges()):
            if math.isinf(w):
                graph.remove_edge(u, v)
                removed_edges += 1
        if dead_count or label_bytes or removed_edges:
            index._epoch += 1
            index._refresh_size_stats()
    stats.dead_slots_reclaimed = dead_count
    stats.bytes_reclaimed = dead_count * _SLOT_BYTES + label_bytes
    _bump(index, "compactions")
    _bump(index, "dead_slots_reclaimed", stats.dead_slots_reclaimed)
    _bump(index, "bytes_reclaimed", stats.bytes_reclaimed)
    return stats


# ---------------------------------------------------------------------------
# the batch driver (directed)
# ---------------------------------------------------------------------------

def apply_batch_directed(
    index,
    insertions=(),
    deletions=(),
    weight_changes=(),
    workers: int | None = None,
) -> StructuralStats:
    """Directed counterpart of :func:`apply_batch` (arcs, not edges).

    The two directions share one structural CSR, so a new arc whose
    reverse already exists (or whose pair survived as a shortcut) is a
    pure weight decrease from ``inf``. A structurally new pair takes the
    same closure fast path over the shared skeleton, extending *both*
    direction weight arrays; incomparable or over-budget insertions
    rebuild the directed hierarchy (re-contract on the same H_Q).
    """
    digraph = index.digraph
    stats = StructuralStats()

    increases: list[tuple[int, int, float]] = []
    decreases: list[tuple[int, int, float]] = []
    for u, v in deletions:
        if not digraph.has_arc(u, v) or math.isinf(digraph.weight(u, v)):
            stats.already_deleted += 1
            _bump(index, "already_deleted_edges")
        else:
            increases.append((u, v, math.inf))
            stats.deleted += 1

    # Duplicate reports on one arc coalesce last-wins (sequential
    # semantics) — the kernels reject mixed-direction batches.
    net_changes: dict[tuple[int, int], float] = {}
    for u, v, w in weight_changes:
        net_changes[(u, v)] = w
    for (u, v), w in net_changes.items():
        current = digraph.weight(u, v)
        if w > current:
            increases.append((u, v, w))
            stats.weight_changed += 1
        elif w < current:
            decreases.append((u, v, w))
            stats.weight_changed += 1

    real_inserts: list[tuple[int, int, float]] = []
    for u, v, w in insertions:
        _validate_insertion(digraph, u, v, w)
        if digraph.has_arc(u, v):
            current = digraph.weight(u, v)
            if w < current:
                decreases.append((u, v, w))
            elif w > current:
                increases.append((u, v, w))
            stats.weight_changed += 1
        else:
            real_inserts.append((u, v, w))

    if increases:
        stats.maintenance = stats.maintenance.merge(
            index.increase(increases, workers)
        )
    if decreases:
        stats.maintenance = stats.maintenance.merge(
            index.decrease(decreases, workers)
        )
    if real_inserts:
        stats.inserted = len(real_inserts)
        _apply_directed_insertions(index, real_inserts, workers, stats)
    return stats


def _rebuild_directed(index) -> MaintenanceStats:
    """Re-contract the directed hierarchy on the same H_Q, in place."""
    from repro.core.directed import DirectedDHLIndex, _DirectionView
    from repro.hierarchy.csr import build_shortcut_csr
    from repro.labelling.build import build_labelling as _build

    rank, up, wout, win = DirectedDHLIndex._contract(index.digraph, index.hq)
    index.rank = np.asarray(rank, dtype=np.int64)
    index.rank_key = index.rank.astype(np.float64)
    index.csr, index.out_weights, index.in_weights = build_shortcut_csr(
        up, index.rank, wout, win
    )
    index._out_view = _DirectionView(index.hq.tau, index.csr, index.out_weights)
    index._in_view = _DirectionView(index.hq.tau, index.csr, index.in_weights)
    index.labels_out = _build(index._out_view)
    index.labels_in = _build(index._in_view)
    index._epoch += 1
    index._refresh_size_stats()
    return _full_affected_stats(index.digraph.num_vertices)


def _apply_directed_insertions(
    index, inserts, workers, stats: StructuralStats
) -> None:
    digraph = index.digraph
    hq = index.hq
    csr: ShortcutCSR = index.csr

    comparable = all(hq.comparable(u, v) for u, v, _ in inserts)
    closure = None
    if comparable:
        pairs = [_ordered_pair(index.rank, u, v) for u, v, _ in inserts]
        closure = _insertion_closure(
            csr, index.rank, pairs, index.config.insert_closure_limit
        )
    if closure is None:
        # Over-budget closures re-contract on the same H_Q; incomparable
        # pairs invalidate the shared skeleton's separators, so the rare
        # incomparable case rebuilds the partition tree too (directed
        # construction derives it from the digraph, no tree splice
        # needed).
        with phase("structural.fallback_rebuild"):
            for u, v, w in inserts:
                digraph.add_arc(u, v, w)
            if comparable:
                stats.maintenance = stats.maintenance.merge(
                    _rebuild_directed(index)
                )
            else:
                _rebuild_directed_full(index)
                stats.maintenance = stats.maintenance.merge(
                    _full_affected_stats(digraph.num_vertices)
                )
                stats.repartitions = sum(
                    0 if hq.comparable(u, v) else 1 for u, v, _ in inserts
                )
        stats.fallback_rebuilds += 1
        _bump(index, "fallback_rebuilds")
        return

    with phase("structural.slot_alloc"):
        if closure:
            new_lo = np.fromiter((p[0] for p in closure), np.int64, len(closure))
            new_hi = np.fromiter((p[1] for p in closure), np.int64, len(closure))
            new_csr, (out_w, in_w), _ = extend_slots(
                csr, new_lo, new_hi, index.out_weights, index.in_weights
            )
            index.csr = new_csr
            index.out_weights = out_w
            index.in_weights = in_w
            for view, weights in (
                (index._out_view, out_w),
                (index._in_view, in_w),
            ):
                view.csr = new_csr
                view.up_weights = weights
                view._reset_csr_caches()
        for u, v, _ in inserts:
            digraph.add_arc(u, v, 0.0)
            digraph.set_weight(u, v, math.inf)
    stats.new_slots = len(closure)

    with phase("structural.fastpath_sweep"):
        try:
            sweep = index.decrease(
                [(u, v, w) for u, v, w in inserts], workers
            )
        except StructuralFallbackRequired:
            for u, v, w in inserts:
                digraph.set_weight(u, v, w)
            with phase("structural.fallback_rebuild"):
                stats.maintenance = stats.maintenance.merge(
                    _rebuild_directed(index)
                )
            stats.fallback_rebuilds += 1
            _bump(index, "fallback_rebuilds")
            return
    stats.maintenance = stats.maintenance.merge(sweep)
    stats.fastpath_inserts = len(inserts)
    _bump(index, "fastpath_inserts", len(inserts))


def _rebuild_directed_full(index) -> None:
    """Full directed rebuild (new partition tree) adopted in place."""
    from repro.core.directed import DirectedDHLIndex

    fresh = DirectedDHLIndex.build(index.digraph, index.config)
    index.hq = fresh.hq
    index.rank = fresh.rank
    index.rank_key = fresh.rank_key
    index.csr = fresh.csr
    index.out_weights = fresh.out_weights
    index.in_weights = fresh.in_weights
    index._out_view = fresh._out_view
    index._in_view = fresh._in_view
    index.labels_out = fresh.labels_out
    index.labels_in = fresh.labels_in
    index._epoch += 1
    index._refresh_size_stats()


def compact_directed_index(index) -> CompactionStats:
    """Directed compaction: a slot dies when *both* directions are inf."""
    stats = CompactionStats()
    with phase("structural.compaction"):
        label_bytes = index.labels_out.compact() + index.labels_in.compact()
        dead = np.isinf(index.out_weights) & np.isinf(index.in_weights)
        dead_count = int(dead.sum())
        if dead_count:
            new_csr, (out_w, in_w) = compact_slots(
                index.csr, ~dead, index.out_weights, index.in_weights
            )
            index.csr = new_csr
            index.out_weights = out_w
            index.in_weights = in_w
            for view, weights in (
                (index._out_view, out_w),
                (index._in_view, in_w),
            ):
                view.csr = new_csr
                view.up_weights = weights
                view._reset_csr_caches()
        digraph = index.digraph
        removed_arcs = 0
        for u, v, w in list(digraph.arcs()):
            if math.isinf(w):
                digraph.remove_arc(u, v)
                removed_arcs += 1
        if dead_count or label_bytes or removed_arcs:
            index._epoch += 1
            index._refresh_size_stats()
    stats.dead_slots_reclaimed = dead_count
    stats.bytes_reclaimed = dead_count * 2 * _SLOT_BYTES + label_bytes
    _bump(index, "compactions")
    _bump(index, "dead_slots_reclaimed", stats.dead_slots_reclaimed)
    _bump(index, "bytes_reclaimed", stats.bytes_reclaimed)
    return stats


# ---------------------------------------------------------------------------
# single-edge conveniences (the historical Section 8 surface)
# ---------------------------------------------------------------------------

def delete_edge(index, u: int, v: int) -> MaintenanceStats:
    """Logically delete edge ``(u, v)`` through the batch path.

    Deleting an already-dead (or compacted-away) edge returns empty
    stats and records it in the index's ``already_deleted_edges``
    counter instead of failing silently.
    """
    return apply_batch(index, deletions=[(u, v)]).maintenance


def restore_edge(index, u: int, v: int, weight: float) -> MaintenanceStats:
    """Restore a logically deleted edge with *weight* (a decrease).

    After a compaction pass the edge is physically gone; restoring then
    routes through the insertion path of :func:`apply_batch`.
    """
    if not math.isfinite(weight) or weight < 0:
        raise MaintenanceError(f"restore weight must be finite, got {weight!r}")
    if not index.graph.has_edge(u, v):
        return apply_batch(
            index, insertions=[(u, v, weight)]
        ).maintenance
    current = index.graph.weight(u, v)
    if weight > current:
        raise MaintenanceError(
            f"edge ({u}, {v}) currently weighs {current}; restoring to a "
            "larger weight is an increase — use increase()"
        )
    return index.decrease([(u, v, weight)])


def delete_vertex(index, v: int) -> MaintenanceStats:
    """Logically delete vertex *v*: all incident roads become infinite.

    The neighbour set is snapshotted before any mutation (the live
    adjacency view must not be iterated while maintenance writes to it)
    and the deletions run as one batch, returning the merged stats.
    """
    neighbors = list(index.graph.neighbors(v).items())
    deletions = [(v, u) for u, w in neighbors if math.isfinite(w)]
    if not deletions:
        return MaintenanceStats()
    return apply_batch(index, deletions=deletions).maintenance


def insert_edge(index, u: int, v: int, weight: float):
    """Insert a new road ``(u, v)``; returns the (mutated) index.

    Historical surface: the index is now updated *in place* through
    :func:`apply_batch` (fast path or fallback rebuild) and returned for
    drop-in compatibility with the old rebuild-and-return contract.
    """
    if index.graph.has_edge(u, v):
        raise MaintenanceError(
            f"edge ({u}, {v}) already exists; use decrease()/increase()"
        )
    apply_batch(index, insertions=[(u, v, weight)])
    return index
