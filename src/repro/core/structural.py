"""Structural updates — Section 8 of the paper.

Road networks rarely change shape, so the paper treats structure as
stable and handles the rare exceptions as follows:

* **edge deletion** — raise the weight to infinity (a DHL+ update); the
  shortcut slot stays allocated so structural stability (U1) holds;
* **vertex deletion** — delete all incident edges;
* **edge insertion** — repartition the subtree of H_Q rooted at the
  lowest common ancestor node of the endpoints, then rebuild H_U and L.

For insertion the paper repartitions "the largest affected induced
subgraph"; we do exactly that for the partition tree (all untouched
subtrees are reused), then rebuild the contraction and labelling, which
are the cheaper phases of construction. A brand-new edge can create new
valley paths between vertices *above* the repartitioned subtree, so the
shortcut structure outside it is not reusable in general — rebuilding it
keeps correctness unconditional.
"""

from __future__ import annotations

import math

from repro.exceptions import MaintenanceError
from repro.graph.graph import Graph
from repro.hierarchy.query_hierarchy import QueryHierarchy
from repro.hierarchy.update_hierarchy import UpdateHierarchy
from repro.labelling.build import build_labelling
from repro.labelling.maintenance import MaintenanceStats
from repro.partition.recursive import PartitionTreeNode, recursive_bisection

__all__ = ["delete_edge", "restore_edge", "delete_vertex", "insert_edge"]


def delete_edge(index, u: int, v: int) -> MaintenanceStats:
    """Logically delete edge ``(u, v)`` by increasing its weight to inf."""
    current = index.graph.weight(u, v)
    if math.isinf(current):
        return MaintenanceStats()  # already deleted
    return index.increase([(u, v, math.inf)])


def restore_edge(index, u: int, v: int, weight: float) -> MaintenanceStats:
    """Restore a logically deleted edge with *weight* (a decrease)."""
    if not math.isfinite(weight) or weight < 0:
        raise MaintenanceError(f"restore weight must be finite, got {weight!r}")
    current = index.graph.weight(u, v)
    if weight > current:
        raise MaintenanceError(
            f"edge ({u}, {v}) currently weighs {current}; restoring to a "
            "larger weight is an increase — use increase()"
        )
    return index.decrease([(u, v, weight)])


def delete_vertex(index, v: int) -> MaintenanceStats:
    """Logically delete vertex *v*: all incident roads become infinite."""
    changes = [
        (v, u, math.inf)
        for u, w in index.graph.neighbors(v).items()
        if math.isfinite(w)
    ]
    if not changes:
        return MaintenanceStats()
    return index.increase(changes)


def _subtree_vertices(hq: QueryHierarchy, node_id: int) -> list[int]:
    """All vertices owned by the subtree rooted at H_Q node *node_id*."""
    children: dict[int, list[int]] = {}
    for nid, parent in enumerate(hq.node_parent):
        if parent >= 0:
            children.setdefault(parent, []).append(nid)
    vertices: list[int] = []
    stack = [node_id]
    while stack:
        nid = stack.pop()
        vertices.extend(hq.node_members[nid])
        stack.extend(children.get(nid, ()))
    return vertices


def insert_edge(index, u: int, v: int, weight: float):
    """Insert a new road ``(u, v)``; returns a new, consistent index.

    The H_Q subtree rooted at the LCA node of ``l(u)`` and ``l(v)`` is
    repartitioned over the updated subgraph (other subtrees are reused
    verbatim); the update hierarchy and labelling are rebuilt.
    """
    from repro.core.index import DHLIndex

    graph: Graph = index.graph
    if graph.has_edge(u, v):
        raise MaintenanceError(
            f"edge ({u}, {v}) already exists; use decrease()/increase()"
        )
    if not math.isfinite(weight) or weight < 0:
        raise MaintenanceError(f"weight must be finite and non-negative, got {weight!r}")
    hq: QueryHierarchy = index.hq
    if hq.tree_nodes is None:
        raise MaintenanceError(
            "index was loaded without its partition tree; rebuild it to "
            "support edge insertion"
        )

    graph.add_edge(u, v, weight)

    # Find the LCA node of the endpoints' tree nodes.
    depth = hq.lca_depth(u, v)
    nid = int(hq.node_of[u])
    while hq.node_depth[nid] > depth:
        nid = hq.node_parent[nid]

    affected = sorted(_subtree_vertices(hq, nid))
    subgraph, local_to_global = graph.induced_subgraph(affected)
    sub_tree = recursive_bisection(
        subgraph,
        beta=index.config.beta,
        leaf_size=index.config.leaf_size,
        seed=index.config.seed,
        coarsest_size=index.config.coarsest_size,
    )

    def relabel(node: PartitionTreeNode) -> PartitionTreeNode:
        return PartitionTreeNode(
            vertices=[local_to_global[x] for x in node.vertices],
            children=[relabel(c) for c in node.children],
        )

    new_subtree = relabel(sub_tree)
    old_node = hq.tree_nodes[nid]
    parent_id = hq.node_parent[nid]
    if parent_id < 0:
        root = new_subtree
    else:
        parent_node = hq.tree_nodes[parent_id]
        parent_node.children[parent_node.children.index(old_node)] = new_subtree
        root = hq.tree_nodes[0]

    new_hq = QueryHierarchy.from_partition_tree(root, graph.num_vertices)
    new_hu = UpdateHierarchy.build(graph, new_hq)
    labels = build_labelling(new_hu)
    new_index = DHLIndex(graph, new_hq, new_hu, labels, index.config, index.stats())
    new_index._refresh_size_stats()
    return new_index
