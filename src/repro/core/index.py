"""The DHL index facade: build, query, update, persist.

This is the library's main entry point, wiring together the paper's three
components ``(<H_Q, H_U>, L)``:

1. recursive balanced bisection produces the partition tree;
2. :class:`~repro.hierarchy.QueryHierarchy` derives ranks, bitstrings and
   the partial order;
3. :class:`~repro.hierarchy.UpdateHierarchy` contracts the graph in
   decreasing rank order;
4. :func:`~repro.labelling.build_labelling` runs Algorithm 1.

Updates go through DHL+/DHL- (Algorithms 2-5) or their parallel variants
(Algorithms 6/7) depending on configuration.
"""

from __future__ import annotations

import math
import warnings
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.core.config import DHLConfig
from repro.core.stats import IndexStats
from repro.exceptions import IndexBuildError, MaintenanceError
from repro.graph.graph import Graph
from repro.hierarchy.query_hierarchy import QueryHierarchy
from repro.hierarchy.update_hierarchy import UpdateHierarchy
from repro.labelling.build import build_labelling
from repro.labelling.labels import HierarchicalLabelling
from repro.labelling.maintenance import (
    MaintenanceStats,
    apply_decrease,
    apply_increase,
)
from repro.labelling.compiled import (
    apply_decrease_compiled,
    apply_increase_compiled,
)
from repro.labelling.maintenance_kernels import (
    apply_decrease_array,
    apply_increase_array,
)
from repro.labelling.parallel import (
    apply_decrease_parallel,
    apply_increase_parallel,
)
from repro.labelling.query import QueryEngine
from repro.observability.phases import collect_phases, phases_active
from repro.partition.recursive import recursive_bisection
from repro.utils.timing import Stopwatch

__all__ = ["DHLIndex"]

WeightChange = tuple[int, int, float]


class DHLIndex:
    """Dual-Hierarchy Labelling distance index over an undirected graph.

    Use :meth:`build` to construct; then :meth:`distance` for queries and
    :meth:`increase` / :meth:`decrease` / :meth:`update` for edge-weight
    maintenance. The graph passed to :meth:`build` is owned by the index
    afterwards: weight updates must go through the index so that the
    hierarchies and labels stay consistent.
    """

    kind = "monolithic"
    # A monolithic distance is a min over the two endpoints' label
    # arrays, so the minimising hub certifies a cached result; the
    # serving layer may evict per-pair after an update.
    supports_fine_grained_eviction = True

    def __init__(
        self,
        graph: Graph,
        hq: QueryHierarchy,
        hu: UpdateHierarchy,
        labels: HierarchicalLabelling,
        config: DHLConfig,
        stats: IndexStats,
    ):
        self.graph = graph
        self.hq = hq
        self.hu = hu
        self.labels = labels
        self.config = config
        self._stats = stats
        self._engine = QueryEngine(hq, labels, engine=config.resolve_engine())
        # Monotone maintenance epoch: bumped once per applied update batch.
        # The serving layer keys its result cache on it; the batch kernel
        # itself needs no refresh — it gathers from the flat label store
        # that maintenance writes into.
        self._epoch = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: Graph, config: DHLConfig | None = None) -> "DHLIndex":
        """Construct the index: partition, contract, label.

        Works on disconnected graphs too (cross-component queries return
        ``inf``); integer edge weights are recommended — the increase-side
        maintenance prunes via exact path-sum equality.
        """
        config = config or DHLConfig()
        if graph.num_vertices == 0:
            raise IndexBuildError("cannot index an empty graph")
        stats = IndexStats(
            num_vertices=graph.num_vertices, num_edges=graph.num_edges
        )

        watch = Stopwatch()
        with watch:
            tree = recursive_bisection(
                graph,
                beta=config.beta,
                leaf_size=config.leaf_size,
                seed=config.seed,
                coarsest_size=config.coarsest_size,
            )
            hq = QueryHierarchy.from_partition_tree(tree, graph.num_vertices)
        stats.partition_seconds = watch.laps[-1]

        with watch:
            hu = UpdateHierarchy.build(graph, hq)
        stats.contraction_seconds = watch.laps[-1]

        with watch:
            labels = build_labelling(hu)
        stats.labelling_seconds = watch.laps[-1]

        if config.validate:
            hq.validate_graph(graph)
            hu.validate_comparability()
            hu.verify_minimum_weight_property()
            labels.validate_basic()

        index = cls(graph, hq, hu, labels, config, stats)
        index._refresh_size_stats()
        return index

    def _refresh_size_stats(self) -> None:
        self._stats.label_entries = self.labels.num_entries
        self._stats.label_bytes = self.labels.memory_bytes()
        self._stats.num_shortcuts = self.hu.num_shortcuts
        self._stats.shortcut_bytes = self.hu.memory_bytes()
        self._stats.hierarchy_bytes = self.hq.memory_bytes()
        self._stats.height = self.hq.height
        self._stats.max_up_degree = self.hu.max_up_degree()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def distance(self, s: int, t: int) -> float:
        """Exact shortest-path distance (``inf`` when disconnected)."""
        return self._engine.distance(s, t)

    def distances(self, pairs: Sequence[tuple[int, int]]) -> np.ndarray:
        """Batch distances for ``(s, t)`` pairs."""
        return self._engine.distances(list(pairs))

    def distance_with_hub(self, s: int, t: int) -> tuple[float, int]:
        """Distance plus the common-ancestor hub realising it."""
        return self._engine.distance_with_hub(s, t)

    def shortest_path(self, s: int, t: int) -> list[int]:
        """Exact shortest path as a vertex sequence (route reconstruction).

        Extracts the shortcut chains behind the winning label entries and
        unpacks each shortcut through its Property-3.1 witness triangle —
        no extra storage beyond the index itself.
        """
        from repro.labelling.paths import PathReconstructor

        return PathReconstructor(self._engine, self.hu).shortest_path(s, t)

    def distances_from(
        self, s: int, targets: Sequence[int]
    ) -> np.ndarray:
        """One-to-many distances from *s* (e.g. k-nearest-POI workloads)."""
        return self._engine.distances([(s, t) for t in targets])

    def k_nearest(
        self, s: int, candidates: Sequence[int], k: int
    ) -> list[tuple[int, float]]:
        """The *k* candidates closest to *s* by road distance.

        Unreachable candidates (infinite distance) are excluded; fewer
        than *k* entries may be returned.
        """
        distances = self.distances_from(s, candidates)
        order = np.argsort(distances, kind="stable")
        out: list[tuple[int, float]] = []
        for i in order[: max(0, k)]:
            if not math.isfinite(distances[i]):
                break
            out.append((candidates[int(i)], float(distances[i])))
        return out

    @property
    def engine(self) -> QueryEngine:
        return self._engine

    @property
    def epoch(self) -> int:
        """Number of maintenance batches applied since construction."""
        return self._epoch

    def _note_maintenance(self, stats: MaintenanceStats) -> MaintenanceStats:
        self._epoch += 1
        return stats

    # ------------------------------------------------------------------
    # dynamic updates
    # ------------------------------------------------------------------
    def decrease(
        self, changes: Iterable[WeightChange], workers: int | None = None
    ) -> MaintenanceStats:
        """Apply edge-weight decreases (DHL- / DHL-p).

        ``changes`` holds ``(u, v, new_weight)`` triples whose new weight
        is at most the current one. ``workers`` > 1 explicitly requests
        the column-parallel Algorithms 6/7 (DHL-p); otherwise
        ``config.engine`` picks the sequential path — the
        frontier-batched array kernels by default, or the scalar
        reference with ``engine="reference"``.
        """
        batch = self._validated(changes, expect="decrease")
        if not batch:
            return MaintenanceStats()
        workers = self.config.workers if workers is None else workers

        def run() -> MaintenanceStats:
            if workers and workers > 1:
                return apply_decrease_parallel(
                    self.hu, self.labels, batch, workers
                )
            engine = self.config.resolve_engine()
            if engine == "compiled":
                return apply_decrease_compiled(self.hu, self.labels, batch)
            if engine == "array":
                return apply_decrease_array(self.hu, self.labels, batch)
            return apply_decrease(self.hu, self.labels, batch)

        return self._note_maintenance(self._run_with_phases(run))

    def increase(
        self, changes: Iterable[WeightChange], workers: int | None = None
    ) -> MaintenanceStats:
        """Apply edge-weight increases (DHL+ / DHL+p).

        ``workers`` > 1 explicitly requests Algorithms 6/7; see
        :meth:`decrease` for the engine selection rules.
        """
        batch = self._validated(changes, expect="increase")
        if not batch:
            return MaintenanceStats()
        workers = self.config.workers if workers is None else workers

        def run() -> MaintenanceStats:
            if workers and workers > 1:
                return apply_increase_parallel(
                    self.hu, self.labels, batch, workers
                )
            engine = self.config.resolve_engine()
            if engine == "compiled":
                return apply_increase_compiled(self.hu, self.labels, batch)
            if engine == "array":
                return apply_increase_array(self.hu, self.labels, batch)
            return apply_increase(self.hu, self.labels, batch)

        return self._note_maintenance(self._run_with_phases(run))

    @staticmethod
    def _run_with_phases(run) -> MaintenanceStats:
        """Run one maintenance pass, capturing its kernel-phase breakdown.

        Only when a phase collector is already installed (an enabled
        observability flush, or a bench under ``collect_phases()``) does
        the pass get its own nested collector to fill ``stats.phases``;
        otherwise the kernels' ``phase()`` marks stay no-ops and nothing
        is measured.
        """
        if not phases_active():
            return run()
        with collect_phases() as collector:
            stats = run()
        stats.phases = collector.as_dict()
        return stats

    def update(
        self, changes: Iterable[WeightChange], workers: int | None = None
    ) -> MaintenanceStats:
        """Apply a mixed batch: splits into increases and decreases.

        Increases are applied first, then decreases, mirroring the
        paper's experimental protocol. Unchanged weights are skipped.
        """
        increases: list[WeightChange] = []
        decreases: list[WeightChange] = []
        for u, v, w in changes:
            current = self.graph.weight(u, v)
            if w > current:
                increases.append((u, v, w))
            elif w < current:
                decreases.append((u, v, w))
        stats = MaintenanceStats()
        if increases:
            stats = stats.merge(self.increase(increases, workers))
        if decreases:
            stats = stats.merge(self.decrease(decreases, workers))
        return stats

    def update_coalesced(
        self, changes: Iterable[WeightChange], workers: int | None = None
    ) -> MaintenanceStats:
        """Apply a raw change stream as one merged batch.

        Duplicate mentions of the same road collapse to their *final*
        weight (last write wins), so a burst that raises then restores an
        edge costs nothing; the merged batch then follows :meth:`update`'s
        increase-then-decrease protocol. Index-level counterpart of the
        serving layer's streaming :class:`~repro.service.UpdateCoalescer`
        for callers that batch changes themselves.
        """
        final: dict[tuple[int, int], float] = {}
        for u, v, w in changes:
            final[(u, v) if u <= v else (v, u)] = w
        return self.update(
            [(u, v, w) for (u, v), w in final.items()], workers
        )

    def _validated(
        self, changes: Iterable[WeightChange], expect: str
    ) -> list[WeightChange]:
        batch: list[WeightChange] = []
        for u, v, w in changes:
            current = self.graph.weight(u, v)
            if w < 0 or math.isnan(w):
                raise MaintenanceError(f"invalid weight {w!r} for edge ({u}, {v})")
            if w == current:
                continue
            if expect == "decrease" and w > current:
                raise MaintenanceError(
                    f"edge ({u}, {v}): {w} is an increase; use increase()/update()"
                )
            if expect == "increase" and w < current:
                raise MaintenanceError(
                    f"edge ({u}, {v}): {w} is a decrease; use decrease()/update()"
                )
            batch.append((u, v, w))
        return batch

    # ------------------------------------------------------------------
    # structural updates (Section 8) — implemented in core.structural
    # ------------------------------------------------------------------
    def apply_batch(
        self,
        insertions: Iterable[WeightChange] = (),
        deletions: Iterable[tuple[int, int]] = (),
        weight_changes: Iterable[WeightChange] = (),
        workers: int | None = None,
    ):
        """Apply one mixed structural batch (insert / delete / reweigh).

        Deletions of live edges take the infinite-weight-increase fast
        path, genuinely new edges take the closure fast path when their
        endpoints are ⪯_H-comparable and the closure fits
        ``config.insert_closure_limit``, and everything else falls back
        to a rebuild — see :mod:`repro.core.structural`. Mutates the
        index in place and returns a
        :class:`~repro.core.structural.StructuralStats`.
        """
        from repro.core.structural import apply_batch

        return apply_batch(
            self, insertions, deletions, weight_changes, workers
        )

    def compact(self):
        """Reclaim logically dead shortcut slots and label-store slack.

        Queried distances are unchanged; deletions become permanent
        (restoring a compacted edge re-inserts it). Returns a
        :class:`~repro.core.structural.CompactionStats`.
        """
        from repro.core.structural import compact_index

        return compact_index(self)

    @property
    def dead_fraction(self) -> float:
        """Fraction of shortcut slots that are logically deleted."""
        from repro.core.structural import dead_fraction

        return dead_fraction(self.hu.up_weights)

    @property
    def structural_counters(self) -> dict[str, int]:
        """Lifetime structural counters (already-deleted drops, fast-path
        inserts, fallback rebuilds, compaction reclaim totals)."""
        from repro.core.structural import structural_counters

        return structural_counters(self)

    def delete_edge(self, u: int, v: int) -> MaintenanceStats:
        """Logically delete a road: raise its weight to infinity.

        .. deprecated:: thin wrapper over :meth:`apply_batch` — batch
           structural changes there instead of issuing them one edge at
           a time.
        """
        warnings.warn(
            "DHLIndex.delete_edge is deprecated; use "
            "apply_batch(deletions=[(u, v)])",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.core.structural import delete_edge

        return delete_edge(self, u, v)

    def restore_edge(self, u: int, v: int, weight: float) -> MaintenanceStats:
        """Restore a logically deleted road with *weight*."""
        from repro.core.structural import restore_edge

        return restore_edge(self, u, v, weight)

    def delete_vertex(self, v: int) -> MaintenanceStats:
        """Logically delete an intersection (all incident roads)."""
        from repro.core.structural import delete_vertex

        return delete_vertex(self, v)

    def insert_edge(self, u: int, v: int, weight: float) -> "DHLIndex":
        """Insert a brand-new road; returns the (mutated) index.

        .. deprecated:: thin wrapper over :meth:`apply_batch` — the
           index is now updated in place; the return value exists for
           the old rebuild-and-return call shape.
        """
        warnings.warn(
            "DHLIndex.insert_edge is deprecated; use "
            "apply_batch(insertions=[(u, v, w)])",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.core.structural import insert_edge

        return insert_edge(self, u, v, weight)

    # ------------------------------------------------------------------
    # persistence and introspection
    # ------------------------------------------------------------------
    def stats(self) -> IndexStats:
        self._refresh_size_stats()
        return self._stats

    def save(self, path: str | Path) -> None:
        """Persist the index to a directory (JSON manifest + npz arrays)."""
        from repro.core.serialization import save_index

        save_index(self, Path(path))

    @classmethod
    def load(
        cls, path: str | Path, mmap_labels: bool = False, verify: bool = True
    ) -> "DHLIndex":
        """Load an index previously written by :meth:`save`.

        ``mmap_labels=True`` memory-maps the label store read-only, so
        queries run straight off the snapshot without loading it into
        RAM; the first update materialises a writable copy.
        """
        from repro.core.serialization import load_index

        return load_index(Path(path), mmap_labels=mmap_labels, verify=verify)

    def rebuild(self) -> "DHLIndex":
        """Construct a fresh index over the current graph (same config)."""
        return DHLIndex.build(self.graph.copy(), self.config)

    def verify(self) -> None:
        """Run the full invariant suite (slow; for tests/debugging)."""
        self.hq.validate_graph(self.graph)
        self.hu.validate_comparability()
        self.hu.verify_minimum_weight_property()
        self.labels.validate_basic()

    def __repr__(self) -> str:  # pragma: no cover - repr sugar
        return (
            f"DHLIndex(n={self.graph.num_vertices}, m={self.graph.num_edges}, "
            f"entries={self.labels.num_entries})"
        )
