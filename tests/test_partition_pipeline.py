"""Tests for coarsening, FM refinement, initial partitions, multilevel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import PartitionError
from repro.graph.generators import delaunay_network, grid_network
from repro.partition.coarsen import coarsen_once, coarsen_to_size
from repro.partition.fm import fm_refine, rebalance
from repro.partition.initial import bfs_halves, component_packing, greedy_growing
from repro.partition.multilevel import multilevel_bisection
from repro.partition.spectral import spectral_bisection
from repro.partition.types import Bipartition, PartitionGraph
from repro.utils.rng import make_rng


def cut_of(pg: PartitionGraph, side: np.ndarray) -> float:
    return sum(w for u, v, w in pg.edges() if side[u] != side[v])


@pytest.fixture
def road_pg(small_road) -> PartitionGraph:
    return PartitionGraph.from_graph(small_road)


class TestPartitionGraph:
    def test_from_graph_unit_multiplicities(self, diamond_graph):
        pg = PartitionGraph.from_graph(diamond_graph)
        assert pg.num_vertices == 4
        assert all(w == 1.0 for _, _, w in pg.edges())
        assert pg.total_vweight() == 4

    def test_from_graph_subset(self, diamond_graph):
        pg = PartitionGraph.from_graph(diamond_graph, [0, 1, 3])
        assert pg.num_vertices == 3
        assert sum(1 for _ in pg.edges()) == 2

    def test_compute_cut(self, diamond_graph):
        pg = PartitionGraph.from_graph(diamond_graph)
        side = np.array([0, 0, 1, 1], dtype=np.int8)
        bip = Bipartition.compute_cut(pg, side)
        assert bip.cut_weight == 2.0
        assert len(bip.cut_edges) == 2
        assert all(side[a] == 0 and side[b] == 1 for a, b in bip.cut_edges)


class TestCoarsening:
    def test_coarsen_once_preserves_total_weight(self, road_pg):
        level = coarsen_once(road_pg, make_rng(0), max_vertex_weight=8)
        assert level.graph.total_vweight() == road_pg.total_vweight()
        assert level.graph.num_vertices < road_pg.num_vertices

    def test_coarsen_once_maps_all_vertices(self, road_pg):
        level = coarsen_once(road_pg, make_rng(0), max_vertex_weight=8)
        assert len(level.fine_to_coarse) == road_pg.num_vertices
        assert level.fine_to_coarse.min() >= 0
        assert level.fine_to_coarse.max() == level.graph.num_vertices - 1

    def test_coarsen_respects_max_weight(self, road_pg):
        level = coarsen_once(road_pg, make_rng(0), max_vertex_weight=2)
        assert max(level.graph.vweight) <= 2

    def test_coarsen_to_size(self, road_pg):
        levels = coarsen_to_size(road_pg, 50, make_rng(0))
        assert levels
        assert levels[-1].graph.num_vertices <= max(
            50, road_pg.num_vertices // 2
        )
        # strictly decreasing level sizes
        sizes = [road_pg.num_vertices] + [lv.graph.num_vertices for lv in levels]
        assert all(a > b for a, b in zip(sizes, sizes[1:]))

    def test_coarsen_to_size_noop_when_small(self, diamond_graph):
        pg = PartitionGraph.from_graph(diamond_graph)
        assert coarsen_to_size(pg, 10, make_rng(0)) == []

    def test_coarse_cut_projects_to_fine_cut(self, road_pg):
        """A coarse partition's cut equals the projected fine cut."""
        level = coarsen_once(road_pg, make_rng(1), max_vertex_weight=8)
        rng = make_rng(2)
        coarse_side = (rng.random(level.graph.num_vertices) < 0.5).astype(np.int8)
        fine_side = coarse_side[level.fine_to_coarse]
        assert cut_of(level.graph, coarse_side) == cut_of(road_pg, fine_side)


class TestFM:
    def test_refine_never_worsens_cut(self, road_pg):
        rng = make_rng(3)
        side = (rng.random(road_pg.num_vertices) < 0.5).astype(np.int8)
        bound = int(0.8 * road_pg.total_vweight())
        refined = fm_refine(road_pg, side, bound)
        assert cut_of(road_pg, refined) <= cut_of(road_pg, side)

    def test_refine_respects_balance(self, road_pg):
        rng = make_rng(4)
        side = (rng.random(road_pg.num_vertices) < 0.5).astype(np.int8)
        bound = int(0.8 * road_pg.total_vweight())
        refined = fm_refine(road_pg, side, bound)
        w0 = sum(road_pg.vweight[v] for v in range(road_pg.num_vertices) if refined[v] == 0)
        w1 = road_pg.total_vweight() - w0
        assert max(w0, w1) <= bound

    def test_refine_improves_bad_partition(self, small_grid):
        """An interleaved-stripes partition should improve dramatically."""
        pg = PartitionGraph.from_graph(small_grid)
        side = np.fromiter(((v // 14) % 2 for v in range(pg.num_vertices)), dtype=np.int8)
        bound = int(0.8 * pg.total_vweight())
        refined = fm_refine(pg, side, bound)
        assert cut_of(pg, refined) < 0.7 * cut_of(pg, side)

    def test_rebalance_enforces_bound(self, road_pg):
        side = np.zeros(road_pg.num_vertices, dtype=np.int8)  # all on side 0
        bound = int(0.8 * road_pg.total_vweight())
        fixed = rebalance(road_pg, side, bound)
        w0 = sum(road_pg.vweight[v] for v in range(road_pg.num_vertices) if fixed[v] == 0)
        assert max(w0, road_pg.total_vweight() - w0) <= bound


class TestInitialPartitions:
    def test_component_packing_on_connected_returns_none(self, road_pg):
        assert component_packing(road_pg) is None

    def test_component_packing_zero_cut(self):
        pg = PartitionGraph([{1: 1.0}, {0: 1.0}, {3: 1.0}, {2: 1.0}], [1, 1, 1, 1])
        side = component_packing(pg)
        assert side is not None
        assert cut_of(pg, side) == 0.0
        assert side.min() == 0 and side.max() == 1

    def test_greedy_growing_covers_half(self, road_pg):
        side = greedy_growing(road_pg, make_rng(0))
        w0 = int((side == 0).sum())
        assert 0 < w0 < road_pg.num_vertices
        assert w0 >= road_pg.num_vertices // 2  # grows to at least half

    def test_bfs_halves_roughly_balanced(self, road_pg):
        side = bfs_halves(road_pg, make_rng(0))
        w0 = int((side == 0).sum())
        assert abs(w0 - road_pg.num_vertices / 2) <= road_pg.num_vertices * 0.2


class TestSpectral:
    def test_fiedler_split_on_barbell(self):
        # two cliques joined by one edge: spectral should find the bridge
        adj: list[dict[int, float]] = [{} for _ in range(10)]
        for group in (range(5), range(5, 10)):
            for a in group:
                for b in group:
                    if a != b:
                        adj[a][b] = 1.0
        adj[4][5] = adj[5][4] = 1.0
        pg = PartitionGraph(adj, [1] * 10)
        side = spectral_bisection(pg)
        assert side is not None
        assert cut_of(pg, side) == 1.0

    def test_tiny_graph_returns_none(self):
        pg = PartitionGraph([{1: 1.0}, {0: 1.0}], [1, 1])
        assert spectral_bisection(pg) is None


class TestMultilevel:
    @pytest.mark.parametrize("beta", [0.2, 0.35, 0.5])
    def test_balance_guarantee(self, small_road, beta):
        pg = PartitionGraph.from_graph(small_road)
        bip = multilevel_bisection(pg, beta=beta, seed=0)
        w0, w1 = bip.side_weights(pg)
        assert max(w0, w1) <= (1 - beta) * pg.total_vweight() + 1e-9

    def test_cut_edges_consistent(self, small_road):
        pg = PartitionGraph.from_graph(small_road)
        bip = multilevel_bisection(pg, seed=0)
        assert bip.cut_weight == cut_of(pg, bip.side)
        assert len(bip.cut_edges) == bip.cut_weight  # unit multiplicities

    def test_reasonable_cut_on_grid(self):
        g = grid_network(20, 20, seed=0, diagonal_fraction=0.0)
        pg = PartitionGraph.from_graph(g)
        bip = multilevel_bisection(pg, seed=0)
        # A 20x20 grid has a 20-edge balanced cut; allow 2x slack.
        assert bip.cut_weight <= 40

    def test_disconnected_graph_gets_zero_cut(self):
        pg = PartitionGraph(
            [{1: 1.0}, {0: 1.0}, {3: 1.0}, {2: 1.0}, {5: 1.0}, {4: 1.0}],
            [1] * 6,
        )
        bip = multilevel_bisection(pg, seed=0)
        assert bip.cut_weight == 0.0

    def test_giant_component_is_bisected_not_shredded(self):
        """Regression: a dominant component plus crumbs must be split by
        bisecting the giant, not by rebalancing a zero-cut packing (which
        used to destroy hundreds of edges on large road networks)."""
        g = delaunay_network(800, seed=3)
        pg = PartitionGraph.from_graph(g)
        # add 5 isolated crumbs
        for _ in range(5):
            pg.adj.append({})
            pg.vweight.append(1)
        bip = multilevel_bisection(pg, beta=0.2, seed=0)
        w0, w1 = bip.side_weights(pg)
        assert max(w0, w1) <= 0.8 * pg.total_vweight() + 1e-9
        # the cut must look like a single good bisection of the giant,
        # not like rebalancing damage
        assert bip.cut_weight <= 60

    def test_components_helper(self):
        from repro.partition.initial import components

        pg = PartitionGraph(
            [{1: 1.0}, {0: 1.0}, {}, {4: 1.0}, {3: 1.0}], [2, 1, 5, 1, 1]
        )
        comps = components(pg)
        assert sorted(w for w, _ in comps) == [2, 3, 5]
        assert sorted(len(m) for _, m in comps) == [1, 2, 2]

    def test_rejects_bad_beta(self, road_pg):
        with pytest.raises(PartitionError):
            multilevel_bisection(road_pg, beta=0.9)

    def test_rejects_single_vertex(self):
        with pytest.raises(PartitionError):
            multilevel_bisection(PartitionGraph([{}], [1]))
