"""Tests for the update hierarchy H_U (Definitions 4.5/4.6, U1/U2)."""

from __future__ import annotations

import math

import pytest

from repro.baselines.dijkstra import dijkstra_subgraph
from repro.graph.generators import random_connected_graph
from repro.hierarchy.query_hierarchy import QueryHierarchy
from repro.hierarchy.update_hierarchy import UpdateHierarchy
from repro.labelling.maintenance import (
    maintain_shortcuts_decrease,
    maintain_shortcuts_increase,
)
from repro.partition.recursive import recursive_bisection


@pytest.fixture
def built(small_road):
    tree = recursive_bisection(small_road, seed=0)
    hq = QueryHierarchy.from_partition_tree(tree, small_road.num_vertices)
    hu = UpdateHierarchy.build(small_road, hq)
    return small_road, hq, hu


class TestConstruction:
    def test_shortcut_endpoints_comparable(self, built):
        _, _, hu = built
        hu.validate_comparability()  # Lemma 4.8

    def test_minimum_weight_property(self, built):
        _, _, hu = built
        hu.verify_minimum_weight_property()  # Property 3.1

    def test_up_neighbors_are_ancestors(self, built):
        _, hq, hu = built
        for v in range(hq.n):
            for u in hu.up[v]:
                assert hq.precedes(u, v) and u != v
                assert hu.tau[u] < hu.tau[v]

    def test_shortcut_weight_is_interval_valley_distance(self, built):
        """Shortcut weight == shortest path through strict descendants."""
        graph, hq, hu = built
        tau = hu.tau
        checked = 0
        for v in range(0, hq.n, 37):
            for u in hu.up[v]:
                expected = dijkstra_subgraph(
                    graph,
                    v,
                    u,
                    lambda x, u=u, v=v: x == u or tau[x] > tau[v],
                )
                assert hu.weight(v, u) == expected
                checked += 1
        assert checked > 0

    def test_degree_stats(self, built):
        _, _, hu = built
        stats = hu.degree_stats()
        assert stats["max_up"] == hu.max_up_degree()
        assert stats["shortcuts"] == hu.num_shortcuts
        assert stats["mean_up"] > 0


class TestStructuralStability:
    """U1: updates change weights only, never the shortcut structure."""

    def test_u1_under_decrease_and_increase(self, built):
        graph, _, hu = built
        structure_before = [sorted(w) for w in hu.wup]
        edges = list(graph.edges())[:30]
        maintain_shortcuts_increase(hu, [(u, v, 3 * w) for u, v, w in edges])
        maintain_shortcuts_decrease(hu, [(u, v, w) for u, v, w in edges])
        structure_after = [sorted(w) for w in hu.wup]
        assert structure_before == structure_after

    def test_property_3_1_preserved_after_updates(self, built):
        graph, _, hu = built
        edges = list(graph.edges())
        maintain_shortcuts_increase(
            hu, [(u, v, 2 * w) for u, v, w in edges[10:40]]
        )
        hu.verify_minimum_weight_property()
        maintain_shortcuts_decrease(
            hu, [(u, v, max(1.0, w // 2)) for u, v, w in edges[5:25]]
        )
        hu.verify_minimum_weight_property()

    def test_u1_with_infinite_weight(self, built):
        """Logical deletion keeps the slot and the invariants."""
        graph, _, hu = built
        u, v, w = next(iter(graph.edges()))
        maintain_shortcuts_increase(hu, [(u, v, math.inf)])
        assert graph.has_edge(u, v)  # slot retained
        assert math.isinf(graph.weight(u, v))
        hu.verify_minimum_weight_property()
        maintain_shortcuts_decrease(hu, [(u, v, w)])
        hu.verify_minimum_weight_property()


class TestBoundedSearching:
    """U2: an update of (v, w) only affects shortcuts between common
    ancestors of the endpoints."""

    def test_u2_affected_shortcuts_are_ancestors(self, built):
        graph, hq, hu = built
        edges = list(graph.edges())
        for u0, v0, w0 in edges[:15]:
            affected = maintain_shortcuts_increase(hu, [(u0, v0, 2 * w0)])
            for (a, b) in affected:
                assert hq.precedes(a, u0) or hq.precedes(a, v0)
                assert hq.precedes(b, u0) or hq.precedes(b, v0)
            maintain_shortcuts_decrease(hu, [(u0, v0, w0)])


class TestOnAdversarialGraphs:
    def test_dense_random_graph(self):
        g = random_connected_graph(40, extra_edges=120, seed=17)
        tree = recursive_bisection(g, leaf_size=4, seed=0)
        hq = QueryHierarchy.from_partition_tree(tree, g.num_vertices)
        hq.validate_graph(g)
        hu = UpdateHierarchy.build(g, hq)
        hu.validate_comparability()
        hu.verify_minimum_weight_property()
