"""Tests for the undirected Graph structure."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import EdgeNotFound, GraphError, VertexNotFound
from repro.graph.graph import Graph


class TestConstruction:
    def test_empty(self):
        g = Graph(0)
        assert g.num_vertices == 0 and g.num_edges == 0

    def test_negative_size_rejected(self):
        with pytest.raises(GraphError):
            Graph(-1)

    def test_from_edges_keeps_min_duplicate(self):
        g = Graph.from_edges(3, [(0, 1, 5.0), (1, 0, 2.0), (1, 2, 1.0)])
        assert g.weight(0, 1) == 2.0
        assert g.num_edges == 2

    def test_coords_shape_checked(self):
        with pytest.raises(GraphError):
            Graph(3, coords=np.zeros((2, 2)))

    def test_copy_is_independent(self, diamond_graph):
        clone = diamond_graph.copy()
        clone.set_weight(0, 1, 9.0)
        assert diamond_graph.weight(0, 1) == 1.0


class TestMutation:
    def test_add_edge_symmetric(self):
        g = Graph(3)
        g.add_edge(0, 2, 4.0)
        assert g.weight(2, 0) == 4.0
        assert g.degree(0) == g.degree(2) == 1

    def test_self_loop_rejected(self):
        g = Graph(2)
        with pytest.raises(GraphError):
            g.add_edge(1, 1, 1.0)

    def test_duplicate_edge_rejected(self):
        g = Graph(2)
        g.add_edge(0, 1, 1.0)
        with pytest.raises(GraphError):
            g.add_edge(0, 1, 2.0)

    def test_add_edge_rejects_bad_weights(self):
        g = Graph(2)
        with pytest.raises(GraphError):
            g.add_edge(0, 1, -1.0)
        with pytest.raises(GraphError):
            g.add_edge(0, 1, math.inf)

    def test_set_weight_returns_old(self):
        g = Graph(2)
        g.add_edge(0, 1, 3.0)
        assert g.set_weight(0, 1, 7.0) == 3.0
        assert g.weight(1, 0) == 7.0

    def test_set_weight_allows_inf_deletion(self):
        g = Graph(2)
        g.add_edge(0, 1, 3.0)
        g.set_weight(0, 1, math.inf)
        assert math.isinf(g.weight(0, 1))
        assert g.num_edges == 1  # slot retained

    def test_remove_edge(self):
        g = Graph(2)
        g.add_edge(0, 1, 3.0)
        assert g.remove_edge(0, 1) == 3.0
        assert not g.has_edge(0, 1)
        assert g.num_edges == 0

    def test_missing_edge_raises(self):
        g = Graph(2)
        with pytest.raises(EdgeNotFound):
            g.weight(0, 1)

    def test_missing_vertex_raises(self):
        g = Graph(2)
        with pytest.raises(VertexNotFound):
            g.degree(5)


class TestViews:
    def test_edges_listed_once(self, diamond_graph):
        edges = list(diamond_graph.edges())
        assert len(edges) == 4
        assert all(u < v for u, v, _ in edges)

    def test_total_weight(self, diamond_graph):
        assert diamond_graph.total_weight() == 6.0

    def test_degree_array(self, diamond_graph):
        assert diamond_graph.degree_array().tolist() == [2, 2, 2, 2]

    def test_induced_subgraph_maps_ids(self, diamond_graph):
        sub, mapping = diamond_graph.induced_subgraph([0, 1, 3])
        assert mapping == [0, 1, 3]
        assert sub.num_vertices == 3
        assert sub.num_edges == 2  # (0,1) and (1,3)
        assert sub.weight(1, 2) == 1.0  # local ids: 1=vertex 1, 2=vertex 3

    def test_induced_subgraph_keeps_deleted_edges(self):
        g = Graph(3)
        g.add_edge(0, 1, 2.0)
        g.set_weight(0, 1, math.inf)
        sub, _ = g.induced_subgraph([0, 1])
        assert math.isinf(sub.weight(0, 1))

    def test_induced_subgraph_rejects_duplicates(self, diamond_graph):
        with pytest.raises(GraphError):
            diamond_graph.induced_subgraph([0, 0, 1])

    def test_weights_are_integral(self):
        g = Graph.from_edges(3, [(0, 1, 2.0), (1, 2, 5.0)])
        assert g.weights_are_integral()
        g.set_weight(0, 1, 2.5)
        assert not g.weights_are_integral()
        g.set_weight(0, 1, math.inf)
        assert g.weights_are_integral()

    def test_validate_passes_on_consistent_graph(self, small_road):
        small_road.validate()
