"""Update-coalescer edge cases: no-ops, reversed duplicates, empty flushes."""

from __future__ import annotations

from repro.core.config import DHLConfig
from repro.core.index import DHLIndex
from repro.graph.generators import delaunay_network
from repro.service.coalescer import UpdateCoalescer
from repro.service.service import DistanceService


def build_index():
    graph = delaunay_network(120, seed=21, style="city", edge_factor=1.35)
    return DHLIndex.build(graph, DHLConfig(seed=0))


def first_edge(graph):
    return next(iter(graph.edges()))


def test_resetting_current_weight_is_dropped_as_noop():
    index = build_index()
    u, v, w = first_edge(index.graph)
    coalescer = UpdateCoalescer()
    coalescer.add(u, v, w)  # re-report of the live weight
    assert coalescer.pending_edges == 1  # buffered: graph not consulted yet
    batch = coalescer.drain(index.graph)
    assert batch.size == 0
    assert batch.noops == 1
    assert coalescer.stats().noops_dropped == 1
    assert not coalescer


def test_reversed_duplicate_edge_merges_to_one_change():
    index = build_index()
    u, v, w = first_edge(index.graph)
    coalescer = UpdateCoalescer()
    coalescer.add(u, v, 2.0 * w)
    coalescer.add(v, u, 3.0 * w)  # same road, reversed endpoints
    assert coalescer.pending_edges == 1
    assert coalescer.stats().merged_duplicates == 1
    batch = coalescer.drain(index.graph)
    assert batch.size == 1
    ((bu, bv, bw),) = batch.changes()
    assert {bu, bv} == {u, v}
    assert bw == 3.0 * w  # last write wins across orientations


def test_empty_coalesced_batch_leaves_epoch_untouched():
    index = build_index()
    u, v, w = first_edge(index.graph)
    service = DistanceService(index)
    before = index.epoch

    # Flush with nothing buffered.
    service.flush()
    assert index.epoch == before

    # Raise-then-restore coalesces to a no-op: nothing reaches the index.
    service.submit(u, v, 2.0 * w)
    service.submit(v, u, w)
    service.flush()
    assert index.epoch == before

    # Re-reporting the current weight is equally free.
    service.submit(u, v, w)
    service.flush()
    assert index.epoch == before

    # A real change does bump the epoch — the guard is not inert.
    service.submit(u, v, 2.0 * w)
    service.flush()
    assert index.epoch == before + 1


def test_index_level_coalescing_matches_service_semantics():
    index = build_index()
    u, v, w = first_edge(index.graph)
    before = index.epoch
    stats = index.update_coalesced([(u, v, 5.0 * w), (v, u, w)])
    assert index.epoch == before  # net no-op applied nothing
    assert stats.shortcuts_changed == 0
    assert stats.labels_changed == 0
