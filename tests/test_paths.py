"""Tests for shortest-path reconstruction and one-to-many queries."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.baselines.dijkstra import dijkstra
from repro.core.config import DHLConfig
from repro.core.index import DHLIndex
from repro.exceptions import ReproError
from repro.graph.graph import Graph
from repro.labelling.paths import PathReconstructor
from tests.strategies import connected_graphs


def reconstructor(index: DHLIndex) -> PathReconstructor:
    return PathReconstructor(index.engine, index.hu)


class TestShortestPath:
    def test_trivial(self, small_index):
        assert small_index.shortest_path(9, 9) == [9]

    def test_adjacent(self, small_index):
        u, v, w = next(iter(small_index.graph.edges()))
        path = small_index.shortest_path(u, v)
        reconstructor(small_index).validate_path(path, small_index.distance(u, v))
        assert path[0] == u and path[-1] == v

    def test_paths_valid_and_optimal(self, small_index):
        recon = reconstructor(small_index)
        rng = np.random.default_rng(5)
        for _ in range(60):
            s = int(rng.integers(0, 300))
            t = int(rng.integers(0, 300))
            if s == t:
                continue
            path = small_index.shortest_path(s, t)
            assert path[0] == s and path[-1] == t
            recon.validate_path(path, small_index.distance(s, t))

    def test_disconnected_raises(self):
        g = Graph(4)
        g.add_edge(0, 1, 1.0)
        g.add_edge(2, 3, 1.0)
        idx = DHLIndex.build(g, DHLConfig(leaf_size=2))
        with pytest.raises(ReproError):
            idx.shortest_path(0, 3)

    def test_paths_after_updates(self, small_index):
        edges = list(small_index.graph.edges())[:30]
        small_index.increase([(u, v, 2 * w) for u, v, w in edges])
        recon = reconstructor(small_index)
        rng = np.random.default_rng(9)
        for _ in range(30):
            s, t = int(rng.integers(0, 300)), int(rng.integers(0, 300))
            if s == t:
                continue
            path = small_index.shortest_path(s, t)
            recon.validate_path(path, small_index.distance(s, t))
        small_index.decrease(edges)

    def test_path_avoids_deleted_edge(self, small_index):
        s, t = 0, 250
        path = small_index.shortest_path(s, t)
        # delete the first edge of the path and re-route
        small_index.delete_edge(path[0], path[1])
        new_path = small_index.shortest_path(s, t)
        assert (path[0], path[1]) not in zip(new_path, new_path[1:])
        reconstructor(small_index).validate_path(
            new_path, small_index.distance(s, t)
        )

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(connected_graphs(min_n=3, max_n=20))
    def test_random_graphs(self, graph):
        idx = DHLIndex.build(graph, DHLConfig(leaf_size=3, seed=0))
        recon = reconstructor(idx)
        ref = dijkstra(idx.graph, 0)
        for t in range(graph.num_vertices):
            if t == 0:
                continue
            path = idx.shortest_path(0, t)
            assert path[0] == 0 and path[-1] == t
            recon.validate_path(path, float(ref[t]))


class TestOneToMany:
    def test_distances_from_matches_pointwise(self, small_index):
        targets = list(range(0, 300, 13))
        out = small_index.distances_from(7, targets)
        for t, d in zip(targets, out):
            assert d == small_index.distance(7, t)

    def test_k_nearest_ordering(self, small_index):
        candidates = list(range(50, 120))
        top = small_index.k_nearest(3, candidates, 5)
        assert len(top) == 5
        dists = [d for _, d in top]
        assert dists == sorted(dists)
        # nothing outside the answer is closer than the worst answer
        all_d = small_index.distances_from(3, candidates)
        assert dists[-1] <= np.partition(all_d, 4)[4] + 1e-12

    def test_k_nearest_excludes_unreachable(self):
        g = Graph(5)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 1.0)
        g.add_edge(3, 4, 1.0)
        idx = DHLIndex.build(g, DHLConfig(leaf_size=2))
        top = idx.k_nearest(0, [1, 2, 3, 4], 4)
        assert [v for v, _ in top] == [1, 2]

    def test_k_nearest_k_zero(self, small_index):
        assert small_index.k_nearest(0, [1, 2], 0) == []
