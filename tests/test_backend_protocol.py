"""The ``DistanceBackend`` Protocol and the ``backend=`` entry point.

Satellite of the runtime-protocol redesign: every index family must
satisfy the one structural Protocol the service/runtime layer is typed
against, and :class:`DistanceService` must accept exactly one
unambiguous ``backend=`` argument — the old ``index=`` spelling keeps
working behind a :class:`DeprecationWarning`, ambiguous or bogus forms
fail loud.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.backend import DistanceBackend
from repro.core.config import DHLConfig
from repro.core.directed import DirectedDHLIndex
from repro.core.index import DHLIndex
from repro.core.sharded import ShardedDHLIndex
from repro.graph.digraph import DiGraph
from repro.graph.generators import grid_network
from repro.service.runtime import InProcessRuntime
from repro.service.service import DistanceService


@pytest.fixture(scope="module")
def graph():
    return grid_network(5, 5)


@pytest.fixture(scope="module")
def mono(graph):
    return DHLIndex.build(graph.copy(), DHLConfig(seed=0))


@pytest.fixture(scope="module")
def directed(graph):
    return DirectedDHLIndex.build(DiGraph.from_undirected(graph), DHLConfig(seed=0))


@pytest.fixture(scope="module")
def sharded(graph):
    return ShardedDHLIndex.build(
        graph.copy(), k=2, config=DHLConfig(seed=0), build_workers=1
    )


# ---------------------------------------------------------------------------
# every index family satisfies the Protocol
# ---------------------------------------------------------------------------

def test_all_index_families_satisfy_the_protocol(mono, directed, sharded):
    for index in (mono, directed, sharded):
        assert isinstance(index, DistanceBackend), type(index).__name__


def test_protocol_rejects_non_backends():
    assert not isinstance(object(), DistanceBackend)
    assert not isinstance(grid_network(2, 2), DistanceBackend)


def test_protocol_surface_is_uniform(mono, directed, sharded):
    """The shared surface behaves identically across families: same
    answers for the same undirected graph, same epoch discipline."""
    pairs = [(0, 24), (3, 17), (5, 5)]
    base = mono.distances(pairs)
    np.testing.assert_array_equal(directed.distances(pairs), base)
    np.testing.assert_array_equal(sharded.distances(pairs), base)
    for index in (mono, directed, sharded):
        assert index.epoch == 0
        assert index.graph.num_vertices == 25
        assert isinstance(index.supports_fine_grained_eviction, bool)
        assert index.stats().label_entries > 0


# ---------------------------------------------------------------------------
# the service runs against the Protocol, not concrete classes
# ---------------------------------------------------------------------------

def test_directed_index_serves_behind_the_service(graph, directed, mono):
    """Directed indexes never worked behind DistanceService before the
    Protocol existed (the service reached for ``.engine``); now any
    backend does."""
    pairs = [(0, 12), (7, 20), (24, 0)]
    with DistanceService(directed) as service:
        np.testing.assert_array_equal(
            service.distances(pairs), mono.distances(pairs)
        )
        u, v, w = next(iter(graph.edges()))
        service.submit(u, v, w * 2.0)
        service.flush()
        assert service.index.epoch == 1
        assert service.stats().backend == "in-process/directed"


def test_runtime_backend_strings(mono, directed, sharded):
    assert InProcessRuntime(mono).backend == "in-process/monolithic"
    assert InProcessRuntime(directed).backend == "in-process/directed"
    assert InProcessRuntime(sharded).backend == "in-process/sharded"


# ---------------------------------------------------------------------------
# one entry point: backend=
# ---------------------------------------------------------------------------

def test_backend_accepts_index_or_runtime(mono):
    with DistanceService(mono) as service:
        assert service.index is mono
    runtime = InProcessRuntime(mono)
    with DistanceService(runtime) as service:
        assert service.runtime is runtime


def test_index_kwarg_is_a_deprecated_alias(mono):
    with pytest.warns(DeprecationWarning, match="backend="):
        service = DistanceService(index=mono)
    with service:
        assert service.index is mono


def test_both_forms_is_an_error(mono):
    with pytest.raises(ValueError, match="deprecated alias"):
        DistanceService(mono, index=mono)


def test_no_backend_is_an_error():
    with pytest.raises(ValueError, match="backend"):
        DistanceService()


def test_non_backend_object_is_an_error():
    with pytest.raises(ValueError, match="DistanceBackend"):
        DistanceService(backend=object())


def test_close_is_idempotent_across_runtimes(mono):
    service = DistanceService(mono)
    service.distance(0, 1)
    service.close()
    service.close()  # second close must be a no-op, not a crash
    with DistanceService(InProcessRuntime(mono)) as service:
        pass
    service.close()  # after context-manager exit too
