"""Flat CSR label store: structure, slack growth, and snapshot round-trips.

The snapshot tests cover the serialization contract of the flat store:
save → load (plain and ``mmap_mode="r"``) reproduces identical distances
and ``num_entries`` for both the undirected and the directed index, and
a memory-mapped index still accepts maintenance (copy-on-first-write).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.config import DHLConfig
from repro.core.directed import DirectedDHLIndex
from repro.core.index import DHLIndex
from repro.exceptions import SerializationError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_connected_graph
from repro.labelling.labels import HierarchicalLabelling
from repro.utils.rng import make_rng, sample_pairs


@pytest.fixture
def asym_digraph() -> DiGraph:
    g = random_connected_graph(60, extra_edges=50, seed=8)
    dg = DiGraph.from_undirected(g)
    rng = np.random.default_rng(4)
    for u, v, w in list(dg.arcs())[: dg.num_arcs // 2]:
        dg.set_weight(u, v, float(w + rng.integers(0, 25)))
    return dg


@pytest.fixture
def directed_index(asym_digraph) -> DirectedDHLIndex:
    return DirectedDHLIndex.build(asym_digraph.copy(), DHLConfig(leaf_size=4))


class TestFlatStoreStructure:
    def test_store_is_contiguous_and_packed(self, small_index):
        labels = small_index.labels
        assert labels.values.dtype == np.float64
        assert labels.offsets.dtype == np.int64
        assert labels.is_packed
        assert labels.num_entries == len(labels.values)
        assert np.array_equal(
            labels.offsets, np.concatenate([[0], np.cumsum(labels.lengths)])
        )

    def test_views_share_the_flat_buffer(self, small_index):
        labels = small_index.labels
        view = labels.view(7)
        view[0] += 3.0
        assert labels.values[labels.offsets[7]] == view[0]
        assert labels.views()[7][0] == view[0]

    def test_from_arrays_round_trip(self, small_index):
        labels = small_index.labels
        rebuilt = HierarchicalLabelling.from_arrays(
            [labels.view(v).copy() for v in range(labels.num_vertices)],
            labels.tau,
        )
        assert rebuilt.equals(labels)
        assert rebuilt.num_entries == labels.num_entries

    def test_slack_store_serves_identical_labels(self, small_index):
        labels = small_index.labels
        slacked = HierarchicalLabelling.from_arrays(
            [labels.view(v).copy() for v in range(labels.num_vertices)],
            labels.tau,
            slack=0.5,
        )
        assert not slacked.is_packed
        assert slacked.num_entries == labels.num_entries
        assert slacked.equals(labels)
        values, offsets = slacked.packed()
        assert len(values) == labels.num_entries
        assert np.array_equal(offsets, labels.offsets)

    def test_extend_label_uses_slack_then_doubles(self):
        tau = np.array([2, 1, 0])
        store = HierarchicalLabelling.from_arrays(
            [
                np.array([5.0, 6.0, 0.0]),
                np.array([7.0, 0.0]),
                np.array([0.0]),
            ],
            tau,
            slack=1.0,  # capacity 6 / 4 / 2
        )
        buffer_before = store.values
        view = store.extend_label(0, 5)  # fits in the slack: no rebuild
        assert store.values is buffer_before
        assert len(view) == 5
        assert np.array_equal(view[:3], [5.0, 6.0, 0.0])
        assert np.isinf(view[3:]).all()
        view = store.extend_label(0, 9)  # exceeds capacity: rebuild + double
        assert store.values is not buffer_before
        assert len(view) == 9
        assert int(store.offsets[1] - store.offsets[0]) >= 12
        assert np.array_equal(view[:3], [5.0, 6.0, 0.0])
        assert np.isinf(view[3:]).all()
        # Other vertices are untouched by the rebuild.
        assert np.array_equal(store.view(1), [7.0, 0.0])
        assert np.array_equal(store.view(2), [0.0])


class TestUndirectedSnapshots:
    @pytest.mark.parametrize("mmap_labels", [False, True])
    def test_round_trip_identical_distances(
        self, small_index, tmp_path, mmap_labels
    ):
        small_index.save(tmp_path / "idx")
        loaded = DHLIndex.load(tmp_path / "idx", mmap_labels=mmap_labels)
        assert loaded.labels.num_entries == small_index.labels.num_entries
        assert loaded.labels.equals(small_index.labels)
        n = small_index.graph.num_vertices
        pairs = sample_pairs(n, 2_000, make_rng(3), distinct=False)
        assert np.array_equal(
            loaded.distances(pairs), small_index.distances(pairs)
        )

    def test_mmap_values_are_read_only_until_materialised(
        self, small_index, tmp_path
    ):
        small_index.save(tmp_path / "idx")
        loaded = DHLIndex.load(tmp_path / "idx", mmap_labels=True)
        assert not loaded.labels.values.flags.writeable
        loaded.labels.ensure_writable()
        assert loaded.labels.values.flags.writeable
        assert loaded.labels.equals(small_index.labels)

    def test_mmap_load_then_maintain(self, small_index, tmp_path):
        small_index.save(tmp_path / "idx")
        loaded = DHLIndex.load(tmp_path / "idx", mmap_labels=True)
        edges = list(loaded.graph.edges())[:25]
        loaded.increase([(u, v, 2 * w) for u, v, w in edges])
        small_index.increase([(u, v, 2 * w) for u, v, w in edges])
        assert loaded.labels.equals(small_index.labels)
        loaded.decrease([(u, v, w) for u, v, w in edges])
        small_index.decrease([(u, v, w) for u, v, w in edges])
        assert loaded.labels.equals(small_index.labels)
        n = loaded.graph.num_vertices
        pairs = sample_pairs(n, 500, make_rng(9), distinct=False)
        assert np.array_equal(
            loaded.distances(pairs), small_index.distances(pairs)
        )

    def test_snapshot_files_on_disk(self, small_index, tmp_path):
        small_index.save(tmp_path / "idx")
        assert (tmp_path / "idx" / "manifest.json").exists()
        assert (tmp_path / "idx" / "arrays.npz").exists()
        assert (tmp_path / "idx" / "label_values.npy").exists()
        assert (tmp_path / "idx" / "label_offsets.npy").exists()

    def test_missing_label_snapshot_raises(self, small_index, tmp_path):
        small_index.save(tmp_path / "idx")
        (tmp_path / "idx" / "label_values.npy").unlink()
        with pytest.raises(SerializationError):
            DHLIndex.load(tmp_path / "idx")


class TestDirectedSnapshots:
    @pytest.mark.parametrize("mmap_labels", [False, True])
    def test_round_trip_identical_distances(
        self, directed_index, tmp_path, mmap_labels
    ):
        directed_index.save(tmp_path / "didx")
        loaded = DirectedDHLIndex.load(
            tmp_path / "didx", mmap_labels=mmap_labels
        )
        assert (
            loaded.labels_out.num_entries
            == directed_index.labels_out.num_entries
        )
        assert (
            loaded.labels_in.num_entries
            == directed_index.labels_in.num_entries
        )
        assert loaded.labels_out.equals(directed_index.labels_out)
        assert loaded.labels_in.equals(directed_index.labels_in)
        n = directed_index.digraph.num_vertices
        for s in range(0, n, 7):
            for t in range(0, n, 5):
                assert loaded.distance(s, t) == directed_index.distance(s, t)

    def test_mmap_load_then_maintain(self, directed_index, tmp_path):
        directed_index.save(tmp_path / "didx")
        loaded = DirectedDHLIndex.load(tmp_path / "didx", mmap_labels=True)
        arcs = [
            (a, b, w)
            for a, b, w in list(loaded.digraph.arcs())[:15]
            if math.isfinite(w)
        ]
        loaded.increase([(a, b, 2 * w) for a, b, w in arcs])
        directed_index.increase([(a, b, 2 * w) for a, b, w in arcs])
        assert loaded.labels_out.equals(directed_index.labels_out)
        assert loaded.labels_in.equals(directed_index.labels_in)
        n = loaded.digraph.num_vertices
        for s in range(0, n, 9):
            for t in range(0, n, 11):
                assert loaded.distance(s, t) == directed_index.distance(s, t)

    def test_kind_mismatch_raises(self, small_index, tmp_path):
        small_index.save(tmp_path / "idx")
        with pytest.raises(SerializationError):
            DirectedDHLIndex.load(tmp_path / "idx")
