"""Tests for recursive bisection and the partition tree invariants."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings

from repro.graph.generators import delaunay_network
from repro.partition.recursive import PartitionTreeNode, recursive_bisection
from tests.strategies import connected_graphs


def collect_vertices(node: PartitionTreeNode) -> list[int]:
    out = list(node.vertices)
    for child in node.children:
        out.extend(collect_vertices(child))
    return out


def check_balance(node: PartitionTreeNode, beta: float) -> None:
    size = node.subtree_size
    for child in node.children:
        assert child.subtree_size <= (1 - beta) * size + 1e-9
        check_balance(child, beta)


def check_separators(node: PartitionTreeNode, graph) -> None:
    """Removing a node's vertices must disconnect its child subtrees."""
    if len(node.children) == 2:
        left = set(collect_vertices(node.children[0]))
        right = set(collect_vertices(node.children[1]))
        for u in left:
            for v in graph.neighbors(u):
                assert v not in right, f"edge ({u},{v}) crosses the separator"
    for child in node.children:
        check_separators(child, graph)


class TestRecursiveBisection:
    def test_partition_covers_all_vertices_once(self, small_road):
        tree = recursive_bisection(small_road, seed=0)
        owned = collect_vertices(tree)
        assert sorted(owned) == list(range(small_road.num_vertices))

    def test_balance_property(self, small_road):
        tree = recursive_bisection(small_road, beta=0.2, seed=0)
        check_balance(tree, 0.2)

    def test_separator_property(self, small_road):
        tree = recursive_bisection(small_road, seed=0)
        check_separators(tree, small_road)

    def test_leaf_size_respected(self, small_road):
        tree = recursive_bisection(small_road, leaf_size=5, seed=0)
        for node in tree.iter_nodes():
            if not node.children:
                assert len(node.vertices) <= 5

    def test_small_graph_single_leaf(self, diamond_graph):
        tree = recursive_bisection(diamond_graph, leaf_size=8, seed=0)
        assert not tree.children
        assert sorted(tree.vertices) == [0, 1, 2, 3]

    def test_iter_nodes_preorder(self, small_road):
        tree = recursive_bisection(small_road, seed=0)
        nodes = list(tree.iter_nodes())
        assert nodes[0] is tree
        assert len(nodes) >= 3

    def test_subtree_size(self, small_road):
        tree = recursive_bisection(small_road, seed=0)
        assert tree.subtree_size == small_road.num_vertices

    def test_separator_vertices_ordered_by_degree(self, small_road):
        tree = recursive_bisection(small_road, seed=0)
        for node in tree.iter_nodes():
            degrees = [small_road.degree(v) for v in node.vertices]
            assert degrees == sorted(degrees, reverse=True)

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(connected_graphs(min_n=2, max_n=30))
    def test_invariants_on_random_graphs(self, graph):
        tree = recursive_bisection(graph, beta=0.2, leaf_size=3, seed=0)
        assert sorted(collect_vertices(tree)) == list(range(graph.num_vertices))
        check_balance(tree, 0.2)
        check_separators(tree, graph)

    def test_larger_network_has_shallow_tree(self):
        g = delaunay_network(600, seed=8)
        tree = recursive_bisection(g, seed=0)
        depth = 0
        stack = [(tree, 0)]
        while stack:
            node, d = stack.pop()
            depth = max(depth, d)
            stack.extend((c, d + 1) for c in node.children)
        # log_{1/0.8}(600/8) ~ 20; allow generous slack
        assert depth <= 40
